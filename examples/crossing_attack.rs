//! The crossing lower bound, live (Figures 1–2, Proposition 4.3).
//!
//! Takes an acyclic network, a scheme whose labels fit in `B` bits, and
//! shows the paper's pigeonhole in action: once `B` drops below
//! `log₂(r)/2s`, two independent edges carry identical labels, crossing
//! them closes a cycle, and *no node can tell* — every local view is
//! bit-identical, so the verifier keeps accepting a now-illegal network.
//!
//! ```text
//! cargo run --release --example crossing_attack
//! ```

use rpls::core::{engine, Pls};
use rpls::crossing::det_attack::det_crossing_attack;
use rpls::crossing::{families, ModDistancePls};
use rpls::graph::cycles;

fn main() {
    let n = 60;
    let family = families::acyclicity_path(n);
    println!(
        "family: {} — r = {} independent single-edge copies, s = 1",
        family.name,
        family.copy_count()
    );
    println!(
        "Theorem 4.4 threshold: log2(r)/2s = {:.2} bits\n",
        family.det_threshold_bits()
    );

    println!(
        "{:>7} {:>10} {:>10} {:>16} {:>17} {:>14}",
        "B bits", "collision", "views ok", "graph acyclic?", "verifier verdict", "FOOLED?"
    );
    for bits in 1..=8u32 {
        let scheme = ModDistancePls::new(bits);
        let labeling = scheme.label(&family.config);
        assert!(
            engine::run_deterministic(&scheme, &family.config, &labeling).accepted(),
            "the scheme is complete on paths at every budget"
        );
        let report = det_crossing_attack(&family, &labeling);
        match &report.crossed {
            Some(crossed) => {
                let acyclic = cycles::is_forest(crossed.graph());
                let verdict = engine::run_deterministic(&scheme, crossed, &labeling).accepted();
                let fooled = verdict && !acyclic;
                println!(
                    "{:>7} {:>10} {:>10} {:>16} {:>17} {:>14}",
                    bits,
                    "found",
                    if report.views_preserved { "yes" } else { "no" },
                    if acyclic { "acyclic" } else { "HAS CYCLE" },
                    if verdict { "accept" } else { "reject" },
                    if fooled { "*** YES ***" } else { "no" }
                );
            }
            None => {
                println!(
                    "{:>7} {:>10} {:>10} {:>16} {:>17} {:>14}",
                    bits, "none", "-", "-", "-", "no"
                );
            }
        }
    }
    println!("\nReading: below the threshold a collision always exists and the crossed,");
    println!("cyclic network is accepted everywhere — exactly Proposition 4.3. Above");
    println!("it, the modular distances separate the copies and the attack dies.");
}
