//! Quickstart: certify a spanning tree, then pay exponentially less for it.
//!
//! This walks the paper's opening example end to end:
//!
//! 1. build a network and run a (simulated) spanning-tree algorithm whose
//!    output — parent pointers — lands in the node states;
//! 2. certify it deterministically with `(id(r), d(v))` labels (§1);
//! 3. compile the scheme (Theorem 3.1) and watch the per-edge
//!    communication drop from Θ(log n) to Θ(log log n) bits;
//! 4. corrupt the output and watch both verifiers catch it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{engine, stats, CompiledRpls, Configuration, Pls, Predicate, Rpls};
use rpls::graph::{generators, NodeId};
use rpls::schemes::spanning_tree::{
    encode_pointer, spanning_tree_config, SpanningTreePls, SpanningTreePredicate,
};

fn main() {
    let n = 64;
    let mut rng = StdRng::seed_from_u64(2026);

    // 1. The network and the algorithm output being checked.
    let graph = generators::gnp_connected(n, 0.08, &mut rng);
    println!(
        "network: n = {}, m = {} (connected Erdős–Rényi)",
        graph.node_count(),
        graph.edge_count()
    );
    let config = spanning_tree_config(&Configuration::plain(graph), NodeId::new(0));
    assert!(SpanningTreePredicate::new().holds(&config));
    println!("states carry BFS parent pointers rooted at v0 — a legal instance\n");

    // 2. Deterministic certification: exchange (root id, distance) labels.
    let det = SpanningTreePls::new();
    let det_labels = det.label(&config);
    let outcome = engine::run_deterministic(&det, &config, &det_labels);
    println!(
        "deterministic PLS:  label size = {:>3} bits/node, verdict = {}",
        det_labels.max_bits(),
        if outcome.accepted() {
            "accept"
        } else {
            "reject"
        }
    );

    // 3. Theorem 3.1: compile it. Only fingerprints travel now.
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let rpls_labels = compiled.label(&config);
    let record = engine::run_randomized(&compiled, &config, &rpls_labels, 1);
    println!(
        "compiled RPLS:      certificate = {:>3} bits/edge, verdict = {}",
        record.max_certificate_bits(),
        if record.outcome.accepted() {
            "accept"
        } else {
            "reject"
        }
    );
    println!(
        "communication drop: {} -> {} bits ({}x)\n",
        det_labels.max_bits(),
        record.max_certificate_bits(),
        det_labels.max_bits() / record.max_certificate_bits().max(1)
    );

    // 4. Corrupt the output: node 5 drops its parent pointer and declares
    //    itself a second root — always illegal.
    let mut corrupted = config.clone();
    corrupted
        .state_mut(NodeId::new(5))
        .set_payload(encode_pointer(None));
    let still_legal = SpanningTreePredicate::new().holds(&corrupted);
    println!(
        "after corrupting v5's parent pointer the predicate {}",
        if still_legal {
            "STILL HOLDS (corruption was harmless)"
        } else {
            "fails"
        }
    );
    if !still_legal {
        let det_outcome = engine::run_deterministic(&det, &corrupted, &det_labels);
        println!(
            "deterministic verifier: {} rejecting node(s): {:?}",
            det_outcome.rejecting_nodes().len(),
            det_outcome.rejecting_nodes()
        );
        let acc = stats::acceptance_probability(&compiled, &corrupted, &rpls_labels, 500, 7);
        println!("randomized verifier:    acceptance probability {acc:.3} (soundness bound 1/3)");
    }
}
