//! MST certification (Theorem 5.1): the paper's flagship application.
//!
//! A distributed MST algorithm outputs a tree; a proof-labeling scheme lets
//! the network *keep checking* that output forever with one-round
//! exchanges. Deterministically that costs Θ(log²n) bits per message; the
//! compiled randomized scheme needs only Θ(log log n) — the exponential
//! gap that motivates the whole paper.
//!
//! ```text
//! cargo run --release --example mst_certification
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls::core::{engine, stats, CompiledRpls, Configuration, Pls, Predicate, Rpls};
use rpls::graph::{generators, mst as graph_mst, EdgeId};
use rpls::schemes::mst::{install_tree, mst_config, MstPls, MstPredicate};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    println!(
        "{:>5} {:>12} {:>14} {:>12}",
        "n", "det bits", "cert bits", "verdict"
    );
    for n in [16usize, 32, 64, 128] {
        let g = generators::gnp_connected(n, (6.0 / n as f64).min(0.8), &mut rng);
        let w = generators::random_weights(&g, (n * n) as u64, &mut rng);
        let config = mst_config(&Configuration::plain(g.with_weights(&w)));
        assert!(MstPredicate::new().holds(&config));

        let det_bits = MstPls::new().label(&config).max_bits();
        let compiled = CompiledRpls::new(MstPls::new());
        let labels = compiled.label(&config);
        let rec = engine::run_randomized(&compiled, &config, &labels, n as u64);
        println!(
            "{:>5} {:>12} {:>14} {:>12}",
            n,
            det_bits,
            rec.max_certificate_bits(),
            if rec.outcome.accepted() {
                "accept"
            } else {
                "reject"
            }
        );
    }

    // Now the adversarial side: swap one MST edge for a heavier one and
    // try to pass the old certificates off on the new tree.
    println!("\n--- tampering: replace an MST edge with a heavy non-tree edge ---");
    let g = generators::cycle(8).with_weights(&[1, 2, 3, 4, 5, 6, 7, 100]);
    let base = Configuration::plain(g);
    let honest = mst_config(&base);
    assert!(MstPredicate::new().holds(&honest));

    // The MST drops the weight-100 edge; force it in instead of edge 0.
    let bad_tree: Vec<EdgeId> = (1..8).map(EdgeId::new).collect();
    assert!(graph_mst::is_spanning_tree(base.graph(), &bad_tree));
    let tampered = install_tree(&base, &bad_tree);
    assert!(!MstPredicate::new().holds(&tampered));

    let honest_labels = MstPls::new().label(&honest);
    let det_out = engine::run_deterministic(&MstPls::new(), &tampered, &honest_labels);
    println!(
        "deterministic verifier on tampered tree: {} ({} rejecting nodes)",
        if det_out.accepted() {
            "ACCEPTED (!)"
        } else {
            "rejected"
        },
        det_out.rejecting_nodes().len()
    );

    let compiled = CompiledRpls::new(MstPls::new());
    let compiled_labels = compiled.label(&honest);
    let acc = stats::acceptance_probability(&compiled, &tampered, &compiled_labels, 400, 3);
    println!("randomized verifier on tampered tree: acceptance probability {acc:.3}");
    println!("(labels certify the *minimum* tree; a heavier tree has no valid proof)");
}
