//! The message-pattern spectrum: what one round of verification costs
//! under per-port, broadcast, unicast, and k-messages communication.
//!
//! The engine's randomness axis (independent per-port challenges vs one
//! shared challenge per node) is orthogonal to its *communication* axis:
//! how many distinct messages a node emits per round. This example sweeps
//! [`MessagePattern`](rpls::core::engine::MessagePattern) over one
//! spanning-tree instance, for both the κ-bit `ExchangeLabels` baseline
//! and the compiled fingerprint scheme:
//!
//! * **per-port** — one independent message per incident edge; the
//!   classical RPLS model and the engine's golden-tested default;
//! * **broadcast** — one message per node per round, copied to every
//!   port (the broadcast-CONGEST regime of Patt-Shamir & Perry);
//! * **unicast** — per-port transcripts, but the compiled scheme ships
//!   only the polynomial *evaluation* (the point is shared randomness, à
//!   la Filtser & Fischer), halving the accounted bits;
//! * **k-messages** — k distinct messages per node, interpolating
//!   between broadcast (k = 1) and per-port (k ≥ degree).
//!
//! ```text
//! cargo run --release --example message_patterns
//! ```

use rpls::core::engine::MessagePattern;
use rpls::core::{measure, stats, CompiledRpls, Configuration, Rpls};
use rpls::graph::{generators, NodeId};
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};

fn main() {
    let n = 64;
    let trials = 2000;
    let seed = 11;
    let config = spanning_tree_config(&Configuration::plain(generators::cycle(n)), NodeId::new(0));
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let exchange = rpls::core::scheme::ExchangeLabels::new(SpanningTreePls::new());

    // One corrupted claimed replica, to show soundness is pattern-blind.
    let tamper = |labeling: &rpls::core::Labeling| {
        let mut out = labeling.clone();
        let node = NodeId::new(5);
        let target = out.get(node).len() / 2;
        let flipped: rpls::bits::BitString = out
            .get(node)
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        out.set(node, flipped);
        out
    };

    let patterns = [
        ("per-port", MessagePattern::PerPort),
        ("broadcast", MessagePattern::Broadcast),
        ("unicast", MessagePattern::Unicast),
        ("2-messages", MessagePattern::KMessages(2)),
    ];

    println!(
        "message-pattern spectrum on the {n}-cycle spanning tree ({trials} trials per cell)\n"
    );
    for (name, scheme) in [
        (
            "exchange-labels (κ-bit proof streaming)",
            &exchange as &dyn Rpls,
        ),
        ("compiled (fingerprint streaming)", &compiled as &dyn Rpls),
    ] {
        let honest = scheme.label(&config);
        let tampered = tamper(&honest);
        println!("{name}");
        println!(
            "     pattern | msgs/node | bits/round t=1 | bits/round t=4 | honest accept | tampered accept"
        );
        println!(
            "  -----------+-----------+----------------+----------------+---------------+-----------------"
        );
        let configs = std::slice::from_ref(&config);
        for (pname, pattern) in patterns {
            let t1 = measure::randomized_complexity_report(scheme, configs, pattern, 1, 8, seed);
            let t4 = measure::randomized_complexity_report(scheme, configs, pattern, 4, 8, seed);
            let honest_p = stats::acceptance_probability_patterned(
                scheme, &config, &honest, trials, seed, pattern,
            );
            let tampered_p = stats::acceptance_probability_patterned(
                scheme, &config, &tampered, trials, seed, pattern,
            );
            assert!(
                (honest_p - 1.0).abs() < f64::EPSILON,
                "one-sided completeness"
            );
            println!(
                "  {pname:>10} | {:>9} | {:>14} | {:>14} | {honest_p:>13} | {tampered_p:>15.4}",
                t1.messages, t1.bits_per_round, t4.bits_per_round,
            );
        }
        println!();
    }

    println!("reading the table:");
    println!("  * broadcast sends ONE message per node per round — on the cycle that halves");
    println!("    message count vs per-port, at unchanged per-message width;");
    println!("  * unicast keeps per-port transcripts but the compiled rows account half the");
    println!("    bits: the fingerprint point is shared randomness, only P(x) is shipped;");
    println!("  * 2-messages saturates per-port on the cycle (every degree is 2), so its");
    println!("    column reproduces per-port exactly;");
    println!("  * soundness is pattern-blind: the tampered column barely moves across rows.");
}
