//! The space–time trade-off: verify the same proof in `t` rounds with
//! per-round communication shrinking ≈ κ/t.
//!
//! The paper's headline compiler (Theorem 3.1) shrinks *what* is sent —
//! κ-bit labels become `O(log κ)`-bit fingerprints. The multi-round engine
//! adds the orthogonal axis of the t-PLS literature (Patt-Shamir & Perry;
//! Filtser & Fischer): shrink *when* it is sent, by spreading verification
//! over `t` rounds. This example sweeps `t ∈ {1, 2, 4, 8, 16}` over both
//! regimes on one spanning-tree instance:
//!
//! * **proof streaming** (the κ-bit `ExchangeLabels` baseline): the label
//!   is cut into `t` chunks, one per round — per-round bits are `⌈κ/t⌉`
//!   exactly, and the verdict arrives with the last chunk;
//! * **fingerprint streaming** (the compiled scheme): each round carries a
//!   fresh fingerprint of the next κ/t-bit label slice — per-round bits
//!   shrink like `O(log(κ/t))`, and tampering is caught (and the trial
//!   *decided*) in the round whose slice covers it.
//!
//! ```text
//! cargo run --release --example tradeoff_rounds
//! ```

use rpls::core::engine::StreamMode;
use rpls::core::{engine, stats, CompiledRpls, Configuration, RoundScratch, Rpls};
use rpls::graph::{generators, NodeId};
use rpls::schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};

fn main() {
    let n = 64;
    let trials = 2000;
    let seed = 11;
    let config = spanning_tree_config(&Configuration::plain(generators::cycle(n)), NodeId::new(0));
    let compiled = CompiledRpls::new(SpanningTreePls::new());
    let exchange = rpls::core::scheme::ExchangeLabels::new(SpanningTreePls::new());

    // One corrupted claimed replica for the rejection-round profiles.
    let tamper = |labeling: &rpls::core::Labeling| {
        let mut out = labeling.clone();
        let node = NodeId::new(5);
        let target = out.get(node).len() / 2;
        let flipped: rpls::bits::BitString = out
            .get(node)
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        out.set(node, flipped);
        out
    };

    println!("t-round trade-off on the {n}-cycle spanning tree ({trials} trials per cell)\n");
    let mut scratch = RoundScratch::new();
    for (name, scheme) in [
        (
            "exchange-labels (κ-bit proof streaming)",
            &exchange as &dyn Rpls,
        ),
        ("compiled (fingerprint streaming)", &compiled as &dyn Rpls),
    ] {
        let honest = scheme.label(&config);
        let tampered = tamper(&honest);
        println!("{name}");
        println!(
            "    t | bits/round | total bits | honest accept | tampered accept | mean reject round"
        );
        println!(
            "  ----+------------+------------+---------------+-----------------+------------------"
        );
        for t in [1usize, 2, 4, 8, 16] {
            let summary = engine::run_multiround_with(
                scheme,
                &config,
                &honest,
                seed,
                t,
                StreamMode::EdgeIndependent,
                &mut scratch,
            );
            assert!(summary.accepted, "one-sided completeness");
            let honest_p =
                stats::multiround_acceptance_probability(scheme, &config, &honest, t, trials, seed);
            let profile =
                stats::rounds_to_reject_profile(scheme, &config, &tampered, t, trials, seed);
            let tampered_p = profile.accepts as f64 / trials as f64;
            println!(
                "  {t:>3} | {:>10} | {:>10} | {honest_p:>13} | {tampered_p:>15.4} | {:>17}",
                summary.max_bits_per_round,
                summary.total_bits,
                profile
                    .mean_reject_round()
                    .map_or("-".to_string(), |m| format!("{m:.2}")),
            );
        }
        println!();
    }

    println!("reading the table:");
    println!("  * exchange-labels bits/round shrink as ⌈κ/t⌉ — the t-PLS trade-off verbatim;");
    println!("  * compiled bits/round shrink like 2⌈log₂ p⌉ for the κ/t-bit slice protocol;");
    println!("  * the compiled schedule rejects early: its mean reject round tracks where");
    println!("    the tampered slice lives, not the end of the schedule.");
}
