//! The 2-party equality protocol of Lemma A.1 — the engine inside every
//! compiled scheme.
//!
//! Alice and Bob hold λ-bit strings; Alice ships a single `(x, A(x))`
//! fingerprint over GF(p), `p ∈ (3λ, 6λ)`. This example sweeps λ to show
//! the logarithmic message size, measures the one-sided error, and runs the
//! repetition that drives it down geometrically.
//!
//! ```text
//! cargo run --release --example equality_fingerprint
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rpls::bits::BitString;
use rpls::fingerprint::EqProtocol;

fn random_bits(len: usize, rng: &mut StdRng) -> BitString {
    BitString::from_bools((0..len).map(|_| rng.random_bool(0.5)))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let trials = 5000;

    println!(
        "{:>8} {:>8} {:>14} {:>12} {:>16}",
        "lambda", "prime", "message bits", "bound", "measured error"
    );
    for lambda in [32usize, 128, 512, 2048, 8192, 32768] {
        let proto = EqProtocol::for_length(lambda);
        let a = random_bits(lambda, &mut rng);
        // Unequal partner: flip a single bit.
        let b: BitString = a
            .iter()
            .enumerate()
            .map(|(i, x)| if i == 3 { !x } else { x })
            .collect();
        let errors = (0..trials)
            .filter(|_| proto.bob_accepts(&b, &proto.alice_message(&a, &mut rng)))
            .count();
        println!(
            "{:>8} {:>8} {:>14} {:>12.4} {:>16.4}",
            lambda,
            proto.modulus(),
            proto.message_bits(),
            proto.soundness_error(),
            errors as f64 / trials as f64
        );
    }

    println!("\nrepetition drives the error down geometrically (λ = 512):");
    let lambda = 512;
    let proto = EqProtocol::for_length(lambda);
    let a = random_bits(lambda, &mut rng);
    let b: BitString = a.iter().map(|x| !x).collect();
    for t in 1..=4usize {
        let errors = (0..trials)
            .filter(|_| proto.bob_accepts_repeated(&a, &b, t, &mut rng))
            .count();
        println!(
            "  t = {t}: false-accept rate {:>8.5}   (bound {:.5})",
            errors as f64 / trials as f64,
            proto.soundness_error().powi(t as i32)
        );
    }
    println!("\nequal inputs are never rejected — the protocol is one-sided:");
    let all_accept = (0..trials).all(|_| proto.bob_accepts(&a, &proto.alice_message(&a, &mut rng)));
    println!("  {trials} trials on equal strings: all accepted = {all_accept}");
}
