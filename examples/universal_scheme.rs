//! Corollary 3.4 on a predicate of your own: "the network has diameter ≤ D".
//!
//! Diameter is a global quantity — no radius-t ball inspection can decide
//! it — yet the universal randomized scheme certifies it with certificates
//! of a few dozen bits, for *any* predicate you can write as a function.
//! This example:
//!
//! 1. shows the label-free local-decision baseline (`LD`) failing;
//! 2. instantiates the universal PLS (Lemma 3.3) — huge labels;
//! 3. compiles it (Theorem 3.1 → Corollary 3.4) — tiny certificates;
//! 4. replays the labels on a violating network and watches them fail.
//!
//! ```text
//! cargo run --release --example universal_scheme
//! ```

use rpls::core::local_decision::{run_local_decision, FnLocalDecision};
use rpls::core::scheme::FnPredicate;
use rpls::core::universal::{universal_rpls, UniversalPls};
use rpls::core::{engine, stats, Configuration, Pls, Predicate, Rpls};
use rpls::graph::{generators, traversal};

fn diameter(config: &Configuration) -> usize {
    let g = config.graph();
    g.nodes()
        .map(|v| {
            traversal::bfs(g, v)
                .dist
                .iter()
                .map(|d| d.unwrap_or(usize::MAX))
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0)
}

fn main() {
    const D: usize = 4;
    let predicate = || {
        FnPredicate::new(format!("diameter<={D}"), |c: &Configuration| {
            diameter(c) <= D
        })
    };

    // A legal instance: the 3x3 grid has diameter 4. An illegal one on the
    // same node count: the 9-node path has diameter 8.
    let legal = Configuration::plain(generators::grid(3, 3));
    let illegal = Configuration::plain(generators::path(9));
    assert!(predicate().holds(&legal));
    assert!(!predicate().holds(&illegal));
    println!("predicate: diameter <= {D}");
    println!("legal: 3x3 grid (diameter 4); illegal: 9-node path (diameter 8)\n");

    // 1. Label-free local decision at radius 2: every ball of the illegal
    //    grid looks like a ball of some legal graph, so the best sound
    //    decision must accept both — it cannot decide the predicate.
    let ld = FnLocalDecision::new("diameter-ld", 2, |_ball| true);
    println!(
        "LD(2) baseline:    legal {} | illegal {}   (cannot distinguish)",
        if run_local_decision(&ld, &legal).accepted() {
            "accept"
        } else {
            "reject"
        },
        if run_local_decision(&ld, &illegal).accepted() {
            "accept"
        } else {
            "reject"
        },
    );

    // 2. Universal deterministic scheme: labels hold the whole network.
    let pls = UniversalPls::new(predicate());
    let pls_labels = pls.label(&legal);
    let out = engine::run_deterministic(&pls, &legal, &pls_labels);
    println!(
        "universal PLS:     label = {} bits/node, verdict = {}",
        pls_labels.max_bits(),
        if out.accepted() { "accept" } else { "reject" }
    );

    // 3. Compiled: only fingerprints travel.
    let rpls = universal_rpls(predicate());
    let rpls_labels = rpls.label(&legal);
    let rec = engine::run_randomized(&rpls, &legal, &rpls_labels, 7);
    println!(
        "universal RPLS:    certificate = {} bits/edge ({} bits total per round), verdict = {}",
        rec.max_certificate_bits(),
        rec.total_certificate_bits(),
        if rec.outcome.accepted() {
            "accept"
        } else {
            "reject"
        }
    );

    // 4. Replay the legal proof on the illegal network.
    let acc = stats::acceptance_probability(&rpls, &illegal, &rpls_labels, 400, 3);
    println!("\nreplaying the legal proof on the illegal network: acceptance {acc:.3}");
    println!("(every node compares the claimed network against its own neighborhood;");
    println!(" the path cannot impersonate the grid anywhere)");
}
