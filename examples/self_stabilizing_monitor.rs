//! Self-stabilization-style monitoring: the application the paper points
//! at via the local-detection literature [1, 8, 30].
//!
//! A network keeps a leader and a spanning tree; every "round" the nodes
//! re-verify the proof labels. When a transient fault corrupts state or
//! labels, some node detects it within one round and triggers recovery
//! (here: recompute the labels from a fresh election). The randomized
//! verifier does the same job exchanging a few bits per edge.
//!
//! ```text
//! cargo run --release --example self_stabilizing_monitor
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rpls::core::{engine, CompiledRpls, Configuration, Labeling, Pls, Predicate, Rpls};
use rpls::graph::{generators, NodeId};
use rpls::schemes::leader::{encode_flag, leader_config, LeaderPls, LeaderPredicate};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 24;
    let graph = generators::gnp_connected(n, 0.15, &mut rng);
    let mut config = leader_config(&Configuration::plain(graph), NodeId::new(0));
    let scheme = LeaderPls::new();
    let mut labels = scheme.label(&config);
    let compiled = CompiledRpls::new(LeaderPls::new());
    let mut rpls_labels = compiled.label(&config);

    println!("monitoring a unique-leader invariant over {n} nodes\n");
    let mut detections = 0usize;
    for round in 1..=12u64 {
        // Transient faults: occasionally a node spontaneously declares
        // itself leader (the classic self-stabilization scenario).
        let fault = round % 4 == 0;
        if fault {
            let culprit = NodeId::new(rng.random_range(1..n));
            config.state_mut(culprit).set_payload(encode_flag(true));
            println!("round {round:>2}: FAULT — {culprit} claims leadership");
        }

        let det = engine::run_deterministic(&scheme, &config, &labels);
        let rnd = engine::run_randomized(&compiled, &config, &rpls_labels, round);
        let healthy = LeaderPredicate::new().holds(&config);
        println!(
            "round {round:>2}: predicate {} | det verifier {} | rpls verifier {}",
            if healthy { "ok  " } else { "BAD " },
            if det.accepted() { "accept" } else { "REJECT" },
            if rnd.outcome.accepted() {
                "accept"
            } else {
                "REJECT"
            },
        );

        // Detection triggers recovery: re-elect node 0 and re-label.
        if !det.accepted() || !rnd.outcome.accepted() {
            detections += 1;
            config = leader_config(&config, NodeId::new(0));
            labels = scheme.label(&config);
            rpls_labels = compiled.label(&config);
            println!("         recovery: leader re-elected, proofs rebuilt");
        }
        assert!(
            healthy || !det.accepted(),
            "an illegal state must never survive a deterministic round"
        );
    }
    println!("\nfaults detected and repaired: {detections}");
    let _ = Labeling::empty(0); // keep the Labeling import exercised
}
