//! Node states and configurations (§2.1).
//!
//! A configuration `G_s` is a graph together with a state assignment
//! `s : V → S`. The state of a node holds *all its local input*: its
//! identity, and an arbitrary payload (algorithm output, input bits, …).
//! Edge weights live on the graph and are visible to a node only for its
//! incident edges, as the MST setting of §5.1 prescribes.

use rpls_bits::{bits_for, BitString};
use rpls_graph::{Graph, NodeId};

/// The state of one node: its identity plus an opaque payload.
///
/// # Examples
///
/// ```
/// use rpls_core::State;
/// use rpls_bits::BitString;
///
/// let s = State::new(42, BitString::from_bools([true, false]));
/// assert_eq!(s.id(), 42);
/// assert_eq!(s.payload().len(), 2);
/// assert_eq!(s.bit_size(), 64 + 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    id: u64,
    payload: BitString,
}

impl State {
    /// Creates a state with the given identity and payload.
    #[must_use]
    pub fn new(id: u64, payload: BitString) -> Self {
        Self { id, payload }
    }

    /// A state with an identity and empty payload.
    #[must_use]
    pub fn with_id(id: u64) -> Self {
        Self::new(id, BitString::new())
    }

    /// The node's identity.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The opaque payload (algorithm output, inputs, …).
    #[must_use]
    pub fn payload(&self) -> &BitString {
        &self.payload
    }

    /// Replaces the payload.
    pub fn set_payload(&mut self, payload: BitString) {
        self.payload = payload;
    }

    /// The state's size in bits (64-bit identity plus payload), the `k` of
    /// Lemma 3.3 and Corollary 3.4.
    #[must_use]
    pub fn bit_size(&self) -> usize {
        64 + self.payload.len()
    }
}

/// A configuration `G_s`: a port-numbered graph plus one [`State`] per node.
///
/// # Examples
///
/// ```
/// use rpls_core::Configuration;
/// use rpls_graph::generators;
///
/// let config = Configuration::plain(generators::path(4));
/// assert_eq!(config.node_count(), 4);
/// assert_eq!(config.state(rpls_graph::NodeId::new(2)).id(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Configuration {
    graph: Graph,
    states: Vec<State>,
    /// CSR port layout: `port_base[v]` is the global index of port 0 of
    /// node `v`; `port_base[n]` is the total number of directed ports.
    port_base: Vec<u32>,
    /// Incident edge weights in global port order (`port_weights[port_base
    /// [v] + p]` is the weight at port rank `p` of `v`).
    port_weights: Vec<Option<u64>>,
    /// Delivery map: `delivery[i]` is the global port index whose
    /// certificate arrives at port `i` (the far endpoint's port of the same
    /// edge).
    delivery: Vec<u32>,
    /// Inverse CSR: `port_owner[i]` is the node owning global port `i`.
    port_owner: Vec<u32>,
}

impl PartialEq for Configuration {
    fn eq(&self, other: &Self) -> bool {
        // The CSR caches are functions of the graph; comparing them would
        // be redundant.
        self.graph == other.graph && self.states == other.states
    }
}

impl Eq for Configuration {}

impl Configuration {
    /// Creates a configuration from a graph and explicit states.
    ///
    /// # Panics
    ///
    /// Panics if the number of states differs from the number of nodes or if
    /// two nodes share an identity (the model requires pairwise distinct
    /// IDs).
    #[must_use]
    pub fn new(graph: Graph, states: Vec<State>) -> Self {
        assert_eq!(
            states.len(),
            graph.node_count(),
            "one state per node required"
        );
        let mut ids: Vec<u64> = states.iter().map(State::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            states.len(),
            "node identities must be pairwise distinct"
        );
        let (port_base, port_weights, delivery, port_owner) = Self::build_port_layout(&graph);
        Self {
            graph,
            states,
            port_base,
            port_weights,
            delivery,
            port_owner,
        }
    }

    /// Builds the CSR port layout the engine's flat certificate buffers
    /// index by: per-node port offsets, incident weights in global port
    /// order, the delivery map routing each port to the far endpoint's
    /// port of the same edge, and the inverse map from global port to
    /// owning node.
    #[allow(clippy::type_complexity)]
    fn build_port_layout(graph: &Graph) -> (Vec<u32>, Vec<Option<u64>>, Vec<u32>, Vec<u32>) {
        let n = graph.node_count();
        let mut port_base = Vec::with_capacity(n + 1);
        let mut total: u32 = 0;
        port_base.push(0);
        for v in graph.nodes() {
            total += u32::try_from(graph.degree(v)).expect("degree fits in u32");
            port_base.push(total);
        }
        let mut port_weights = Vec::with_capacity(total as usize);
        let mut delivery = Vec::with_capacity(total as usize);
        let mut port_owner = Vec::with_capacity(total as usize);
        for v in graph.nodes() {
            for nb in graph.neighbors(v) {
                port_weights.push(nb.weight);
                delivery.push(
                    port_base[nb.node.index()]
                        + u32::try_from(nb.remote_port.rank()).expect("port fits in u32"),
                );
                port_owner.push(u32::try_from(v.index()).expect("node fits in u32"));
            }
        }
        (port_base, port_weights, delivery, port_owner)
    }

    /// The default configuration: node `v` gets identity `v` and an empty
    /// payload.
    #[must_use]
    pub fn plain(graph: Graph) -> Self {
        let states = (0..graph.node_count())
            .map(|v| State::with_id(v as u64))
            .collect();
        Self::new(graph, states)
    }

    /// Like [`Configuration::plain`] but with explicit identities.
    ///
    /// # Panics
    ///
    /// Panics if `ids` has the wrong length or repeats a value.
    #[must_use]
    pub fn with_ids(graph: Graph, ids: &[u64]) -> Self {
        let states = ids.iter().map(|&id| State::with_id(id)).collect();
        Self::new(graph, states)
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The state of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn state(&self, node: NodeId) -> &State {
        &self.states[node.index()]
    }

    /// Mutable access to the state of `node` (used by workload builders to
    /// install algorithm outputs).
    pub fn state_mut(&mut self, node: NodeId) -> &mut State {
        &mut self.states[node.index()]
    }

    /// All states, indexed by node.
    #[must_use]
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The node carrying identity `id`, if any.
    #[must_use]
    pub fn node_with_id(&self, id: u64) -> Option<NodeId> {
        self.states
            .iter()
            .position(|s| s.id() == id)
            .map(NodeId::new)
    }

    /// Maximum state size in bits over all nodes — the `k = k(n)` of
    /// Lemma 3.3 and Corollary 3.4.
    #[must_use]
    pub fn state_bits(&self) -> usize {
        self.states.iter().map(State::bit_size).max().unwrap_or(0)
    }

    /// Width in bits sufficient to index any node of this configuration
    /// (`⌈log₂ n⌉`, at least 1).
    #[must_use]
    pub fn node_index_width(&self) -> u32 {
        rpls_bits::id_width(self.node_count() as u64)
    }

    /// Width in bits sufficient to write any identity used here.
    #[must_use]
    pub fn id_width(&self) -> u32 {
        self.states
            .iter()
            .map(|s| bits_for(s.id()))
            .max()
            .unwrap_or(1)
    }

    /// Replaces the graph while keeping the states — the operation a
    /// crossing performs on a configuration (node states, including IDs, do
    /// not move; only edges do).
    ///
    /// # Panics
    ///
    /// Panics if the new graph has a different node count.
    #[must_use]
    pub fn with_graph(&self, graph: Graph) -> Self {
        assert_eq!(
            graph.node_count(),
            self.node_count(),
            "crossing preserves the node set"
        );
        let (port_base, port_weights, delivery, port_owner) = Self::build_port_layout(&graph);
        Self {
            graph,
            states: self.states.clone(),
            port_base,
            port_weights,
            delivery,
            port_owner,
        }
    }

    /// The CSR port layout: `port_base()[v]` is the global index of port 0
    /// of node `v`, and `port_base()[n]` the total number of directed
    /// ports. The engine's flat certificate buffers are indexed by this
    /// layout.
    #[must_use]
    pub fn port_base(&self) -> &[u32] {
        &self.port_base
    }

    /// Total number of directed ports (`Σ deg(v) = 2m`).
    #[must_use]
    pub fn port_count(&self) -> usize {
        *self.port_base.last().expect("port_base non-empty") as usize
    }

    /// The global port index of port rank `p` at `node`.
    #[must_use]
    pub fn port_index(&self, node: NodeId, p: usize) -> usize {
        self.port_base[node.index()] as usize + p
    }

    /// Incident edge weights of `node` in port order, without allocating —
    /// the strictly-local view a verifier is allowed to see.
    #[must_use]
    pub fn incident_weights(&self, node: NodeId) -> &[Option<u64>] {
        let lo = self.port_base[node.index()] as usize;
        let hi = self.port_base[node.index() + 1] as usize;
        &self.port_weights[lo..hi]
    }

    /// The delivery map: entry `i` is the global port index whose
    /// certificate arrives at global port `i` (the far endpoint's port of
    /// the same edge). `delivery` is an involution.
    #[must_use]
    pub fn delivery(&self) -> &[u32] {
        &self.delivery
    }

    /// The inverse CSR map: entry `i` is the node owning global port `i`
    /// (the sender side of the directed edge the port represents). The
    /// batched kernels and the fault layer use this to look up the sender
    /// of a delivered certificate without re-walking the adjacency lists.
    #[must_use]
    pub fn port_owner(&self) -> &[u32] {
        &self.port_owner
    }
}

/// Nodes grouped into power-of-two **degree buckets** over the CSR port
/// layout: bucket `b` holds the nodes whose degree `d` satisfies
/// `bucket_of_degree(d) == b`, i.e. `d = 0` in bucket 0, `d = 1` in
/// bucket 1, `d ∈ [2^(b−1)+1, 2^b]` in bucket `b ≥ 1`.
///
/// The batched trial engine processes dynamic probe nodes bucket by
/// bucket, cheapest first: by the time the quadratic-port hub nodes of a
/// dense or power-law graph are reached, most rejecting trials are
/// already dead and their probes are skipped — the degree-bucketed half
/// of the dense-family fix (the other half is the probe sketch, which
/// subsamples the probes a hub still runs on live trials).
#[derive(Debug, Clone)]
pub struct DegreeBuckets {
    /// Node indices sorted by (bucket, node index) — stable within a
    /// bucket so traversal order is deterministic.
    order: Vec<u32>,
    /// CSR over `order`: bucket `b` is `order[bounds[b]..bounds[b+1]]`.
    bounds: Vec<u32>,
}

impl DegreeBuckets {
    /// The bucket index of degree `d`: `0` for isolated nodes, else
    /// `⌈log₂ d⌉ + 1` (so degree 1 → bucket 1, 2 → 2, 3..=4 → 3, …).
    #[must_use]
    pub fn bucket_of_degree(d: usize) -> usize {
        match d {
            0 => 0,
            _ => 65 - (d as u64 - 1).leading_zeros() as usize,
        }
    }

    /// Buckets the nodes of `graph` by degree.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut counts = vec![0u32; 1];
        for v in graph.nodes() {
            let b = Self::bucket_of_degree(graph.degree(v));
            if b >= counts.len() {
                counts.resize(b + 1, 0);
            }
            counts[b] += 1;
        }
        // Prefix sums → CSR bounds, then a stable counting sort.
        let mut bounds = Vec::with_capacity(counts.len() + 1);
        let mut total = 0u32;
        bounds.push(0);
        for &c in &counts {
            total += c;
            bounds.push(total);
        }
        let mut next: Vec<u32> = bounds[..counts.len()].to_vec();
        let mut order = vec![0u32; n];
        for v in graph.nodes() {
            let b = Self::bucket_of_degree(graph.degree(v));
            order[next[b] as usize] = u32::try_from(v.index()).expect("node fits in u32");
            next[b] += 1;
        }
        Self { order, bounds }
    }

    /// Number of buckets (highest occupied bucket + 1).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The node indices of bucket `b`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `b >= bucket_count()`.
    #[must_use]
    pub fn bucket(&self, b: usize) -> &[u32] {
        &self.order[self.bounds[b] as usize..self.bounds[b + 1] as usize]
    }

    /// Every node exactly once, cheapest bucket first (the engine's
    /// processing order).
    pub fn iter_by_bucket(&self) -> impl Iterator<Item = u32> + '_ {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_graph::generators;

    #[test]
    fn plain_assigns_index_ids() {
        let c = Configuration::plain(generators::cycle(5));
        for v in c.graph().nodes() {
            assert_eq!(c.state(v).id(), v.index() as u64);
        }
        assert_eq!(c.state_bits(), 64);
    }

    #[test]
    fn with_ids_and_lookup() {
        let c = Configuration::with_ids(generators::path(3), &[10, 20, 30]);
        assert_eq!(c.node_with_id(20), Some(NodeId::new(1)));
        assert_eq!(c.node_with_id(99), None);
        assert_eq!(c.id_width(), 5); // 30 needs 5 bits
    }

    #[test]
    #[should_panic(expected = "pairwise distinct")]
    fn duplicate_ids_rejected() {
        let _ = Configuration::with_ids(generators::path(3), &[1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "one state per node")]
    fn state_count_mismatch_rejected() {
        let _ = Configuration::new(generators::path(3), vec![State::with_id(0)]);
    }

    #[test]
    fn payloads_count_toward_state_bits() {
        let mut c = Configuration::plain(generators::path(2));
        c.state_mut(NodeId::new(0))
            .set_payload(BitString::zeros(100));
        assert_eq!(c.state_bits(), 164);
    }

    #[test]
    fn with_graph_preserves_states() {
        let c = Configuration::with_ids(generators::cycle(4), &[7, 8, 9, 10]);
        let crossedlike = c.with_graph(generators::cycle(4));
        assert_eq!(crossedlike.state(NodeId::new(2)).id(), 9);
    }

    #[test]
    #[should_panic(expected = "preserves the node set")]
    fn with_graph_rejects_resize() {
        let c = Configuration::plain(generators::cycle(4));
        let _ = c.with_graph(generators::cycle(5));
    }

    #[test]
    fn port_layout_is_a_csr_over_degrees() {
        let c = Configuration::plain(generators::star(4)); // center + 4 leaves
        let g = c.graph();
        assert_eq!(c.port_count(), 2 * g.edge_count());
        for v in g.nodes() {
            let lo = c.port_base()[v.index()] as usize;
            let hi = c.port_base()[v.index() + 1] as usize;
            assert_eq!(hi - lo, g.degree(v));
            assert_eq!(c.incident_weights(v).len(), g.degree(v));
        }
    }

    #[test]
    fn delivery_map_is_an_involution_onto_far_ports() {
        let c = Configuration::plain(generators::wheel(6));
        let g = c.graph();
        let delivery = c.delivery();
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                let here = c.port_index(v, nb.port.rank());
                let there = c.port_index(nb.node, nb.remote_port.rank());
                assert_eq!(delivery[here] as usize, there);
                assert_eq!(delivery[there] as usize, here);
            }
        }
    }

    #[test]
    fn port_owner_inverts_the_csr() {
        let c = Configuration::plain(generators::wheel(6));
        for v in c.graph().nodes() {
            let lo = c.port_base()[v.index()] as usize;
            let hi = c.port_base()[v.index() + 1] as usize;
            for i in lo..hi {
                assert_eq!(c.port_owner()[i] as usize, v.index());
            }
        }
        assert_eq!(c.port_owner().len(), c.port_count());
    }

    #[test]
    fn degree_buckets_partition_nodes_by_power_of_two() {
        assert_eq!(DegreeBuckets::bucket_of_degree(0), 0);
        assert_eq!(DegreeBuckets::bucket_of_degree(1), 1);
        assert_eq!(DegreeBuckets::bucket_of_degree(2), 2);
        assert_eq!(DegreeBuckets::bucket_of_degree(3), 3);
        assert_eq!(DegreeBuckets::bucket_of_degree(4), 3);
        assert_eq!(DegreeBuckets::bucket_of_degree(5), 4);
        assert_eq!(DegreeBuckets::bucket_of_degree(8), 4);
        assert_eq!(DegreeBuckets::bucket_of_degree(9), 5);

        let g = generators::star(6); // center degree 6, leaves degree 1
        let buckets = DegreeBuckets::new(&g);
        let mut seen: Vec<u32> = buckets.iter_by_bucket().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<u32>>());
        for b in 0..buckets.bucket_count() {
            for &v in buckets.bucket(b) {
                let d = g.degree(rpls_graph::NodeId::new(v as usize));
                assert_eq!(DegreeBuckets::bucket_of_degree(d), b, "node {v}");
            }
        }
        // Leaves (degree 1) come before the hub (degree 6).
        let order: Vec<u32> = buckets.iter_by_bucket().collect();
        assert_eq!(*order.last().unwrap(), 0, "hub is processed last");
    }

    #[test]
    fn incident_weights_follow_port_order() {
        let g = generators::cycle(4).with_weights(&[10, 20, 30, 40]);
        let c = Configuration::plain(g);
        for v in c.graph().nodes() {
            let expect: Vec<Option<u64>> = c.graph().neighbors(v).map(|nb| nb.weight).collect();
            assert_eq!(c.incident_weights(v), expect.as_slice());
        }
    }
}
