//! The proof-labeling scheme framework of *Randomized Proof-Labeling
//! Schemes* (Baruch, Fraigniaud, Patt-Shamir, PODC 2015).
//!
//! This crate implements §2 (model), §3 (the relation between deterministic
//! and randomized schemes) and the measurement machinery the experiments
//! need:
//!
//! * [`state`] — node states and [`Configuration`]s `G_s` (§2.1);
//! * [`scheme`] — the [`Pls`] and [`Rpls`] traits: prover, verifier, and
//!   the strictly local views they are allowed to see (§2.2);
//! * [`engine`] — the synchronous execution: label exchange for
//!   deterministic schemes, certificate generation with per-(node, port)
//!   independent randomness (edge-independent by construction,
//!   Definition 4.5) and delivery for randomized ones, and the **t-round
//!   trade-off schedules** (`run_multiround_*`) that verify a proof of
//!   size κ over `t` rounds at ≈ κ/t bits per round per edge;
//! * [`compiler`] — **Theorem 3.1**: any deterministic scheme with
//!   verification complexity κ compiles into a one-sided randomized scheme
//!   exchanging `O(log κ)` bits, via the Lemma A.1 equality protocol;
//! * [`universal`] — **Lemma 3.3** (the universal deterministic scheme on
//!   `O(min(n², m log n) + nk)` bits) and **Corollary 3.4** (its compilation
//!   to `O(log n + log k)`-bit certificates);
//! * [`buffer`] — the flat certificate arena ([`CertificateBuffer`]) and
//!   reusable [`RoundScratch`] the high-throughput round loop runs on;
//! * [`rng`] — counter-based per-(node, port) random streams
//!   ([`PortRng`]), cheap enough to key one per directed edge per round;
//! * [`stats`] — Monte-Carlo acceptance estimation and the footnote-1
//!   majority boosting, serial and (feature `parallel`) thread-sharded;
//! * [`measure`] — verification complexity (Definition 2.1) measured in
//!   exact bits;
//! * [`prep`] — the cross-labeling [`PrepCache`] that amortises compiled
//!   preparation (parsed labels, shared fingerprints, lazy GF(p) tables)
//!   across the labelings of a sweep;
//! * [`adversary`] — label forgers used to probe soundness: exhaustive for
//!   tiny label spaces, randomized hill-climbing otherwise;
//! * [`fault`] — deterministic, seed-replayable fault injection
//!   (lossy/corrupting channels, duplication, crash-stop nodes) with
//!   graceful-degradation semantics: a node missing input rejects
//!   conservatively, so faults can degrade completeness but never break
//!   the one-sided soundness; every engine layer has a faulted twin
//!   (`engine::run_*_faulted_with`) that is bit-identical to the clean
//!   path under a transparent plan;
//! * [`local_decision`] — the label-free `LD(t)` baseline of
//!   Fraigniaud–Korman–Peleg (radius-t ball inspection), implemented so the
//!   repository can show what proof labels buy over plain local decision.
//!
//! # The verification pipeline
//!
//! Every estimate this crate produces — acceptance probabilities,
//! verification complexities, adversary sweeps — is Monte-Carlo over
//! verification rounds, and the engine exposes four layers that trade
//! generality for throughput. All four are **bit-identical** on the same
//! inputs (`tests/engine_golden.rs` pins it); each layer only moves work,
//! never results:
//!
//! 1. **Unprepared** — [`engine::run_randomized_with`] routes every
//!    (node, port) straight through [`Rpls::certify_into`] /
//!    [`Rpls::verify`]. No setup, full per-round cost: labels are
//!    re-parsed and fingerprint polynomials rebuilt every round. Right
//!    for one-shot rounds.
//! 2. **Prepared** — [`Rpls::prepare`] binds the scheme to one
//!    `(configuration, labeling)` pair and hoists per-labeling work out
//!    of the loop; [`engine::run_randomized_prepared_with`] then runs
//!    single rounds at one random field element plus one polynomial probe
//!    per (node, port) for the compiled schemes.
//! 3. **Batched** — [`engine::run_trials_batched_with`] hands whole
//!    blocks of per-trial seeds to [`PreparedRpls::run_trials`];
//!    [`CompiledRpls`] answers with a labeling-static batch plan that
//!    classifies nodes (always-reject / static-pass / dynamic), drops
//!    statically satisfied probes, skips already-rejected trials, and
//!    never materialises a certificate.
//! 4. **Cached** — [`Rpls::prepare_cached`] reuses a content-keyed
//!    [`PrepCache`] *across* labelings, so a sweep (an adversary's forged
//!    candidates, a configuration scan) re-prepares only the labels that
//!    actually changed.
//!
//! The same ladder carries the **t-round trade-off**: any scheme verifies
//! in `t` rounds via [`engine::run_multiround_with`] (certificates split
//! into `t` chunks, ≈ κ/t bits per round), prepared/batched variants ride
//! layers 2–4 unchanged, and [`CompiledRpls`] streams one fingerprint of
//! each κ/t-bit label slice per round with early rejection.
//!
//! ```
//! use rpls_core::prelude::*;
//! use rpls_graph::generators;
//!
//! // A toy deterministic scheme: every node must carry an empty label.
//! struct Empty;
//! impl Pls for Empty {
//!     fn name(&self) -> String { "empty".into() }
//!     fn label(&self, c: &Configuration) -> Labeling { Labeling::empty(c.node_count()) }
//!     fn verify(&self, view: &DetView<'_>) -> bool { view.label.is_empty() }
//! }
//!
//! let config = Configuration::plain(generators::cycle(6));
//! let scheme = CompiledRpls::new(Empty); // Theorem 3.1 compilation
//! let labeling = Rpls::label(&scheme, &config);
//! let mut scratch = RoundScratch::new();
//!
//! // Layer 1: unprepared single round.
//! let one = engine::run_randomized_with(
//!     &scheme, &config, &labeling, 7, StreamMode::EdgeIndependent, &mut scratch);
//! assert!(one.accepted);
//!
//! // Layer 2: prepared single round — bit-identical.
//! let prepared = scheme.prepare(&config, &labeling, 100);
//! let two = engine::run_randomized_prepared_with(
//!     &*prepared, &config, 7, StreamMode::EdgeIndependent, &mut scratch);
//! assert_eq!(one, two);
//!
//! // Layer 3: batched trials — same summaries, whole blocks at a time.
//! let mut batched = Vec::new();
//! engine::run_trials_batched_with(
//!     &*prepared, &config, &[7, 8], StreamMode::EdgeIndependent,
//!     &mut scratch, &mut |s| batched.push(s));
//! assert_eq!(batched[0], one);
//!
//! // Layer 4: cached preparation across a sweep — same estimates.
//! let mut cache = PrepCache::new();
//! let p = stats::acceptance_probability_cached(
//!     &scheme, &config, &labeling, 50, 7, &mut scratch, &mut cache);
//! assert_eq!(p, 1.0);
//!
//! // The t-round trade-off rides the same prepared instance: 4 rounds,
//! // ≤ the one-round bits per round, same verdict.
//! let multi = engine::run_multiround_prepared_with(
//!     &*prepared, &config, 7, 4, StreamMode::EdgeIndependent, &mut scratch);
//! assert!(multi.accepted);
//! assert!(multi.max_bits_per_round <= one.max_certificate_bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod buffer;
pub mod compiler;
pub mod engine;
pub mod fault;
pub mod labeling;
pub mod local_decision;
pub mod measure;
pub mod prep;
pub mod rng;
pub mod scheme;
pub mod state;
pub mod stats;
pub mod universal;

pub use buffer::{CertificateBuffer, Received, RoundScratch};
pub use compiler::{CompiledRpls, ProbeSketch};
pub use fault::{
    DegradedSummary, DeliveryOutcome, FaultCounts, FaultPlan, FaultSpec, FaultedMultiRoundSummary,
    FaultedRoundSummary, NodeVerdict,
};
pub use labeling::Labeling;
pub use prep::{CacheStats, PrepCache};
pub use rng::PortRng;
pub use scheme::{CertView, DetView, ErrorSides, Pls, Predicate, PreparedRpls, RandView, Rpls};
pub use state::{Configuration, DegreeBuckets, State};
pub use universal::{UniversalPls, UniversalRpls};

/// Convenient glob-import surface: `use rpls_core::prelude::*;`.
pub mod prelude {
    pub use crate::buffer::{CertificateBuffer, Received, RoundScratch};
    pub use crate::compiler::{CompiledRpls, ProbeSketch};
    pub use crate::engine::{
        self, FaultReport, MessagePattern, MultiRoundSummary, Outcome, PatternCost, RoundSummary,
        RunReport, RunSpec, SeedSource, StreamMode,
    };
    pub use crate::fault::{
        DegradedSummary, DeliveryOutcome, FaultCounts, FaultPlan, FaultSpec,
        FaultedMultiRoundSummary, FaultedRoundSummary, NodeVerdict,
    };
    pub use crate::labeling::Labeling;
    pub use crate::measure;
    pub use crate::prep::{CacheStats, PrepCache};
    pub use crate::rng::PortRng;
    pub use crate::scheme::{
        CertView, DetView, ErrorSides, Pls, Predicate, PreparedRpls, RandView, Rpls,
    };
    pub use crate::state::{Configuration, State};
    pub use crate::stats;
    pub use crate::universal::{UniversalPls, UniversalRpls};
}
