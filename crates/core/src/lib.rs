//! The proof-labeling scheme framework of *Randomized Proof-Labeling
//! Schemes* (Baruch, Fraigniaud, Patt-Shamir, PODC 2015).
//!
//! This crate implements §2 (model), §3 (the relation between deterministic
//! and randomized schemes) and the measurement machinery the experiments
//! need:
//!
//! * [`state`] — node states and [`Configuration`]s `G_s` (§2.1);
//! * [`scheme`] — the [`Pls`] and [`Rpls`] traits: prover, verifier, and
//!   the strictly local views they are allowed to see (§2.2);
//! * [`engine`] — the one-round synchronous execution: label exchange for
//!   deterministic schemes, certificate generation with per-(node, port)
//!   independent randomness (edge-independent by construction,
//!   Definition 4.5) and delivery for randomized ones;
//! * [`compiler`] — **Theorem 3.1**: any deterministic scheme with
//!   verification complexity κ compiles into a one-sided randomized scheme
//!   exchanging `O(log κ)` bits, via the Lemma A.1 equality protocol;
//! * [`universal`] — **Lemma 3.3** (the universal deterministic scheme on
//!   `O(min(n², m log n) + nk)` bits) and **Corollary 3.4** (its compilation
//!   to `O(log n + log k)`-bit certificates);
//! * [`buffer`] — the flat certificate arena ([`CertificateBuffer`]) and
//!   reusable [`RoundScratch`] the high-throughput round loop runs on;
//! * [`rng`] — counter-based per-(node, port) random streams
//!   ([`PortRng`]), cheap enough to key one per directed edge per round;
//! * [`stats`] — Monte-Carlo acceptance estimation and the footnote-1
//!   majority boosting, serial and (feature `parallel`) thread-sharded;
//! * [`measure`] — verification complexity (Definition 2.1) measured in
//!   exact bits;
//! * [`prep`] — the cross-labeling [`PrepCache`] that amortises compiled
//!   preparation (parsed labels, shared fingerprints, lazy GF(p) tables)
//!   across the labelings of a sweep;
//! * [`adversary`] — label forgers used to probe soundness: exhaustive for
//!   tiny label spaces, randomized hill-climbing otherwise;
//! * [`local_decision`] — the label-free `LD(t)` baseline of
//!   Fraigniaud–Korman–Peleg (radius-t ball inspection), implemented so the
//!   repository can show what proof labels buy over plain local decision.
//!
//! # Examples
//!
//! ```
//! use rpls_core::prelude::*;
//! use rpls_graph::generators;
//!
//! let g = generators::cycle(6);
//! let config = Configuration::plain(g);
//! // See `rpls-schemes` for real schemes and `examples/` for walkthroughs.
//! assert_eq!(config.node_count(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod buffer;
pub mod compiler;
pub mod engine;
pub mod labeling;
pub mod local_decision;
pub mod measure;
pub mod prep;
pub mod rng;
pub mod scheme;
pub mod state;
pub mod stats;
pub mod universal;

pub use buffer::{CertificateBuffer, Received, RoundScratch};
pub use compiler::CompiledRpls;
pub use labeling::Labeling;
pub use prep::PrepCache;
pub use rng::PortRng;
pub use scheme::{CertView, DetView, ErrorSides, Pls, Predicate, PreparedRpls, RandView, Rpls};
pub use state::{Configuration, State};
pub use universal::{UniversalPls, UniversalRpls};

/// Convenient glob-import surface: `use rpls_core::prelude::*;`.
pub mod prelude {
    pub use crate::buffer::{CertificateBuffer, Received, RoundScratch};
    pub use crate::compiler::CompiledRpls;
    pub use crate::engine::{self, Outcome, RoundSummary, StreamMode};
    pub use crate::labeling::Labeling;
    pub use crate::measure;
    pub use crate::prep::PrepCache;
    pub use crate::rng::PortRng;
    pub use crate::scheme::{
        CertView, DetView, ErrorSides, Pls, Predicate, PreparedRpls, RandView, Rpls,
    };
    pub use crate::state::{Configuration, State};
    pub use crate::stats;
    pub use crate::universal::{UniversalPls, UniversalRpls};
}
