//! Cross-labeling preparation cache.
//!
//! [`Rpls::prepare`](crate::scheme::Rpls::prepare) hoists per-labeling work
//! out of the round loop — but a *sweep* (an acceptance estimate per forged
//! candidate, a complexity measurement per configuration) pays that
//! preparation once per labeling, and under the Theorem 3.1 compiler the
//! preparations of neighboring labelings are nearly identical: the same
//! inner labels are fingerprinted under the same per-κ primes again and
//! again. [`PrepCache`] makes that work shared. It outlives any single
//! [`Rpls::prepare_cached`](crate::scheme::Rpls::prepare_cached) call and
//! memoises two layers of **content-keyed** state:
//!
//! * fingerprint preparations, keyed by `(modulus, fingerprinted string)` —
//!   the shared [`PreparedEq`]s whose lazily built GF(p) evaluation tables
//!   are the expensive part of compiled preparation;
//! * whole replicated-label parses, keyed by the label's bits — the parsed
//!   `(κ, parts)` split plus the per-part fingerprint handles, so a label
//!   seen before (in this labeling or any earlier one) costs one hash
//!   lookup instead of a re-parse and re-preparation.
//!
//! **Cache poisoning is impossible by construction**: every key is the full
//! content the cached value is a function of (the map hashes the key and
//! then verifies it by equality on every hit), and nothing
//! configuration- or scheme-dependent is ever stored — arity-vs-degree
//! checks and inner-verifier verdicts stay per-prepared-instance. One cache
//! may therefore serve different labelings, different configurations, and
//! different compiled schemes; transcripts are bit-identical to uncached
//! preparation either way (`tests/engine_golden.rs` pins this).
//!
//! Memory is bounded by two per-epoch budgets: an aggregate cap on
//! evaluation-table slots ([`PrepCache::TABLE_SLOT_BUDGET`], 64 MiB of
//! `u64`s) and a cap on retention cost ([`PrepCache::KEY_BITS_BUDGET`],
//! key bits plus a per-entry overhead charge). When the retention budget
//! runs out the cache **turns over an epoch** — clears itself and starts
//! fresh — so a sweep of any length keeps amortising against its recent
//! candidates while live memory stays bounded by one epoch's budgets
//! (plus whatever outstanding prepared instances pin). Values are
//! identical shared or not, so neither budget exhaustion nor an epoch
//! boundary can ever change a transcript.

use rpls_bits::BitString;
use rpls_fingerprint::PreparedEq;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// A multiply-rotate hasher (the `FxHash` construction) for the cache
/// maps: the keys are multi-word bit strings hashed on every lookup of
/// every node of every labeling, and the cache needs throughput, not
/// DoS-resistant hashing — lookups verify the full key by equality on
/// every hit, so an engineered collision can only slow the cache down,
/// never corrupt it.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        if !chunks.remainder().is_empty() {
            self.write_u64(tail);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Firefox's multiply-rotate mix: one rotate, one xor, one multiply
        // per word.
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A preparation cache shared across labelings (and configurations); see
/// the [module docs](self) for the contract.
///
/// # Examples
///
/// ```
/// use rpls_core::prelude::*;
/// use rpls_core::PrepCache;
/// use rpls_graph::generators;
///
/// // A tiny deterministic scheme: every label must be empty.
/// struct Empty;
/// impl Pls for Empty {
///     fn name(&self) -> String { "empty".into() }
///     fn label(&self, c: &Configuration) -> Labeling { Labeling::empty(c.node_count()) }
///     fn verify(&self, view: &DetView<'_>) -> bool { view.label.is_empty() }
/// }
///
/// let config = Configuration::plain(generators::cycle(8));
/// let scheme = CompiledRpls::new(Empty);
/// let labeling = Rpls::label(&scheme, &config);
/// let mut cache = PrepCache::new();
/// let mut scratch = RoundScratch::new();
/// // A sweep reuses one cache: later estimates skip re-preparation.
/// for seed in 0..4 {
///     let p = stats::acceptance_probability_cached(
///         &scheme, &config, &labeling, 50, seed, &mut scratch, &mut cache,
///     );
///     assert_eq!(p, 1.0);
/// }
/// assert!(cache.shared_labels() > 0);
/// assert!(cache.hits() > cache.misses());
/// ```
pub struct PrepCache {
    /// The fingerprint layer plus budgets and counters, behind a shared
    /// handle (see [`EqStore`]): prepared instances clone it so plans
    /// built lazily after binding time (the per-`t` multi-round slice
    /// schedules) request their fingerprints through the same
    /// content-keyed sharing and epoch budgets as everything prepared up
    /// front.
    pub(crate) store: Rc<RefCell<EqStore>>,
    /// Replicated-label preparations keyed by the raw label bits.
    pub(crate) labels: HashMap<BitString, Rc<CachedLabel>, FxBuildHasher>,
    /// The store epoch this label map belongs to. The store turns epochs
    /// over without a handle on the label map, so the map is cleared
    /// *lazily*: any label lookup that observes a newer store epoch first
    /// drops the stale entries (their `Rc`s stay valid for holders —
    /// only future sharing restarts, exactly as for fingerprints).
    pub(crate) labels_epoch: u64,
}

/// The fingerprint layer of a [`PrepCache`]: shared preparations keyed by
/// `(modulus, fingerprinted string)`, the per-epoch budgets, and the
/// hit/miss counters. Split out behind `Rc<RefCell<…>>` so prepared
/// instances can keep requesting content-keyed preparations *after*
/// binding time — the multi-round planner cuts slice fingerprints on
/// first use of each `t`, long after `prepare_cached` returned — against
/// the same budgets and sharing as binding-time preparation.
pub(crate) struct EqStore {
    /// Fingerprint preparations keyed by `(modulus, fingerprinted string)`.
    pub(crate) eq: HashMap<(u64, BitString), Rc<PreparedEq>, FxBuildHasher>,
    /// Remaining evaluation-table slots (`u64` entries) this store may
    /// still grant in the current epoch.
    pub(crate) table_slots: u64,
    /// Remaining retention budget (key bits + per-entry overhead) for the
    /// current epoch.
    pub(crate) key_bits: u64,
    /// Epoch turnovers so far (see [`PrepCache::epochs`]).
    pub(crate) epoch_count: u64,
    /// Lookups served from the cache (either layer).
    pub(crate) hits: u64,
    /// Lookups that had to prepare fresh state (either layer).
    pub(crate) misses: u64,
}

impl EqStore {
    /// An empty store with full budgets.
    fn new() -> Self {
        Self {
            eq: HashMap::default(),
            table_slots: PrepCache::TABLE_SLOT_BUDGET,
            key_bits: PrepCache::KEY_BITS_BUDGET,
            epoch_count: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Turns the store over to a fresh epoch: the fingerprint map is
    /// cleared and both budgets reset. The label layer lives on
    /// [`PrepCache`] and clears itself lazily on the next lookup that
    /// observes the bumped epoch count. Live `Rc`s held by outstanding
    /// prepared instances stay valid — only future sharing is affected,
    /// and values never depend on sharing, so an epoch boundary can never
    /// change a transcript.
    pub(crate) fn begin_epoch(&mut self) {
        self.eq.clear();
        self.table_slots = PrepCache::TABLE_SLOT_BUDGET;
        self.key_bits = PrepCache::KEY_BITS_BUDGET;
        self.epoch_count += 1;
    }
}

/// The content-derived preparation of one replicated label — everything the
/// compiled prover and verifier need from the label that does not depend on
/// which node (or which configuration) carries it. Built by
/// `CompiledRpls::prepare_cached` and shared via [`Rc`] across nodes,
/// labelings, and sweeps.
pub(crate) struct CachedLabel {
    /// The prover-side fingerprint of the `(κ, own-label)` prefix, `None`
    /// when that prefix is malformed (such nodes emit empty certificates).
    pub(crate) prover: Option<Rc<PreparedEq>>,
    /// The verifier-side parse of the full replication, `None` when it is
    /// malformed. Whether its arity matches a node's degree is checked at
    /// binding time, not here — degree is not label content.
    pub(crate) replication: Option<CachedReplication>,
}

/// The verifier-side half of a [`CachedLabel`]: the parsed parts and one
/// prepared fingerprint per claimed neighbor copy.
pub(crate) struct CachedReplication {
    /// Exact certificate size every received message must have.
    pub(crate) expected_bits: usize,
    /// The protocol prime for the label's declared κ.
    pub(crate) modulus: u64,
    /// The parsed parts `(own, claimed₀, …, claimed_{d−1})`.
    pub(crate) parts: Vec<BitString>,
    /// One prepared fingerprint per claimed neighbor copy, in port order.
    pub(crate) ports: Vec<Rc<PreparedEq>>,
}

impl PrepCache {
    /// Aggregate cap on evaluation-table slots a cache may grant: `2²³`
    /// `u64` entries ≈ 64 MiB. Each table is additionally capped
    /// individually inside `EqProtocol::prepare`; this budget stops an
    /// adversarial sweep from multiplying per-table cost by labels × ports
    /// × labelings.
    pub const TABLE_SLOT_BUDGET: u64 = 1 << 23;

    /// Cap on the retention cost the cache may accumulate, in bits: `2²⁶`
    /// = 8 Mi. Each retained entry is charged its key bits **plus**
    /// [`PrepCache::ENTRY_OVERHEAD_BITS`] for the heap bookkeeping a key
    /// does not show (map buckets, `Rc` allocations, parsed parts, the
    /// polynomial clone), so both adversarial regimes stay bounded: a few
    /// enormous labels and floods of tiny distinct ones (at most ~16k
    /// entries). Exhausting the budget turns the cache over to a fresh
    /// epoch (see [`PrepCache::epochs`]); an entry too large for even a
    /// whole epoch's budget is handed out unshared instead.
    pub const KEY_BITS_BUDGET: u64 = 1 << 26;

    /// Flat per-entry charge against [`PrepCache::KEY_BITS_BUDGET`]:
    /// 4096 bits ≈ 512 bytes, a deliberate overestimate of the per-entry
    /// allocations around the key itself.
    pub const ENTRY_OVERHEAD_BITS: u64 = 1 << 12;

    /// The retention charge for an entry whose key is `key_bits` bits.
    pub(crate) fn key_cost(key_bits: usize) -> u64 {
        key_bits as u64 + Self::ENTRY_OVERHEAD_BITS
    }

    /// An empty cache with full budgets.
    #[must_use]
    pub fn new() -> Self {
        Self {
            store: Rc::new(RefCell::new(EqStore::new())),
            labels: HashMap::default(),
            labels_epoch: 0,
        }
    }

    /// A clone of the shared fingerprint-store handle, for prepared
    /// instances that build plans lazily after binding time.
    pub(crate) fn store_handle(&self) -> Rc<RefCell<EqStore>> {
        Rc::clone(&self.store)
    }

    /// The lazy half of an epoch turnover: if the store has moved on to a
    /// newer epoch since this label map was last touched, drop the stale
    /// entries. Must run before any read of — or insert into — the label
    /// map.
    pub(crate) fn sync_labels(&mut self) {
        let epoch = self.store.borrow().epoch_count;
        if epoch != self.labels_epoch {
            self.labels.clear();
            self.labels_epoch = epoch;
        }
    }

    /// How many times the cache has turned over an epoch (cleared itself
    /// after exhausting a retention budget). 0 for a cache that has never
    /// overflowed.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.store.borrow().epoch_count
    }

    /// Number of shared fingerprint preparations currently retained.
    #[must_use]
    pub fn shared_fingerprints(&self) -> usize {
        self.store.borrow().eq.len()
    }

    /// Number of shared replicated-label preparations currently retained.
    #[must_use]
    pub fn shared_labels(&self) -> usize {
        if self.store.borrow().epoch_count != self.labels_epoch {
            // Stale entries pending their lazy clear are already dead for
            // sharing purposes.
            return 0;
        }
        self.labels.len()
    }

    /// Retention cost (key bits plus per-entry overhead) charged in the
    /// current epoch — by construction never exceeds
    /// [`PrepCache::KEY_BITS_BUDGET`].
    #[must_use]
    pub fn retained_key_bits(&self) -> u64 {
        Self::KEY_BITS_BUDGET - self.store.borrow().key_bits
    }

    /// Evaluation-table slots granted in the current epoch — by
    /// construction never exceeds [`PrepCache::TABLE_SLOT_BUDGET`]. Slots
    /// are *reserved* when a preparation is allowed a table (the tables
    /// themselves build lazily), so this is an upper bound on the epoch's
    /// table memory, counted in `u64` entries.
    #[must_use]
    pub fn table_slots_reserved(&self) -> u64 {
        Self::TABLE_SLOT_BUDGET - self.store.borrow().table_slots
    }

    /// Lookups served from the cache since construction (label or
    /// fingerprint layer).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.store.borrow().hits
    }

    /// Lookups that prepared fresh state since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.store.borrow().misses
    }
}

/// A point-in-time snapshot of a [`PrepCache`]'s counters, as returned by
/// [`PrepCache::stats`]. Everything a service operator needs to judge
/// whether cross-tenant sharing is paying off: lifetime hit/miss counts,
/// epoch turnovers, and the current epoch's retained footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache since construction (label or
    /// fingerprint layer).
    pub hits: u64,
    /// Lookups that prepared fresh state since construction.
    pub misses: u64,
    /// Epoch turnovers so far (see [`PrepCache::epochs`]).
    pub epochs: u64,
    /// Retention cost charged in the current epoch, rounded up to bytes
    /// (key bytes plus per-entry overhead; see
    /// [`PrepCache::KEY_BITS_BUDGET`]).
    pub retained_bytes: u64,
    /// Shared fingerprint preparations currently retained.
    pub shared_fingerprints: usize,
    /// Shared replicated-label preparations currently retained.
    pub shared_labels: usize,
    /// Evaluation-table slots (`u64` entries) reserved in the current
    /// epoch.
    pub table_slots_reserved: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache, `0.0` when the cache has
    /// never been consulted.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

impl PrepCache {
    /// A snapshot of the cache's counters; see [`CacheStats`].
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            epochs: self.epochs(),
            retained_bytes: self.retained_key_bits().div_ceil(8),
            shared_fingerprints: self.shared_fingerprints(),
            shared_labels: self.shared_labels(),
            table_slots_reserved: self.table_slots_reserved(),
        }
    }
}

impl Default for PrepCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PrepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrepCache")
            .field("shared_fingerprints", &self.shared_fingerprints())
            .field("shared_labels", &self.shared_labels())
            .field("retained_key_bits", &self.retained_key_bits())
            .field("table_slots_reserved", &self.table_slots_reserved())
            .field("epochs", &self.epochs())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cache_is_empty_with_full_budgets() {
        let cache = PrepCache::new();
        assert_eq!(cache.shared_fingerprints(), 0);
        assert_eq!(cache.shared_labels(), 0);
        assert_eq!(cache.retained_key_bits(), 0);
        assert_eq!(cache.table_slots_reserved(), 0);
        assert_eq!(cache.epochs(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        let dbg = format!("{:?}", PrepCache::default());
        assert!(dbg.contains("PrepCache"));
    }

    #[test]
    fn stats_snapshot_mirrors_accessors() {
        let cache = PrepCache::new();
        let stats = cache.stats();
        assert_eq!(stats, CacheStats::default());
        assert_eq!(stats.hit_rate(), 0.0);
        let warm = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(warm.hit_rate(), 0.75);
    }
}
