//! Cheap deterministic random streams for the verification engine.
//!
//! The engine of §2.1 draws one independent random stream per (node, port).
//! Seeding a ChaCha-based [`StdRng`](rand::rngs::StdRng) for every stream
//! costs a full key expansion plus a block computation per certificate —
//! the dominant cost of a randomized round once certificates are small
//! (which Theorem 3.1 makes them). [`PortRng`] replaces that with a
//! counter-based SplitMix64 stream keyed by [`mix_seed`]: one multiply-xor
//! chain per drawn word, no setup at all.
//!
//! Edge-independence (Definition 4.5) is preserved by construction: the
//! streams for distinct `(seed, node, port)` triples are keyed by distinct
//! SplitMix64 states, exactly as the previous per-stream `StdRng` seeds
//! were. The deliberate violation mode (one stream per node, shared across
//! its ports — Proposition 4.6's hypothesis probe) is
//! [`PortRng::for_node`] reused sequentially.

use rand::Rng;

/// SplitMix64-style mixer deriving per-(node, port) stream keys from the
/// round seed. Public because the lower-bound tooling derives its own
/// streams the same way.
#[must_use]
pub fn mix_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The first word of the `(seed, node, port)` stream, as a pure function —
/// exactly what `PortRng::for_edge(seed, node, port).next_u64()` returns,
/// without materialising the generator.
///
/// The batched trial engine draws its per-(edge, trial) randomness through
/// this: schemes whose certificate consumes a single word (one field
/// element — the compiled Theorem 3.1 schemes) can evaluate a whole block
/// of trials as a counter block of these words, with no generator state,
/// no `dyn Rng` dispatch, and bit-identical output to the scalar path.
#[inline]
#[must_use]
pub fn edge_stream_first_word(seed: u64, node: u64, port: u64) -> u64 {
    split_mix_output(mix_seed(seed, node, port).wrapping_add(GAMMA))
}

/// The `index`-th word of the **per-node** stream
/// `PortRng::for_node(seed, node)`, as a pure function — exactly what the
/// generator's `(index + 1)`-th `next_u64()` call returns.
///
/// The multi-round engine's shared-stream diagnostics mode draws one word
/// per port from the node's single stream (port rank `p` consumes word
/// `p`); this lets the batched multi-round kernel reproduce those draws
/// without materialising the generator, exactly as
/// [`edge_stream_first_word`] does for the edge-independent mode.
#[inline]
#[must_use]
pub fn node_stream_word(seed: u64, node: u64, index: u64) -> u64 {
    split_mix_output(mix_seed(seed, node, u64::MAX).wrapping_add((index + 1).wrapping_mul(GAMMA)))
}

/// The `index`-th word of the stream keyed by a raw SplitMix64 `state`, as
/// a pure function — exactly what `PortRng::from_state(state)`'s
/// `(index + 1)`-th `next_u64()` call returns.
///
/// The fault-injection layer derives its per-(trial, round, edge) decision
/// words through this: a fault schedule is a pure function of a mixed
/// fault state and a counter, so any schedule replays bit-identically from
/// the same `(seed, fault_seed)` pair with no generator state to thread.
#[inline]
#[must_use]
pub fn state_stream_word(state: u64, index: u64) -> u64 {
    split_mix_output(state.wrapping_add((index + 1).wrapping_mul(GAMMA)))
}

/// Domain-separation tag of the probe-sketch subsampling streams, chosen
/// to collide with neither the estimator tags, the beacon tag, nor any
/// (node, port) mixing.
const TAG_SKETCH: u64 = 0x736B_6574_6368; // "sketch"

/// The `draw`-th word of the per-`(trial seed, node)` **sketch stream** —
/// the stream from which the dense-graph probe sketch samples which of a
/// high-degree node's fingerprint checks to run this trial.
///
/// Domain-separated from every probe stream ([`mix_seed`] under a
/// dedicated tag), so which checks a sketch samples is independent of the
/// field points those checks then draw — the independence the sketch
/// soundness argument needs.
#[inline]
#[must_use]
pub fn sketch_stream_word(seed: u64, node: u64, draw: u64) -> u64 {
    state_stream_word(mix_seed(seed, node, TAG_SKETCH), draw)
}

/// Seed-derivation tag of the public-beacon mode, chosen to collide with
/// neither the estimator tags in [`stats`](crate::stats) nor the engine's
/// multiround tag nor any (node, port) mixing.
const TAG_BEACON: u64 = 0x6265_6163_6F6E; // "beacon"

/// Derives the engine base seed of the **public-coin** (beacon) mode from a
/// randomness-beacon pulse: `(round_id, value)` is the pulse's sequence
/// number and its published 64-bit value (GRAIL-style — e.g. a drand round
/// and a word of its output). All verifier randomness is then the ordinary
/// counter stream keyed by this seed, so any third party holding only the
/// pulse and a published transcript re-derives every certificate
/// bit-for-bit — the engine's determinism *is* the audit mechanism.
///
/// The derivation is domain-separated ([`mix_seed`] under a dedicated tag),
/// so beacon streams never collide with trial-seeded estimator streams.
#[must_use]
pub fn beacon_seed(round_id: u64, value: u64) -> u64 {
    mix_seed(value, round_id, TAG_BEACON)
}

/// The SplitMix64 additive constant shared by [`PortRng`] and the
/// counter-block path.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output permutation applied to an advanced state word.
#[inline]
fn split_mix_output(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based SplitMix64 stream: the per-(node, port) generator of the
/// randomized round engine.
///
/// Statistically this is the standard SplitMix64 sequence (64-bit state,
/// full-period, passes BigCrush), which is ample for certificate sampling;
/// cryptographic strength is *not* required by the model — the adversary
/// fixes labels before randomness is drawn (§2.2).
#[derive(Debug, Clone)]
pub struct PortRng {
    state: u64,
}

impl PortRng {
    /// The stream for `(seed, node, port)` — one per directed edge,
    /// independent across both nodes and ports (Definition 4.5).
    #[must_use]
    pub fn for_edge(seed: u64, node: u64, port: u64) -> Self {
        Self {
            state: mix_seed(seed, node, port),
        }
    }

    /// The single per-node stream of the shared-stream violation mode.
    /// Reusing one of these across all ports of a node correlates its
    /// certificates, violating edge-independence on purpose.
    #[must_use]
    pub fn for_node(seed: u64, node: u64) -> Self {
        Self {
            state: mix_seed(seed, node, u64::MAX),
        }
    }

    /// A stream keyed directly by a raw state (for tooling that already has
    /// a mixed seed in hand).
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

impl Rng for PortRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        split_mix_output(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn mix_seed_spreads_inputs() {
        let set: std::collections::HashSet<u64> = [
            mix_seed(1, 0, 0),
            mix_seed(1, 0, 1),
            mix_seed(1, 1, 0),
            mix_seed(2, 0, 0),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = PortRng::for_edge(3, 1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = PortRng::for_edge(3, 1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = PortRng::for_edge(3, 1, 1);
        assert_ne!(a[0], c.next_u64());
        let mut d = PortRng::for_node(3, 1);
        assert_ne!(a[0], d.next_u64());
    }

    #[test]
    fn stream_is_balanced() {
        let mut r = PortRng::for_edge(0, 0, 0);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn edge_stream_first_word_matches_generator() {
        for (seed, node, port) in [(0u64, 0u64, 0u64), (7, 3, 1), (u64::MAX, 255, 511)] {
            let mut r = PortRng::for_edge(seed, node, port);
            assert_eq!(
                edge_stream_first_word(seed, node, port),
                r.next_u64(),
                "({seed}, {node}, {port})"
            );
        }
    }

    #[test]
    fn node_stream_word_matches_generator() {
        for (seed, node) in [(0u64, 0u64), (7, 3), (u64::MAX, 255)] {
            let mut r = PortRng::for_node(seed, node);
            for index in 0..8u64 {
                assert_eq!(
                    node_stream_word(seed, node, index),
                    r.next_u64(),
                    "({seed}, {node}, {index})"
                );
            }
        }
    }

    #[test]
    fn state_stream_word_matches_generator() {
        for state in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
            let mut r = PortRng::from_state(state);
            for index in 0..8u64 {
                assert_eq!(
                    state_stream_word(state, index),
                    r.next_u64(),
                    "({state}, {index})"
                );
            }
        }
    }

    #[test]
    fn beacon_seed_is_deterministic_and_domain_separated() {
        assert_eq!(beacon_seed(1234, 0xFEED), beacon_seed(1234, 0xFEED));
        assert_ne!(beacon_seed(1234, 0xFEED), beacon_seed(1235, 0xFEED));
        assert_ne!(beacon_seed(1234, 0xFEED), beacon_seed(1234, 0xFEEE));
        // The beacon tag keeps the derivation off the raw value and off
        // the plain (value, round) mix.
        assert_ne!(beacon_seed(1234, 0xFEED), 0xFEED);
        assert_ne!(beacon_seed(1234, 0xFEED), mix_seed(0xFEED, 1234, 0));
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut r = PortRng::for_edge(9, 2, 2);
        let dynr: &mut dyn Rng = &mut r;
        let x = dynr.random_range(0usize..10);
        assert!(x < 10);
    }
}
