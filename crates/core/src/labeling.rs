//! Label assignments produced by provers.

use rpls_bits::BitString;
use rpls_graph::NodeId;

/// One label per node — the output of a prover, or an adversarial
/// assignment being tested against a verifier.
///
/// # Examples
///
/// ```
/// use rpls_core::Labeling;
/// use rpls_bits::BitString;
///
/// let l = Labeling::new(vec![BitString::zeros(3), BitString::zeros(5)]);
/// assert_eq!(l.max_bits(), 5);
/// assert_eq!(l.get(rpls_graph::NodeId::new(0)).len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    labels: Vec<BitString>,
}

impl Labeling {
    /// Wraps a vector of labels, indexed by node.
    #[must_use]
    pub fn new(labels: Vec<BitString>) -> Self {
        Self { labels }
    }

    /// The all-empty labeling on `n` nodes (the adversary's cheapest try,
    /// and the honest labeling of schemes that need no proof).
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self {
            labels: vec![BitString::new(); n],
        }
    }

    /// Number of labels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no labels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn get(&self, node: NodeId) -> &BitString {
        &self.labels[node.index()]
    }

    /// Replaces the label of `node`.
    pub fn set(&mut self, node: NodeId, label: BitString) {
        self.labels[node.index()] = label;
    }

    /// Iterates over `(node, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &BitString)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (NodeId::new(i), l))
    }

    /// The maximum label size in bits — the verification complexity
    /// contribution of this assignment (Definition 2.1, deterministic case).
    #[must_use]
    pub fn max_bits(&self) -> usize {
        self.labels.iter().map(BitString::len).max().unwrap_or(0)
    }

    /// Total bits across all labels (used by the label-layout ablations).
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.labels.iter().map(BitString::len).sum()
    }

    /// Returns a copy with every label truncated to at most `bits` bits —
    /// the bandwidth-budget wrapper the lower-bound experiments use to
    /// produce under-informative schemes.
    #[must_use]
    pub fn truncated(&self, bits: usize) -> Self {
        Self {
            labels: self.labels.iter().map(|l| l.truncated(bits)).collect(),
        }
    }
}

impl FromIterator<BitString> for Labeling {
    fn from_iter<I: IntoIterator<Item = BitString>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting() {
        let l = Labeling::new(vec![
            BitString::zeros(4),
            BitString::zeros(9),
            BitString::new(),
        ]);
        assert_eq!(l.max_bits(), 9);
        assert_eq!(l.total_bits(), 13);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn empty_labeling_has_zero_bits() {
        let l = Labeling::empty(5);
        assert_eq!(l.max_bits(), 0);
        assert!(!l.is_empty());
        assert_eq!(Labeling::empty(0).max_bits(), 0);
    }

    #[test]
    fn truncation_caps_every_label() {
        let l = Labeling::new(vec![BitString::zeros(10), BitString::zeros(2)]);
        let t = l.truncated(4);
        assert_eq!(t.get(NodeId::new(0)).len(), 4);
        assert_eq!(t.get(NodeId::new(1)).len(), 2);
    }

    #[test]
    fn set_and_iter() {
        let mut l = Labeling::empty(2);
        l.set(NodeId::new(1), BitString::from_bools([true]));
        let collected: Vec<usize> = l.iter().map(|(_, b)| b.len()).collect();
        assert_eq!(collected, vec![0, 1]);
    }
}
