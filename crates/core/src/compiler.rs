//! The Theorem 3.1 compiler: deterministic κ bits → randomized `O(log κ)`
//! bits.
//!
//! Given any deterministic scheme `(p, v)` with verification complexity κ,
//! the compiled randomized scheme `(p', v')` works as follows (Appendix A):
//!
//! * **Prover** `p'` replicates: `ℓ'(v) = (ℓ(v), ℓ(w₁), …, ℓ(w_d))` — the
//!   node's own label plus a claimed copy of each neighbor's label, indexed
//!   by port.
//! * **Certificates**: node `v` fingerprints its own inner label with the
//!   Lemma A.1 equality protocol — a fresh `(x, P(x))` pair per port, which
//!   additionally makes the scheme *edge-independent* (Definition 4.5; the
//!   paper's single-broadcast variant is recovered by noting all ports
//!   would work equally well with one shared pair).
//! * **Verifier** `v'` checks, for each port, that the received fingerprint
//!   matches the polynomial of the *claimed* neighbor label, then runs the
//!   inner verifier on the claimed labels as if they had been exchanged.
//!
//! The fingerprinted string is the inner label *prefixed by its 32-bit
//! length*, so two labels that differ only by trailing zeros (and would
//! collide as polynomials) still yield distinct fingerprints.
//!
//! Completeness is perfect (one-sided). On illegal configurations: if the
//! replicated labels are consistent with the neighbors' actual inner
//! labels, the inner verifier rejects somewhere (it cannot be fooled); if
//! they are inconsistent on some edge, the equality protocol catches that
//! edge with probability `> 2/3`.
//!
//! # The prepared fast path
//!
//! The straight [`Rpls::certify_into`]/[`Rpls::verify`] implementations
//! re-parse the replicated label and rebuild the fingerprint polynomial on
//! every call — fine for one round, ruinous for a 10k-trial Monte-Carlo
//! estimate. [`Rpls::prepare`] is overridden here to hoist all of that out
//! of the round loop: per labeling, each replicated label is parsed once,
//! each inner label length-prefixed once, one [`PreparedEq`] built per
//! node for the prover side and one per claimed neighbor copy for the
//! verifier side (with full evaluation tables at Monte-Carlo trial
//! counts), and the randomness-independent inner verdict memoised. Each
//! (node, port, trial) then costs one random field element plus one
//! polynomial evaluation. The prepared path is transcript-identical to the
//! unprepared one — `tests/engine_golden.rs` pins it.

use crate::buffer::{Received, RoundScratch};
use crate::engine::{RoundSummary, StreamMode};
use crate::labeling::Labeling;
use crate::rng::edge_stream_first_word;
use crate::scheme::{CertView, DetView, ErrorSides, Pls, PreparedRpls, RandView, Rpls};
use crate::state::Configuration;
use rand::Rng;
use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_fingerprint::{EqMessage, EqProtocol, PreparedEq};
use rpls_graph::NodeId;
use std::cell::OnceCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::rc::Rc;

/// Length-prefix width used both in the replicated label layout and in the
/// fingerprinted encoding of an inner label.
const LEN_BITS: u32 = 32;

/// The compiled randomized scheme wrapping a deterministic one.
///
/// # Examples
///
/// See `rpls-schemes` for concrete instantiations, e.g.
/// `CompiledRpls::new(SpanningTreePls::new())`, and
/// `examples/quickstart.rs` for an end-to-end run.
#[derive(Debug, Clone)]
pub struct CompiledRpls<S> {
    inner: S,
}

impl<S: Pls> CompiledRpls<S> {
    /// Compiles a deterministic scheme.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// The wrapped deterministic scheme.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Certificate size (bits) the compilation produces for an inner
    /// verification complexity of `kappa` bits: `2⌈log₂ p⌉` for the
    /// protocol prime `p ∈ (3λ, 6λ)`, `λ = 32 + κ` — i.e. `O(log κ)`.
    #[must_use]
    pub fn certificate_bits_for_kappa(kappa: usize) -> usize {
        EqProtocol::for_length(LEN_BITS as usize + kappa).message_bits()
    }
}

/// Encodes the replicated label `(κ, ℓ₀, ℓ₁, …, ℓ_d)`.
fn encode_replicated(kappa: usize, parts: &[&BitString]) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(kappa as u64, LEN_BITS);
    for part in parts {
        w.write_u64(part.len() as u64, LEN_BITS);
        w.write_bits(part);
    }
    w.finish()
}

/// Parses a replicated label into `(κ, parts)`. Returns `None` on any
/// structural violation — adversarial labels must never panic the verifier.
fn parse_replicated(label: &BitString) -> Option<(usize, Vec<BitString>)> {
    let mut r = BitReader::new(label);
    let kappa = r.read_u64(LEN_BITS).ok()? as usize;
    let mut parts = Vec::new();
    while !r.is_exhausted() {
        let len = r.read_u64(LEN_BITS).ok()? as usize;
        if len > kappa {
            return None; // a claimed label longer than κ is malformed
        }
        parts.push(r.read_bits(len).ok()?);
    }
    Some((kappa, parts))
}

/// Parses only the prefix of a replicated label the prover needs: `κ` and
/// the node's own inner label. Avoids materialising every claimed neighbor
/// copy on the certificate-generation hot path.
fn parse_own_label(label: &BitString) -> Option<(usize, BitString)> {
    let mut r = BitReader::new(label);
    let kappa = r.read_u64(LEN_BITS).ok()? as usize;
    let len = r.read_u64(LEN_BITS).ok()? as usize;
    if len > kappa {
        return None;
    }
    Some((kappa, r.read_bits(len).ok()?))
}

/// The string actually fingerprinted for an inner label: 32-bit length then
/// the label bits.
fn length_prefixed(label: &BitString) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(label.len() as u64, LEN_BITS);
    w.write_bits(label);
    w.finish()
}

impl<S: Pls> Rpls for CompiledRpls<S> {
    fn name(&self) -> String {
        format!("compiled({})", self.inner.name())
    }

    fn error_sides(&self) -> ErrorSides {
        ErrorSides::OneSided
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let inner_labels = self.inner.label(config);
        let kappa = inner_labels.max_bits();
        config
            .graph()
            .nodes()
            .map(|v| {
                let mut parts: Vec<&BitString> = vec![inner_labels.get(v)];
                parts.extend(
                    config
                        .graph()
                        .neighbors(v)
                        .map(|nb| inner_labels.get(nb.node)),
                );
                encode_replicated(kappa, &parts)
            })
            .collect()
    }

    fn certify(&self, view: &CertView<'_>, port: rpls_graph::Port, rng: &mut dyn Rng) -> BitString {
        let mut out = BitString::new();
        self.certify_into(view, port, rng, &mut out);
        out
    }

    fn certify_into(
        &self,
        view: &CertView<'_>,
        _port: rpls_graph::Port,
        mut rng: &mut dyn Rng,
        out: &mut BitString,
    ) {
        out.clear();
        // Only the (κ, own-label) prefix matters for certificate
        // generation; a label whose prefix is malformed yields an empty
        // certificate. A label with a valid prefix but malformed neighbor
        // copies emits a normal fingerprint — soundness is preserved
        // because `verify` at the label's own node still parses the full
        // replication (`parse_replicated`) and rejects, which suffices:
        // acceptance requires every node to accept.
        let Some((kappa, own)) = parse_own_label(view.label) else {
            return;
        };
        let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
        let msg = proto.alice_message(&length_prefixed(&own), &mut rng);
        msg.append_to(proto.modulus(), out);
    }

    fn verify(&self, view: &RandView<'_>) -> bool {
        let Some((kappa, parts)) = parse_replicated(view.label) else {
            return false;
        };
        let degree = view.local.degree();
        if parts.len() != degree + 1 {
            return false;
        }
        let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
        let expected_bits = proto.message_bits();
        for (i, received) in view.received.iter().enumerate() {
            if received.len() != expected_bits {
                return false;
            }
            let Ok(msg) = EqMessage::from_slice(received, proto.modulus()) else {
                return false;
            };
            // Check the fingerprint against the *claimed* label of the
            // neighbor on this port. `bob_accepts` is total: an
            // out-of-field point in a malformed certificate rejects rather
            // than panicking, so no pre-check is needed here.
            if !proto.bob_accepts(&length_prefixed(&parts[i + 1]), &msg) {
                return false;
            }
        }
        // Fingerprints passed: run the inner verifier on the claimed
        // labels.
        let neighbor_labels: Vec<&BitString> = parts[1..].iter().collect();
        let det = DetView {
            local: view.local.clone(),
            label: &parts[0],
            neighbor_labels,
        };
        self.inner.verify(&det)
    }

    fn prepare<'a>(
        &'a self,
        config: &'a Configuration,
        labeling: &'a Labeling,
        rounds_hint: usize,
    ) -> Box<dyn PreparedRpls + 'a> {
        assert_eq!(
            labeling.len(),
            config.node_count(),
            "one label per node required"
        );
        // Fingerprint preparations are shared by (modulus, fingerprinted
        // string): under an honest labeling, node v's inner label is
        // prepared once as v's prover polynomial and once per neighbor's
        // claimed copy — identical inputs, one table. The map also
        // enforces an aggregate cap on evaluation-table memory (entries of
        // `u64`, so 2²³ ≈ 64 MiB): each table is already capped
        // individually inside `EqProtocol::prepare`, but an adversarial
        // labeling can declare a large κ on *every* node and multiply
        // per-table cost by nodes × ports. Once the budget is spent, later
        // fingerprints fall back to per-round Horner — values are
        // identical either way, so transcripts do not depend on sharing or
        // on where the budget runs out.
        let mut table_budget: u64 = 1 << 23;
        let mut shared: HashMap<(u64, BitString), Rc<PreparedEq>> = HashMap::new();
        let mut prepare_eq = |proto: &EqProtocol, input: BitString| -> Option<Rc<PreparedEq>> {
            match shared.entry((proto.modulus(), input)) {
                Entry::Occupied(e) => Some(Rc::clone(e.get())),
                Entry::Vacant(e) => {
                    let hint = if table_budget >= proto.modulus() {
                        rounds_hint
                    } else {
                        0
                    };
                    let prep = Rc::new(proto.prepare(&e.key().1, hint)?);
                    if prep.has_table() {
                        table_budget -= proto.modulus();
                    }
                    Some(Rc::clone(e.insert(prep)))
                }
            }
        };
        let nodes: Vec<PreparedNode> = config
            .graph()
            .nodes()
            .map(|v| {
                let label = labeling.get(v);
                // Prover side: the (κ, own-label) prefix, parsed and
                // fingerprint-prepared once. A malformed prefix keeps the
                // unprepared behaviour — empty certificates, no randomness
                // drawn.
                let prover = parse_own_label(label).map(|(kappa, own)| {
                    prepare_eq(
                        &EqProtocol::for_length(LEN_BITS as usize + kappa),
                        length_prefixed(&own),
                    )
                    .expect("own label length is bounded by κ")
                });
                // Verifier side: the full replication, with one prepared
                // fingerprint per claimed neighbor copy.
                let verifier = match parse_replicated(label) {
                    Some((kappa, parts)) if parts.len() == config.graph().degree(v) + 1 => {
                        let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
                        let ports = parts[1..]
                            .iter()
                            .map(|part| {
                                prepare_eq(&proto, length_prefixed(part))
                                    .expect("claimed copy length is bounded by κ")
                            })
                            .collect();
                        VerifierPrep::Ready {
                            expected_bits: proto.message_bits(),
                            modulus: proto.modulus(),
                            ports,
                            parts,
                            inner: OnceCell::new(),
                        }
                    }
                    _ => VerifierPrep::Reject,
                };
                PreparedNode { prover, verifier }
            })
            .collect();
        let plan = BatchPlan::build(config, &nodes);
        Box::new(PreparedCompiled {
            scheme: self,
            config,
            nodes,
            plan,
        })
    }
}

/// The labeling-static plan of the batched trial path: how each node's
/// vote is computed across a whole block of trials. Everything here is a
/// pure function of the prepared labeling — certificate lengths, length
/// checks, and which fingerprint probes are non-trivial do not depend on
/// the round's randomness, so they are resolved once at preparation time
/// and the per-(edge, trial) loop is left with one SplitMix64 word, one
/// reduction, and two polynomial probes.
struct BatchPlan {
    /// Largest certificate any round generates (every cert length is
    /// labeling-static: a node sends `message_bits` of its own protocol on
    /// every port, or nothing when its prover prefix is malformed).
    max_bits: usize,
    /// Total certificate bits per round, over all directed edges.
    total_bits: usize,
    /// One entry per node, parallel to `PreparedCompiled::nodes`.
    nodes: Vec<NodeBatch>,
}

/// How one node votes across a block of trials.
enum NodeBatch {
    /// The vote is `false` every trial: the replicated label failed to
    /// parse (`VerifierPrep::Reject`), or some port statically fails the
    /// certificate-length check (malformed sender prover, or a κ mismatch
    /// that changes the message width).
    AlwaysFalse,
    /// Every fingerprint probe passes at every point (each sender
    /// fingerprints exactly the string this node's port expects — the
    /// honest-labeling case), so the vote is the memoised inner verdict.
    StaticPass,
    /// At least one port needs per-trial fingerprint probes; trivially
    /// passing ports are already dropped.
    Dynamic(Vec<EdgeCheck>),
}

/// One non-trivial per-trial fingerprint probe: the delivered certificate
/// on some port of the receiving node, reduced to its algebraic content.
struct EdgeCheck {
    /// The sender's (node, port) — the key of the per-trial random stream.
    src_node: u64,
    src_port: u64,
    /// The sender's field prime (the random point is drawn in this field).
    send_mod: u64,
    /// The receiver's field prime (the scalar path rejects points outside
    /// it before evaluating).
    recv_mod: u64,
    /// The sender's prepared fingerprint (what the certificate claims).
    sender: Rc<PreparedEq>,
    /// The receiver's prepared fingerprint of the claimed neighbor copy.
    receiver: Rc<PreparedEq>,
}

impl BatchPlan {
    fn build(config: &Configuration, nodes: &[PreparedNode]) -> Self {
        let g = config.graph();
        let port_base = config.port_base();
        let delivery = config.delivery();
        // Owner of each global port (the inverse of the CSR layout).
        let port_count = *port_base.last().expect("port_base has n+1 entries") as usize;
        let mut owner = vec![0u32; port_count];
        for v in 0..nodes.len() {
            let node = u32::try_from(v).expect("node index fits in u32");
            owner[port_base[v] as usize..port_base[v + 1] as usize].fill(node);
        }
        let mut max_bits = 0usize;
        let mut total_bits = 0usize;
        for (v, n) in nodes.iter().enumerate() {
            let len = n.prover.as_ref().map_or(0, |p| p.protocol().message_bits());
            let degree = g.degree(NodeId::new(v));
            if degree > 0 {
                max_bits = max_bits.max(len);
            }
            total_bits += degree * len;
        }
        let batch_nodes = nodes
            .iter()
            .enumerate()
            .map(|(u, n)| {
                let VerifierPrep::Ready {
                    expected_bits,
                    modulus,
                    ports,
                    ..
                } = &n.verifier
                else {
                    return NodeBatch::AlwaysFalse;
                };
                let mut checks = Vec::new();
                let lo = port_base[u] as usize;
                for (i, recv_prep) in ports.iter().enumerate() {
                    let src = delivery[lo + i] as usize;
                    let v = owner[src] as usize;
                    let p = src - port_base[v] as usize;
                    let Some(send_prep) = &nodes[v].prover else {
                        // A malformed sender prover emits empty
                        // certificates, which can never match the expected
                        // fingerprint width: the length check fails every
                        // trial.
                        return NodeBatch::AlwaysFalse;
                    };
                    if send_prep.protocol().message_bits() != *expected_bits {
                        return NodeBatch::AlwaysFalse;
                    }
                    if Rc::ptr_eq(send_prep, recv_prep) {
                        // Preparations are shared by (modulus,
                        // fingerprinted string), so pointer equality means
                        // the sender fingerprints exactly the string this
                        // port expects: the probe passes at every point of
                        // the field, every trial.
                        continue;
                    }
                    checks.push(EdgeCheck {
                        src_node: v as u64,
                        src_port: p as u64,
                        send_mod: send_prep.protocol().modulus(),
                        recv_mod: *modulus,
                        sender: Rc::clone(send_prep),
                        receiver: Rc::clone(recv_prep),
                    });
                }
                if checks.is_empty() {
                    NodeBatch::StaticPass
                } else {
                    NodeBatch::Dynamic(checks)
                }
            })
            .collect();
        Self {
            max_bits,
            total_bits,
            nodes: batch_nodes,
        }
    }
}

/// Per-node state of a prepared compiled scheme.
struct PreparedNode {
    /// `None` when the (κ, own-label) prefix is malformed: such nodes emit
    /// empty certificates without drawing randomness, exactly like the
    /// unprepared [`Rpls::certify_into`].
    prover: Option<Rc<PreparedEq>>,
    verifier: VerifierPrep,
}

/// Verifier-side per-node state of a prepared compiled scheme.
enum VerifierPrep {
    /// The replicated label failed to parse or has the wrong arity for the
    /// node's degree: every round rejects.
    Reject,
    /// A well-formed replication: fingerprints prepared per port, claimed
    /// labels kept for the inner verifier.
    Ready {
        /// Exact certificate size every received message must have.
        expected_bits: usize,
        /// The protocol prime for this node's declared κ.
        modulus: u64,
        /// One prepared fingerprint per claimed neighbor copy, in port
        /// order (shared with identical inputs elsewhere in the labeling).
        ports: Vec<Rc<PreparedEq>>,
        /// The parsed parts `(own, claimed₀, …, claimed_{d−1})`.
        parts: Vec<BitString>,
        /// The inner verifier's verdict on the claimed labels. It does not
        /// depend on the round's randomness, so it is computed at most
        /// once — and, matching the unprepared path, only on a round in
        /// which every fingerprint check passed.
        inner: OnceCell<bool>,
    },
}

/// The prepared form of [`CompiledRpls`] (the ROADMAP's "prepared
/// prover"): each replicated label parsed once per labeling,
/// length-prefixed once, one fingerprint polynomial per node on the prover
/// side and one per claimed neighbor copy on the verifier side — after
/// which each (node, port, trial) costs one random field element plus one
/// polynomial evaluation (a table lookup at Monte-Carlo trial counts).
struct PreparedCompiled<'a, S> {
    scheme: &'a CompiledRpls<S>,
    config: &'a Configuration,
    nodes: Vec<PreparedNode>,
    /// The labeling-static batched-trial plan (see [`BatchPlan`]).
    plan: BatchPlan,
}

impl<S: Pls> PreparedCompiled<'_, S> {
    /// The memoised inner verdict of node `u`, whose verifier prep must be
    /// `Ready`. Shared between the scalar and batched paths, so whichever
    /// runs first fills the same memo — and, matching the unprepared path,
    /// it is only ever queried after a round (or trial) in which every
    /// fingerprint check passed.
    fn inner_verdict(&self, u: usize) -> bool {
        let VerifierPrep::Ready { parts, inner, .. } = &self.nodes[u].verifier else {
            unreachable!("inner verdict queried for a rejecting node");
        };
        *inner.get_or_init(|| {
            let det = DetView {
                local: crate::engine::local_context(self.config, NodeId::new(u)),
                label: &parts[0],
                neighbor_labels: parts[1..].iter().collect(),
            };
            self.scheme.inner.verify(&det)
        })
    }
}

impl<S: Pls> PreparedRpls for PreparedCompiled<'_, S> {
    fn certify_into(
        &self,
        node: NodeId,
        _port: rpls_graph::Port,
        rng: &mut dyn Rng,
        out: &mut BitString,
    ) {
        out.clear();
        let Some(prep) = &self.nodes[node.index()].prover else {
            return;
        };
        let msg = prep.alice_message(rng);
        msg.append_to(prep.protocol().modulus(), out);
    }

    fn verify(&self, node: NodeId, received: &Received<'_>) -> bool {
        let VerifierPrep::Ready {
            expected_bits,
            modulus,
            ports,
            ..
        } = &self.nodes[node.index()].verifier
        else {
            return false;
        };
        for (i, cert) in received.iter().enumerate() {
            if cert.len() != *expected_bits {
                return false;
            }
            let Ok(msg) = EqMessage::from_slice(cert, *modulus) else {
                return false;
            };
            if !ports[i].bob_accepts(&msg) {
                return false;
            }
        }
        self.inner_verdict(node.index())
    }

    /// The batched trial loop the ROADMAP's "batch whole trials per node"
    /// lever asked for. Certificates are never materialised: with
    /// edge-independent streams, each (node, port, trial) certificate is a
    /// pure function of `(seed_t, node, port)` — one SplitMix64 word
    /// reduced into the sender's field — so the fingerprint check collapses
    /// to comparing two prepared polynomial probes at that point. The
    /// BitSlice parse, the table-vs-Horner dispatch, the arena writes, and
    /// the per-trial vote loop of the scalar path are all hoisted out of
    /// (or dropped from) the inner loop; summaries stay bit-identical to
    /// the scalar path, which the golden tests pin.
    fn run_trials(
        &self,
        config: &Configuration,
        seeds: &[u64],
        mode: StreamMode,
        scratch: &mut RoundScratch,
        emit: &mut dyn FnMut(RoundSummary),
    ) {
        // The shared-stream violation mode threads one generator across a
        // node's ports sequentially; batching per (node, port) would
        // reorder its draws, so that diagnostics mode keeps the scalar
        // loop.
        if mode != StreamMode::EdgeIndependent {
            for &seed in seeds {
                emit(crate::engine::run_randomized_prepared_with(
                    self, config, seed, mode, scratch,
                ));
            }
            return;
        }
        let plan = &self.plan;
        let trials = seeds.len();
        let mut acc = vec![true; trials];
        let mut ok: Vec<bool> = Vec::with_capacity(trials);
        'nodes: for (u, nb) in plan.nodes.iter().enumerate() {
            match nb {
                NodeBatch::AlwaysFalse => {
                    acc.fill(false);
                    break 'nodes;
                }
                NodeBatch::StaticPass => {
                    if trials > 0 && !self.inner_verdict(u) {
                        acc.fill(false);
                        break 'nodes;
                    }
                }
                NodeBatch::Dynamic(checks) => {
                    // Trials some earlier node already rejected can skip
                    // the probes: streams are per-(node, port, trial), so
                    // nothing downstream observes the skipped draws.
                    ok.clear();
                    ok.extend_from_slice(&acc);
                    for c in checks {
                        let send = c.sender.evaluator();
                        let recv = c.receiver.evaluator();
                        for (t, &seed) in seeds.iter().enumerate() {
                            if !ok[t] {
                                continue;
                            }
                            let x =
                                edge_stream_first_word(seed, c.src_node, c.src_port) % c.send_mod;
                            ok[t] = x < c.recv_mod && recv.eval(x) == send.eval(x);
                        }
                    }
                    if !ok.contains(&true) {
                        acc.fill(false);
                        break 'nodes;
                    }
                    if self.inner_verdict(u) {
                        acc.copy_from_slice(&ok);
                    } else {
                        // The inner verifier rejects the claimed labels:
                        // trials whose fingerprints all passed reach that
                        // rejection, the rest already failed a probe —
                        // either way every vote is false.
                        acc.fill(false);
                        break 'nodes;
                    }
                }
            }
        }
        for &accepted in &acc {
            emit(RoundSummary {
                accepted,
                max_certificate_bits: plan.max_bits,
                total_certificate_bits: plan.total_bits,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::stats;
    use rpls_graph::{generators, NodeId};

    /// The intro's spanning-tree-style toy: every node's label must equal
    /// its id written in 64 bits, and neighbors must carry ids that are
    /// actually adjacent values on the cycle — enough structure to exercise
    /// the compiler's honest and fooled paths.
    struct IdLabel;

    impl Pls for IdLabel {
        fn name(&self) -> String {
            "id-label".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            config
                .states()
                .iter()
                .map(|s| {
                    let mut w = BitWriter::new();
                    w.write_u64(s.id(), 64);
                    w.finish()
                })
                .collect()
        }
        fn verify(&self, view: &DetView<'_>) -> bool {
            let mut r = BitReader::new(view.label);
            let Ok(claimed) = r.read_u64(64) else {
                return false;
            };
            claimed == view.local.state.id()
                && view
                    .neighbor_labels
                    .iter()
                    .all(|l| BitReader::new(l).read_u64(64).is_ok())
        }
    }

    #[test]
    fn honest_run_always_accepts() {
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = scheme.label(&config);
        for seed in 0..50 {
            let rec = engine::run_randomized(&scheme, &config, &labeling, seed);
            assert!(rec.outcome.accepted(), "seed {seed}");
        }
    }

    #[test]
    fn certificates_are_logarithmic_in_kappa() {
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 3);
        let bits = rec.max_certificate_bits();
        // κ = 64, λ = 96, p ∈ (288, 576) → 2 * ⌈log₂ p⌉ ≤ 20.
        assert!(bits <= 20, "certificate bits = {bits}");
        assert_eq!(
            bits,
            CompiledRpls::<IdLabel>::certificate_bits_for_kappa(64)
        );
    }

    #[test]
    fn tampered_replica_detected_with_good_probability() {
        // Corrupt node 3's claimed copy of its port-0 neighbor's label.
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let mut labeling = scheme.label(&config);
        let (kappa, mut parts) = parse_replicated(labeling.get(NodeId::new(3))).unwrap();
        let flipped: BitString = parts[1]
            .iter()
            .enumerate()
            .map(|(i, b)| if i == 63 { !b } else { b })
            .collect();
        parts[1] = flipped;
        let refs: Vec<&BitString> = parts.iter().collect();
        labeling.set(NodeId::new(3), encode_replicated(kappa, &refs));

        let p = stats::acceptance_probability(&scheme, &config, &labeling, 1000, 17);
        // The corrupted edge check fails with probability > 2/3.
        assert!(p < 1.0 / 3.0 + 0.05, "acceptance = {p}");
    }

    #[test]
    fn malformed_labels_rejected_outright() {
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        // Garbage labels: too short to parse.
        let labeling = Labeling::new(vec![BitString::zeros(5); 5]);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0);
        assert!(!rec.outcome.accepted());
    }

    #[test]
    fn wrong_arity_labels_rejected() {
        // A replicated label with too few parts for the degree.
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        let inner = IdLabel.label(&config);
        let kappa = inner.max_bits();
        let labeling: Labeling = config
            .graph()
            .nodes()
            .map(|v| encode_replicated(kappa, &[inner.get(v)])) // no neighbors!
            .collect();
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0);
        assert!(!rec.outcome.accepted());
    }

    #[test]
    fn absurd_kappa_claims_do_not_materialise_tables() {
        // A label declaring κ ≈ 2³¹ induces a protocol prime around 6·10⁹;
        // preparing with a huge rounds hint must fall back to per-round
        // Horner (a table would be tens of gigabytes) and still agree with
        // the unprepared path.
        let config = Configuration::plain(generators::cycle(3));
        let scheme = CompiledRpls::new(IdLabel);
        let kappa = (1usize << 31) + 5;
        let part = BitString::zeros(8);
        let labeling: Labeling = config
            .graph()
            .nodes()
            .map(|_| encode_replicated(kappa, &[&part, &part, &part]))
            .collect();
        let prepared = Rpls::prepare(&scheme, &config, &labeling, usize::MAX);
        let mut scratch = crate::buffer::RoundScratch::new();
        let summary = engine::run_randomized_prepared_with(
            &*prepared,
            &config,
            1,
            crate::engine::StreamMode::EdgeIndependent,
            &mut scratch,
        );
        let rec = engine::run_randomized(&scheme, &config, &labeling, 1);
        assert_eq!(summary.accepted, rec.outcome.accepted());
        assert_eq!(scratch.votes(), rec.outcome.votes());
        assert_eq!(
            scratch.certificates().to_nested(config.port_base()),
            rec.certificates
        );
    }

    #[test]
    fn replicated_roundtrip() {
        let a = BitString::from_bools([true, false, true]);
        let b = BitString::zeros(7);
        let enc = encode_replicated(9, &[&a, &b]);
        let (kappa, parts) = parse_replicated(&enc).unwrap();
        assert_eq!(kappa, 9);
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn oversized_part_rejected_by_parser() {
        // A part longer than the declared κ must be rejected.
        let a = BitString::zeros(10);
        let enc = encode_replicated(5, &[&a]);
        assert!(parse_replicated(&enc).is_none());
    }

    #[test]
    fn certificate_bits_grow_double_logarithmically() {
        // κ → 2⌈log₂(6(32+κ))⌉: doubling κ should add at most 2 bits.
        let b1 = CompiledRpls::<IdLabel>::certificate_bits_for_kappa(1 << 10);
        let b2 = CompiledRpls::<IdLabel>::certificate_bits_for_kappa(1 << 20);
        assert!(b2 - b1 <= 21, "{b1} -> {b2}");
        assert!(b1 <= 2 * 13);
    }
}
