//! The Theorem 3.1 compiler: deterministic κ bits → randomized `O(log κ)`
//! bits.
//!
//! Given any deterministic scheme `(p, v)` with verification complexity κ,
//! the compiled randomized scheme `(p', v')` works as follows (Appendix A):
//!
//! * **Prover** `p'` replicates: `ℓ'(v) = (ℓ(v), ℓ(w₁), …, ℓ(w_d))` — the
//!   node's own label plus a claimed copy of each neighbor's label, indexed
//!   by port.
//! * **Certificates**: node `v` fingerprints its own inner label with the
//!   Lemma A.1 equality protocol — a fresh `(x, P(x))` pair per port, which
//!   additionally makes the scheme *edge-independent* (Definition 4.5; the
//!   paper's single-broadcast variant is recovered by noting all ports
//!   would work equally well with one shared pair).
//! * **Verifier** `v'` checks, for each port, that the received fingerprint
//!   matches the polynomial of the *claimed* neighbor label, then runs the
//!   inner verifier on the claimed labels as if they had been exchanged.
//!
//! The fingerprinted string is the inner label *prefixed by its 32-bit
//! length*, so two labels that differ only by trailing zeros (and would
//! collide as polynomials) still yield distinct fingerprints.
//!
//! Completeness is perfect (one-sided). On illegal configurations: if the
//! replicated labels are consistent with the neighbors' actual inner
//! labels, the inner verifier rejects somewhere (it cannot be fooled); if
//! they are inconsistent on some edge, the equality protocol catches that
//! edge with probability `> 2/3`.

use crate::labeling::Labeling;
use crate::scheme::{CertView, DetView, ErrorSides, Pls, RandView, Rpls};
use crate::state::Configuration;
use rand::Rng;
use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_fingerprint::{EqMessage, EqProtocol};

/// Length-prefix width used both in the replicated label layout and in the
/// fingerprinted encoding of an inner label.
const LEN_BITS: u32 = 32;

/// The compiled randomized scheme wrapping a deterministic one.
///
/// # Examples
///
/// See `rpls-schemes` for concrete instantiations, e.g.
/// `CompiledRpls::new(SpanningTreePls::new())`, and
/// `examples/quickstart.rs` for an end-to-end run.
#[derive(Debug, Clone)]
pub struct CompiledRpls<S> {
    inner: S,
}

impl<S: Pls> CompiledRpls<S> {
    /// Compiles a deterministic scheme.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// The wrapped deterministic scheme.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Certificate size (bits) the compilation produces for an inner
    /// verification complexity of `kappa` bits: `2⌈log₂ p⌉` for the
    /// protocol prime `p ∈ (3λ, 6λ)`, `λ = 32 + κ` — i.e. `O(log κ)`.
    #[must_use]
    pub fn certificate_bits_for_kappa(kappa: usize) -> usize {
        EqProtocol::for_length(LEN_BITS as usize + kappa).message_bits()
    }
}

/// Encodes the replicated label `(κ, ℓ₀, ℓ₁, …, ℓ_d)`.
fn encode_replicated(kappa: usize, parts: &[&BitString]) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(kappa as u64, LEN_BITS);
    for part in parts {
        w.write_u64(part.len() as u64, LEN_BITS);
        w.write_bits(part);
    }
    w.finish()
}

/// Parses a replicated label into `(κ, parts)`. Returns `None` on any
/// structural violation — adversarial labels must never panic the verifier.
fn parse_replicated(label: &BitString) -> Option<(usize, Vec<BitString>)> {
    let mut r = BitReader::new(label);
    let kappa = r.read_u64(LEN_BITS).ok()? as usize;
    let mut parts = Vec::new();
    while !r.is_exhausted() {
        let len = r.read_u64(LEN_BITS).ok()? as usize;
        if len > kappa {
            return None; // a claimed label longer than κ is malformed
        }
        parts.push(r.read_bits(len).ok()?);
    }
    Some((kappa, parts))
}

/// Parses only the prefix of a replicated label the prover needs: `κ` and
/// the node's own inner label. Avoids materialising every claimed neighbor
/// copy on the certificate-generation hot path.
fn parse_own_label(label: &BitString) -> Option<(usize, BitString)> {
    let mut r = BitReader::new(label);
    let kappa = r.read_u64(LEN_BITS).ok()? as usize;
    let len = r.read_u64(LEN_BITS).ok()? as usize;
    if len > kappa {
        return None;
    }
    Some((kappa, r.read_bits(len).ok()?))
}

/// The string actually fingerprinted for an inner label: 32-bit length then
/// the label bits.
fn length_prefixed(label: &BitString) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(label.len() as u64, LEN_BITS);
    w.write_bits(label);
    w.finish()
}

impl<S: Pls> Rpls for CompiledRpls<S> {
    fn name(&self) -> String {
        format!("compiled({})", self.inner.name())
    }

    fn error_sides(&self) -> ErrorSides {
        ErrorSides::OneSided
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let inner_labels = self.inner.label(config);
        let kappa = inner_labels.max_bits();
        config
            .graph()
            .nodes()
            .map(|v| {
                let mut parts: Vec<&BitString> = vec![inner_labels.get(v)];
                parts.extend(
                    config
                        .graph()
                        .neighbors(v)
                        .map(|nb| inner_labels.get(nb.node)),
                );
                encode_replicated(kappa, &parts)
            })
            .collect()
    }

    fn certify(&self, view: &CertView<'_>, port: rpls_graph::Port, rng: &mut dyn Rng) -> BitString {
        let mut out = BitString::new();
        self.certify_into(view, port, rng, &mut out);
        out
    }

    fn certify_into(
        &self,
        view: &CertView<'_>,
        _port: rpls_graph::Port,
        mut rng: &mut dyn Rng,
        out: &mut BitString,
    ) {
        out.clear();
        // Only the (κ, own-label) prefix matters for certificate
        // generation; a label whose prefix is malformed yields an empty
        // certificate. A label with a valid prefix but malformed neighbor
        // copies emits a normal fingerprint — soundness is preserved
        // because `verify` at the label's own node still parses the full
        // replication (`parse_replicated`) and rejects, which suffices:
        // acceptance requires every node to accept.
        let Some((kappa, own)) = parse_own_label(view.label) else {
            return;
        };
        let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
        let msg = proto.alice_message(&length_prefixed(&own), &mut rng);
        msg.append_to(proto.modulus(), out);
    }

    fn verify(&self, view: &RandView<'_>) -> bool {
        let Some((kappa, parts)) = parse_replicated(view.label) else {
            return false;
        };
        let degree = view.local.degree();
        if parts.len() != degree + 1 {
            return false;
        }
        let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
        let expected_bits = proto.message_bits();
        for (i, received) in view.received.iter().enumerate() {
            if received.len() != expected_bits {
                return false;
            }
            let Ok(msg) = EqMessage::from_slice(received, proto.modulus()) else {
                return false;
            };
            if msg.point >= proto.modulus() {
                return false;
            }
            // Check the fingerprint against the *claimed* label of the
            // neighbor on this port.
            if !proto.bob_accepts(&length_prefixed(&parts[i + 1]), &msg) {
                return false;
            }
        }
        // Fingerprints passed: run the inner verifier on the claimed
        // labels.
        let neighbor_labels: Vec<&BitString> = parts[1..].iter().collect();
        let det = DetView {
            local: view.local.clone(),
            label: &parts[0],
            neighbor_labels,
        };
        self.inner.verify(&det)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::stats;
    use rpls_graph::{generators, NodeId};

    /// The intro's spanning-tree-style toy: every node's label must equal
    /// its id written in 64 bits, and neighbors must carry ids that are
    /// actually adjacent values on the cycle — enough structure to exercise
    /// the compiler's honest and fooled paths.
    struct IdLabel;

    impl Pls for IdLabel {
        fn name(&self) -> String {
            "id-label".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            config
                .states()
                .iter()
                .map(|s| {
                    let mut w = BitWriter::new();
                    w.write_u64(s.id(), 64);
                    w.finish()
                })
                .collect()
        }
        fn verify(&self, view: &DetView<'_>) -> bool {
            let mut r = BitReader::new(view.label);
            let Ok(claimed) = r.read_u64(64) else {
                return false;
            };
            claimed == view.local.state.id()
                && view
                    .neighbor_labels
                    .iter()
                    .all(|l| BitReader::new(l).read_u64(64).is_ok())
        }
    }

    #[test]
    fn honest_run_always_accepts() {
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = scheme.label(&config);
        for seed in 0..50 {
            let rec = engine::run_randomized(&scheme, &config, &labeling, seed);
            assert!(rec.outcome.accepted(), "seed {seed}");
        }
    }

    #[test]
    fn certificates_are_logarithmic_in_kappa() {
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 3);
        let bits = rec.max_certificate_bits();
        // κ = 64, λ = 96, p ∈ (288, 576) → 2 * ⌈log₂ p⌉ ≤ 20.
        assert!(bits <= 20, "certificate bits = {bits}");
        assert_eq!(
            bits,
            CompiledRpls::<IdLabel>::certificate_bits_for_kappa(64)
        );
    }

    #[test]
    fn tampered_replica_detected_with_good_probability() {
        // Corrupt node 3's claimed copy of its port-0 neighbor's label.
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let mut labeling = scheme.label(&config);
        let (kappa, mut parts) = parse_replicated(labeling.get(NodeId::new(3))).unwrap();
        let flipped: BitString = parts[1]
            .iter()
            .enumerate()
            .map(|(i, b)| if i == 63 { !b } else { b })
            .collect();
        parts[1] = flipped;
        let refs: Vec<&BitString> = parts.iter().collect();
        labeling.set(NodeId::new(3), encode_replicated(kappa, &refs));

        let p = stats::acceptance_probability(&scheme, &config, &labeling, 1000, 17);
        // The corrupted edge check fails with probability > 2/3.
        assert!(p < 1.0 / 3.0 + 0.05, "acceptance = {p}");
    }

    #[test]
    fn malformed_labels_rejected_outright() {
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        // Garbage labels: too short to parse.
        let labeling = Labeling::new(vec![BitString::zeros(5); 5]);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0);
        assert!(!rec.outcome.accepted());
    }

    #[test]
    fn wrong_arity_labels_rejected() {
        // A replicated label with too few parts for the degree.
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        let inner = IdLabel.label(&config);
        let kappa = inner.max_bits();
        let labeling: Labeling = config
            .graph()
            .nodes()
            .map(|v| encode_replicated(kappa, &[inner.get(v)])) // no neighbors!
            .collect();
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0);
        assert!(!rec.outcome.accepted());
    }

    #[test]
    fn replicated_roundtrip() {
        let a = BitString::from_bools([true, false, true]);
        let b = BitString::zeros(7);
        let enc = encode_replicated(9, &[&a, &b]);
        let (kappa, parts) = parse_replicated(&enc).unwrap();
        assert_eq!(kappa, 9);
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn oversized_part_rejected_by_parser() {
        // A part longer than the declared κ must be rejected.
        let a = BitString::zeros(10);
        let enc = encode_replicated(5, &[&a]);
        assert!(parse_replicated(&enc).is_none());
    }

    #[test]
    fn certificate_bits_grow_double_logarithmically() {
        // κ → 2⌈log₂(6(32+κ))⌉: doubling κ should add at most 2 bits.
        let b1 = CompiledRpls::<IdLabel>::certificate_bits_for_kappa(1 << 10);
        let b2 = CompiledRpls::<IdLabel>::certificate_bits_for_kappa(1 << 20);
        assert!(b2 - b1 <= 21, "{b1} -> {b2}");
        assert!(b1 <= 2 * 13);
    }
}
