//! The Theorem 3.1 compiler: deterministic κ bits → randomized `O(log κ)`
//! bits.
//!
//! Given any deterministic scheme `(p, v)` with verification complexity κ,
//! the compiled randomized scheme `(p', v')` works as follows (Appendix A):
//!
//! * **Prover** `p'` replicates: `ℓ'(v) = (ℓ(v), ℓ(w₁), …, ℓ(w_d))` — the
//!   node's own label plus a claimed copy of each neighbor's label, indexed
//!   by port.
//! * **Certificates**: node `v` fingerprints its own inner label with the
//!   Lemma A.1 equality protocol — a fresh `(x, P(x))` pair per port, which
//!   additionally makes the scheme *edge-independent* (Definition 4.5; the
//!   paper's single-broadcast variant is recovered by noting all ports
//!   would work equally well with one shared pair).
//! * **Verifier** `v'` checks, for each port, that the received fingerprint
//!   matches the polynomial of the *claimed* neighbor label, then runs the
//!   inner verifier on the claimed labels as if they had been exchanged.
//!
//! The fingerprinted string is the inner label *prefixed by its 32-bit
//! length*, so two labels that differ only by trailing zeros (and would
//! collide as polynomials) still yield distinct fingerprints.
//!
//! Completeness is perfect (one-sided). On illegal configurations: if the
//! replicated labels are consistent with the neighbors' actual inner
//! labels, the inner verifier rejects somewhere (it cannot be fooled); if
//! they are inconsistent on some edge, the equality protocol catches that
//! edge with probability `> 2/3`.
//!
//! # The prepared fast path
//!
//! The straight [`Rpls::certify_into`]/[`Rpls::verify`] implementations
//! re-parse the replicated label and rebuild the fingerprint polynomial on
//! every call — fine for one round, ruinous for a 10k-trial Monte-Carlo
//! estimate. [`Rpls::prepare`] is overridden here to hoist all of that out
//! of the round loop: each distinct replicated label is parsed once, each
//! inner label length-prefixed once, one [`PreparedEq`] built per distinct
//! `(modulus, fingerprinted string)` (with *lazily* built evaluation
//! tables — filled only for polynomials the dynamic probes actually hit,
//! see [`PreparedEq`]), and the randomness-independent inner verdict
//! memoised. Each (node, port, trial) then costs one random field element
//! plus one polynomial evaluation.
//!
//! All of that per-label state is content-keyed, so it lives in a
//! [`PrepCache`] rather than per prepared instance: [`Rpls::prepare_cached`]
//! reuses one cache across labelings — an adversary sweeping hundreds of
//! near-identical forged candidates re-prepares only the labels that
//! actually changed — while plain [`Rpls::prepare`] runs the same code
//! against a throwaway cache. Both are transcript-identical to the
//! unprepared path — `tests/engine_golden.rs` pins it.
//!
//! # The t-round trade-off schedule
//!
//! The space–time trade-off axis (Patt-Shamir & Perry's t-PLS model)
//! verifies a proof of size κ over `t` rounds at `O(κ/t + log t)` bits per
//! round. The compiled scheme's [`PreparedRpls::run_multiround`] override
//! implements **chunked fingerprint streaming**: the length-prefixed inner
//! label is cut into `⌈λ/t⌉`-bit slices and round `r` carries one fresh
//! `(x, A_r(x))` fingerprint of slice `r`, so per-round communication is
//! the message width of the *slice-length* protocol and verdicts
//! accumulate with **early rejection** — a tampered replica is caught in
//! the round whose slice covers the tampering. `t = 1` degenerates to the
//! one-round protocol exactly (same prime, same polynomial, same
//! randomness), which keeps it bit-identical to the batched one-round
//! path; see the private `MultiRoundPlan` type for the schedule and its
//! batched kernel.

use crate::buffer::{Received, RoundScratch};
use crate::engine::{
    multiround_seed, MessagePattern, MultiRoundSummary, PatternCost, RoundSummary, StreamMode,
};
use crate::fault::{
    DeliveryOutcome, FaultCounts, FaultPlan, FaultedMultiRoundSummary, FaultedRoundSummary,
};
use crate::labeling::Labeling;
use crate::prep::{CachedLabel, CachedReplication, EqStore, PrepCache};
use crate::rng::{edge_stream_first_word, node_stream_word, sketch_stream_word};
use crate::scheme::{CertView, DetView, ErrorSides, Pls, PreparedRpls, RandView, Rpls};
use crate::state::{Configuration, DegreeBuckets};
use rand::Rng;
use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_fingerprint::{Barrett, EqEvaluator, EqMessage, EqProtocol, PreparedEq};
use rpls_graph::NodeId;
use std::cell::{OnceCell, RefCell};
use std::rc::Rc;

/// Length-prefix width used both in the replicated label layout and in the
/// fingerprinted encoding of an inner label.
const LEN_BITS: u32 = 32;

/// The compiled randomized scheme wrapping a deterministic one.
///
/// # Examples
///
/// See `rpls-schemes` for concrete instantiations, e.g.
/// `CompiledRpls::new(SpanningTreePls::new())`, and
/// `examples/quickstart.rs` for an end-to-end run.
#[derive(Debug, Clone)]
pub struct CompiledRpls<S> {
    inner: S,
    /// Probe subsampling for high-degree nodes (see [`ProbeSketch`]);
    /// `None` (the default) runs every non-trivial probe.
    sketch: Option<ProbeSketch>,
    /// Disables the static-pass shortcut of the batch plan so every
    /// honest probe runs dynamically (see
    /// [`CompiledRpls::force_dynamic`]).
    force_dynamic: bool,
}

/// Per-node **probe subsampling** for dense graphs: a node with more than
/// `max_probes` non-trivial fingerprint checks runs, per trial,
/// `max_probes` checks sampled from its own domain-separated
/// [`sketch stream`](crate::rng::sketch_stream_word) instead of all of
/// them — turning the quadratic per-trial port cost of cliques and
/// power-law hubs into a constant.
///
/// # Soundness
///
/// Every sampled check is one of the full plan's checks, evaluated at
/// exactly the point the full plan would evaluate it at (probe streams
/// are keyed per `(node, slot)`, independent of the sketch stream). The
/// sketched verdict is therefore a conjunction over a **subset** of the
/// full conjunction: a sketched rejection implies a full-probe rejection
/// on the same seed, and an honest configuration is never rejected —
/// completeness is exact and the error stays one-sided.
///
/// What is traded is the *rejection probability per trial*. If tampering
/// makes `f` of a node's `d > max_probes` checks fail, a sketched trial
/// rejects with probability `1 − (1 − f/d)^s` over the sketch draws
/// (`s = max_probes`), instead of 1; each failing check itself already
/// incorporates the `> 2/3` fingerprint catch probability. A single
/// tampered edge at a hub is thus caught with probability
/// `≥ (2/3)·(1 − (1 − 1/d)^s) ≈ (2/3)·s/d` per trial — the engine's
/// per-trial soundness bound degrades by the subsampling ratio `s/d`, and
/// the usual amplification (more trials, or
/// [`stats::rounds_to_reject_profile`](crate::stats)) restores any target
/// confidence at total cost `O(d/s)` trials, still far below the `O(d)`
/// per-trial probe cost it replaces on dense families.
///
/// Sketching applies to the one-round batched path (and its faulted
/// wrapper's clean kernel); the multiround streaming schedule and the
/// scalar diagnostics paths always run full probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSketch {
    max_probes: usize,
}

impl ProbeSketch {
    /// A sketch running at most `max_probes` probes per (node, trial).
    ///
    /// # Panics
    ///
    /// Panics if `max_probes` is 0 (a node must probe something).
    #[must_use]
    pub fn new(max_probes: usize) -> Self {
        assert!(max_probes >= 1, "a sketch needs at least one probe");
        Self { max_probes }
    }

    /// The per-(node, trial) probe budget.
    #[must_use]
    pub fn max_probes(&self) -> usize {
        self.max_probes
    }
}

impl<S: Pls> CompiledRpls<S> {
    /// Compiles a deterministic scheme.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            sketch: None,
            force_dynamic: false,
        }
    }

    /// Enables high-degree probe subsampling (see [`ProbeSketch`] for the
    /// soundness trade). Transcripts of nodes at or below the budget are
    /// unchanged; estimates over graphs whose maximum degree is within
    /// the budget are bit-identical to the unsketched scheme.
    #[must_use]
    pub fn with_sketch(mut self, sketch: ProbeSketch) -> Self {
        self.sketch = Some(sketch);
        self
    }

    /// Disables the batch plan's static-pass shortcut: probes whose two
    /// sides share one cached preparation (every probe of an honest
    /// labeling) are kept as dynamic checks instead of being dropped at
    /// plan-build time. Verdicts are unchanged — a shared-preparation
    /// probe passes at every point of the field — so this exists for
    /// measurement: it is the only way to drive the full probe kernel
    /// (and the sketch) on an *accepting* configuration, which is what
    /// the `scale` bench workload and the kernel's throughput numbers
    /// are measured on. Applies to the one-round batch plan; the
    /// multiround planner keeps its shortcut.
    #[must_use]
    pub fn force_dynamic(mut self) -> Self {
        self.force_dynamic = true;
        self
    }

    /// The wrapped deterministic scheme.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Certificate size (bits) the compilation produces for an inner
    /// verification complexity of `kappa` bits: `2⌈log₂ p⌉` for the
    /// protocol prime `p ∈ (3λ, 6λ)`, `λ = 32 + κ` — i.e. `O(log κ)`.
    #[must_use]
    pub fn certificate_bits_for_kappa(kappa: usize) -> usize {
        EqProtocol::for_length(LEN_BITS as usize + kappa).message_bits()
    }
}

/// Encodes the replicated label `(κ, ℓ₀, ℓ₁, …, ℓ_d)`.
fn encode_replicated(kappa: usize, parts: &[&BitString]) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(kappa as u64, LEN_BITS);
    for part in parts {
        w.write_u64(part.len() as u64, LEN_BITS);
        w.write_bits(part);
    }
    w.finish()
}

/// Parses a replicated label into `(κ, parts)`. Returns `None` on any
/// structural violation — adversarial labels must never panic the verifier.
fn parse_replicated(label: &BitString) -> Option<(usize, Vec<BitString>)> {
    let mut r = BitReader::new(label);
    let kappa = r.read_u64(LEN_BITS).ok()? as usize;
    let mut parts = Vec::new();
    while !r.is_exhausted() {
        let len = r.read_u64(LEN_BITS).ok()? as usize;
        if len > kappa {
            return None; // a claimed label longer than κ is malformed
        }
        parts.push(r.read_bits(len).ok()?);
    }
    Some((kappa, parts))
}

/// Parses only the prefix of a replicated label the prover needs: `κ` and
/// the node's own inner label. Avoids materialising every claimed neighbor
/// copy on the certificate-generation hot path.
fn parse_own_label(label: &BitString) -> Option<(usize, BitString)> {
    let mut r = BitReader::new(label);
    let kappa = r.read_u64(LEN_BITS).ok()? as usize;
    let len = r.read_u64(LEN_BITS).ok()? as usize;
    if len > kappa {
        return None;
    }
    Some((kappa, r.read_bits(len).ok()?))
}

/// The string actually fingerprinted for an inner label: 32-bit length then
/// the label bits.
fn length_prefixed(label: &BitString) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(label.len() as u64, LEN_BITS);
    w.write_bits(label);
    w.finish()
}

impl<S: Pls> Rpls for CompiledRpls<S> {
    fn name(&self) -> String {
        format!("compiled({})", self.inner.name())
    }

    fn error_sides(&self) -> ErrorSides {
        ErrorSides::OneSided
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let inner_labels = self.inner.label(config);
        let kappa = inner_labels.max_bits();
        config
            .graph()
            .nodes()
            .map(|v| {
                let mut parts: Vec<&BitString> = vec![inner_labels.get(v)];
                parts.extend(
                    config
                        .graph()
                        .neighbors(v)
                        .map(|nb| inner_labels.get(nb.node)),
                );
                encode_replicated(kappa, &parts)
            })
            .collect()
    }

    fn certify(&self, view: &CertView<'_>, port: rpls_graph::Port, rng: &mut dyn Rng) -> BitString {
        let mut out = BitString::new();
        self.certify_into(view, port, rng, &mut out);
        out
    }

    fn certify_into(
        &self,
        view: &CertView<'_>,
        _port: rpls_graph::Port,
        mut rng: &mut dyn Rng,
        out: &mut BitString,
    ) {
        out.clear();
        // Only the (κ, own-label) prefix matters for certificate
        // generation; a label whose prefix is malformed yields an empty
        // certificate. A label with a valid prefix but malformed neighbor
        // copies emits a normal fingerprint — soundness is preserved
        // because `verify` at the label's own node still parses the full
        // replication (`parse_replicated`) and rejects, which suffices:
        // acceptance requires every node to accept.
        let Some((kappa, own)) = parse_own_label(view.label) else {
            return;
        };
        let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
        let msg = proto.alice_message(&length_prefixed(&own), &mut rng);
        msg.append_to(proto.modulus(), out);
    }

    fn verify(&self, view: &RandView<'_>) -> bool {
        let Some((kappa, parts)) = parse_replicated(view.label) else {
            return false;
        };
        let degree = view.local.degree();
        if parts.len() != degree + 1 {
            return false;
        }
        let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
        let expected_bits = proto.message_bits();
        for (i, received) in view.received.iter().enumerate() {
            if received.len() != expected_bits {
                return false;
            }
            let Ok(msg) = EqMessage::from_slice(received, proto.modulus()) else {
                return false;
            };
            // Check the fingerprint against the *claimed* label of the
            // neighbor on this port. `bob_accepts` is total: an
            // out-of-field point in a malformed certificate rejects rather
            // than panicking, so no pre-check is needed here.
            if !proto.bob_accepts(&length_prefixed(&parts[i + 1]), &msg) {
                return false;
            }
        }
        // Fingerprints passed: run the inner verifier on the claimed
        // labels.
        let neighbor_labels: Vec<&BitString> = parts[1..].iter().collect();
        let det = DetView {
            local: view.local.clone(),
            label: &parts[0],
            neighbor_labels,
        };
        self.inner.verify(&det)
    }

    fn prepare<'a>(
        &'a self,
        config: &'a Configuration,
        labeling: &'a Labeling,
        rounds_hint: usize,
    ) -> Box<dyn PreparedRpls + 'a> {
        // One throwaway cache: preparation state is always built through
        // the cache machinery, `prepare` simply never shares it with a
        // later call. Cached and uncached preparation are therefore the
        // same code path, which is what keeps them transcript-identical by
        // construction.
        self.prepare_cached(config, labeling, rounds_hint, &mut PrepCache::new())
    }

    fn prepare_cached<'a>(
        &'a self,
        config: &'a Configuration,
        labeling: &'a Labeling,
        rounds_hint: usize,
        cache: &mut PrepCache,
    ) -> Box<dyn PreparedRpls + 'a> {
        assert_eq!(
            labeling.len(),
            config.node_count(),
            "one label per node required"
        );
        // Each distinct label is parsed and fingerprint-prepared once per
        // *cache*, not once per labeling: under an honest labeling node
        // v's inner label is prepared once as v's prover polynomial and
        // once per neighbor's claimed copy (identical inputs, one shared
        // preparation), and across a sweep's near-identical candidate
        // labelings almost every lookup is a hash hit. Whether a node's
        // replication matches its degree is the only per-(config, node)
        // fact, resolved here at binding time.
        let nodes: Vec<PreparedNode> = config
            .graph()
            .nodes()
            .map(|v| {
                let prep = cache.label_prep(labeling.get(v), rounds_hint);
                let ready = prep
                    .replication
                    .as_ref()
                    .is_some_and(|r| r.parts.len() == config.graph().degree(v) + 1);
                PreparedNode {
                    label: prep,
                    ready,
                    inner: OnceCell::new(),
                }
            })
            .collect();
        let plan = BatchPlan::build(config, &nodes, self.force_dynamic);
        Box::new(PreparedCompiled {
            scheme: self,
            config,
            labeling,
            rounds_hint,
            store: cache.store_handle(),
            nodes,
            plan,
            multiround_plans: RefCell::new(Vec::new()),
        })
    }
}

/// The closed-form `(messages, bits-per-round, total-bits)` accounting of
/// a compiled scheme under `pattern`, from per-node `(message width,
/// degree, covered rounds)` dimensions. One message per slot: a node of
/// degree `d` sends [`MessagePattern::slots`]`(d)` distinct messages in
/// each of its covered rounds, each of its protocol's width — halved for
/// [`MessagePattern::Unicast`], where Filtser–Fischer-style shared public
/// randomness lets the sender omit the evaluation point `x` and ship only
/// `P(x)` (half of the `(x, P(x))` pair).
fn pattern_cost_from_dims(
    pattern: MessagePattern,
    dims: impl Iterator<Item = (usize, usize, usize)>,
) -> PatternCost {
    let mut messages = 0usize;
    let mut max_bits_per_round = 0usize;
    let mut total_bits = 0usize;
    for (width, degree, covered) in dims {
        let slots = pattern.slots(degree);
        let width = if pattern == MessagePattern::Unicast {
            width / 2
        } else {
            width
        };
        messages = messages.max(slots);
        if degree > 0 {
            max_bits_per_round = max_bits_per_round.max(width);
        }
        total_bits += slots * width * covered;
    }
    PatternCost {
        messages,
        max_bits_per_round,
        total_bits,
    }
}

impl EqStore {
    /// The shared fingerprint preparation for `input` under `proto`,
    /// preparing (and, budget permitting, retaining) it on first sight.
    /// `None` iff `input` is longer than the protocol's λ.
    ///
    /// Evaluation-table slots are *reserved* here — against the cache's
    /// aggregate budget — whenever a preparation is allowed a lazy table;
    /// each table is additionally capped individually inside
    /// `EqProtocol::prepare`, but an adversarial labeling can declare a
    /// large κ on every node and multiply per-table cost by nodes × ports
    /// × labelings. Allowances are only granted to *retained* entries
    /// (an unshared throwaway preparation would pin its reservation
    /// forever), and a retained entry first prepared under a small round
    /// hint is upgraded on a later hit whose hint justifies a table.
    /// Exhausting the retention budget turns the cache over to a fresh
    /// epoch ([`PrepCache::begin_epoch`]) rather than degrading the rest
    /// of the sweep to uncached preparation; only an entry too large for
    /// even a whole epoch's budget is handed out unshared (and
    /// table-less). Values are identical either way, so transcripts
    /// depend on neither sharing nor where the budgets run out.
    fn eq_prep(
        &mut self,
        proto: &EqProtocol,
        input: BitString,
        rounds_hint: usize,
    ) -> Option<Rc<PreparedEq>> {
        let key = (proto.modulus(), input);
        if let Some(prep) = self.eq.get(&key) {
            self.hits += 1;
            let prep = Rc::clone(prep);
            // A hit under a bigger round hint than the entry was born
            // with may now justify a table (budget permitting).
            if self.table_slots >= proto.modulus() && prep.permit_table(rounds_hint) {
                self.table_slots -= proto.modulus();
            }
            return Some(prep);
        }
        self.misses += 1;
        let cost = PrepCache::key_cost(key.1.len());
        if self.key_bits < cost && cost <= PrepCache::KEY_BITS_BUDGET {
            self.begin_epoch();
        }
        let retain = self.key_bits >= cost;
        let hint = if retain && self.table_slots >= proto.modulus() {
            rounds_hint
        } else {
            0
        };
        let prep = Rc::new(proto.prepare(&key.1, hint)?);
        if prep.table_allowed() {
            self.table_slots -= proto.modulus();
        }
        if retain {
            self.key_bits -= cost;
            self.eq.insert(key, Rc::clone(&prep));
        }
        Some(prep)
    }

    /// Re-evaluates the table allowances of a label-cache hit: the
    /// underlying fingerprints were skipped entirely (that is the point of
    /// the label layer), so the round-hint upgrade of [`PrepCache::eq_prep`]
    /// is applied to them directly.
    fn upgrade_tables(&mut self, label: &CachedLabel, rounds_hint: usize) {
        let ports = label.replication.iter().flat_map(|r| r.ports.iter());
        for prep in label.prover.iter().chain(ports) {
            let modulus = prep.protocol().modulus();
            if self.table_slots >= modulus && prep.permit_table(rounds_hint) {
                self.table_slots -= modulus;
            }
        }
    }
}

impl PrepCache {
    /// The shared preparation of one replicated label: parse results and
    /// per-part fingerprints, keyed by the label's bits. Built on first
    /// sight, retained while the key budget lasts.
    fn label_prep(&mut self, label: &BitString, rounds_hint: usize) -> Rc<CachedLabel> {
        self.sync_labels();
        if let Some(hit) = self.labels.get(label) {
            let prep = Rc::clone(hit);
            let mut store = self.store.borrow_mut();
            store.hits += 1;
            store.upgrade_tables(&prep, rounds_hint);
            return prep;
        }
        self.store.borrow_mut().misses += 1;
        // Prover side: the (κ, own-label) prefix. A malformed prefix keeps
        // the unprepared behaviour — empty certificates, no randomness
        // drawn.
        let prover = parse_own_label(label).map(|(kappa, own)| {
            self.store
                .borrow_mut()
                .eq_prep(
                    &EqProtocol::for_length(LEN_BITS as usize + kappa),
                    length_prefixed(&own),
                    rounds_hint,
                )
                .expect("own label length is bounded by κ")
        });
        // Verifier side: the full replication, with one prepared
        // fingerprint per claimed neighbor copy. Whether the arity fits a
        // node's degree is deliberately *not* decided here — degree is not
        // label content — so an empty parts list (never usable: degree + 1
        // is at least 1) is folded into the malformed case.
        let replication = match parse_replicated(label) {
            Some((kappa, parts)) if !parts.is_empty() => {
                let proto = EqProtocol::for_length(LEN_BITS as usize + kappa);
                let ports = parts[1..]
                    .iter()
                    .map(|part| {
                        self.store
                            .borrow_mut()
                            .eq_prep(&proto, length_prefixed(part), rounds_hint)
                            .expect("claimed copy length is bounded by κ")
                    })
                    .collect();
                Some(CachedReplication {
                    expected_bits: proto.message_bits(),
                    modulus: proto.modulus(),
                    parts,
                    ports,
                })
            }
            _ => None,
        };
        let prep = Rc::new(CachedLabel {
            prover,
            replication,
        });
        let cost = Self::key_cost(label.len());
        {
            let mut store = self.store.borrow_mut();
            if store.key_bits < cost && cost <= PrepCache::KEY_BITS_BUDGET {
                // Epoch turnover (see `EqStore::eq_prep`). This label's
                // own fingerprint entries, created just above, are wiped
                // with the rest — the Rcs in `prep` keep them alive, only
                // future sharing restarts.
                store.begin_epoch();
            }
        }
        // An epoch may have turned just above or inside any `eq_prep`
        // call; the label map must catch up before a retained insert.
        self.sync_labels();
        let mut store = self.store.borrow_mut();
        if store.key_bits >= cost {
            store.key_bits -= cost;
            self.labels.insert(label.clone(), Rc::clone(&prep));
        }
        prep
    }
}

/// The labeling-static plan of the batched trial path: how each node's
/// vote is computed across a whole block of trials. Everything here is a
/// pure function of the prepared labeling — certificate lengths, length
/// checks, and which fingerprint probes are non-trivial do not depend on
/// the round's randomness, so they are resolved once at preparation time
/// and the per-(edge, trial) loop is left with one SplitMix64 word, one
/// reduction, and two polynomial probes.
struct BatchPlan {
    /// Per-node `(message width, degree)` — the dimensions every
    /// message-pattern cost formula needs (width 0 when the node's prover
    /// prefix is malformed and it sends nothing). Every cert length is
    /// labeling-static: a node sends `message_bits` of its own protocol on
    /// each of its slots, or nothing when its prover prefix is malformed.
    dims: Vec<(usize, usize)>,
    /// One entry per node, parallel to `PreparedCompiled::nodes`.
    nodes: Vec<NodeBatch>,
    /// Node processing order: every node once, cheapest degree bucket
    /// first (see [`DegreeBuckets`]). The global verdict is a
    /// per-trial conjunction over nodes, so any order yields identical
    /// summaries — but walking hubs last means the dense nodes of a
    /// clique or power-law graph probe only the trials every cheap node
    /// already passed.
    order: Vec<u32>,
}

/// How one node votes across a block of trials.
enum NodeBatch {
    /// The vote is `false` every trial: the replicated label failed to
    /// parse (`VerifierPrep::Reject`), or some port statically fails the
    /// certificate-length check (malformed sender prover, or a κ mismatch
    /// that changes the message width).
    AlwaysFalse,
    /// Every fingerprint probe passes at every point (each sender
    /// fingerprints exactly the string this node's port expects — the
    /// honest-labeling case), so the vote is the memoised inner verdict.
    StaticPass,
    /// At least one port needs per-trial fingerprint probes; trivially
    /// passing ports are already dropped.
    Dynamic(Vec<EdgeCheck>),
}

/// One non-trivial per-trial fingerprint probe: the delivered certificate
/// on some port of the receiving node, reduced to its algebraic content.
struct EdgeCheck {
    /// The sender's (node, port) — the key of the per-trial random stream.
    src_node: u64,
    src_port: u64,
    /// The sender's field prime (the random point is drawn in this field).
    send_mod: u64,
    /// The receiver's field prime (the scalar path rejects points outside
    /// it before evaluating).
    recv_mod: u64,
    /// The sender's prepared fingerprint (what the certificate claims).
    sender: Rc<PreparedEq>,
    /// The receiver's prepared fingerprint of the claimed neighbor copy.
    receiver: Rc<PreparedEq>,
}

/// Trials per chunk of the lane-vectorised probe kernel: wide enough that
/// the interleaved Horner chains fill the multiplier pipeline (and give
/// the autovectoriser a fixed-width inner loop), small enough to live in
/// registers. Values are lane-count-independent, so this is a pure tuning
/// knob.
const PROBE_LANES: usize = 8;

impl EdgeCheck {
    /// Which of the sender's distinct message slots this check's port
    /// carries under `pattern` — the key of the probe word's stream (the
    /// port itself for the per-port-keyed patterns; unused by broadcast,
    /// which draws from the sender's node stream).
    fn slot_under(&self, pattern: MessagePattern, g: &rpls_graph::Graph) -> u64 {
        pattern.slot_of(
            g.degree(NodeId::new(self.src_node as usize)),
            self.src_port as usize,
        ) as u64
    }

    /// The probe word of `(seed, this check)` under `pattern`: one
    /// SplitMix64 word of the sender's per-slot edge stream (per-node
    /// stream for broadcast).
    #[inline]
    fn word(&self, pattern: MessagePattern, seed: u64, slot: u64) -> u64 {
        match pattern {
            MessagePattern::Broadcast => node_stream_word(seed, self.src_node, 0),
            _ => edge_stream_first_word(seed, self.src_node, slot),
        }
    }

    /// The scalar probe: `true` iff the delivered fingerprint would be
    /// accepted on this port for `seed`'s trial.
    #[inline]
    fn probe_one(
        &self,
        pattern: MessagePattern,
        slot: u64,
        seed: u64,
        send: &EqEvaluator<'_>,
        recv: &EqEvaluator<'_>,
    ) -> bool {
        let x = self.word(pattern, seed, slot) % self.send_mod;
        x < self.recv_mod && recv.eval(x) == send.eval(x)
    }

    /// Applies this check to every live trial, ANDing the probe verdict
    /// into `ok` — the **lane-vectorised probe kernel**. Trials are laid
    /// out in `u64×8` chunks: 8 probe words, one Barrett multiply-shift
    /// reduction each (bit-identical to `%`), then both polynomials'
    /// 8-lane Horner evaluations ([`EqEvaluator::eval_lanes`]). Plain
    /// fixed-width scalar code throughout — no target-feature gates; the
    /// lane layout's win is breaking the Horner dependency chain (and
    /// letting the autovectoriser lift what it can).
    ///
    /// A chunk whose 8 trials are all dead is skipped entirely; a chunk
    /// with any live trial evaluates all 8 lanes (dead lanes' verdicts
    /// are discarded by the AND — probe streams are stateless pure
    /// functions, so the extra evaluations can't shift anything another
    /// trial observes, and only nudge the lazy-table probe counter,
    /// which moves work but never values).
    ///
    /// Mismatched-field probes (`send_mod > recv_mod`, adversarial
    /// labelings only) keep the scalar masked path: a point past the
    /// receiver's field must reject *without* touching the receiver
    /// polynomial.
    fn probe_trials(
        &self,
        pattern: MessagePattern,
        g: &rpls_graph::Graph,
        seeds: &[u64],
        ok: &mut [bool],
    ) {
        let send = self.sender.evaluator();
        let recv = self.receiver.evaluator();
        let slot = self.slot_under(pattern, g);
        if self.send_mod > self.recv_mod {
            for (t, &seed) in seeds.iter().enumerate() {
                if ok[t] {
                    ok[t] = self.probe_one(pattern, slot, seed, &send, &recv);
                }
            }
            return;
        }
        // send_mod ≤ recv_mod: every reduced point lies in both fields,
        // so whole chunks evaluate unconditionally.
        let field = Barrett::cached(self.send_mod);
        let mut t0 = 0usize;
        while t0 + PROBE_LANES <= seeds.len() {
            let live = &mut ok[t0..t0 + PROBE_LANES];
            if live.iter().any(|&b| b) {
                let mut xs = [0u64; PROBE_LANES];
                for (l, x) in xs.iter_mut().enumerate() {
                    *x = field.reduce(u128::from(self.word(pattern, seeds[t0 + l], slot)));
                }
                let sv = send.eval_lanes(&xs);
                let rv = recv.eval_lanes(&xs);
                for (l, o) in live.iter_mut().enumerate() {
                    *o = *o && rv[l] == sv[l];
                }
            }
            t0 += PROBE_LANES;
        }
        for (t, &seed) in seeds.iter().enumerate().skip(t0) {
            if ok[t] {
                let x = field.reduce(u128::from(self.word(pattern, seed, slot)));
                ok[t] = recv.eval(x) == send.eval(x);
            }
        }
    }
}

impl BatchPlan {
    fn build(config: &Configuration, nodes: &[PreparedNode], force_dynamic: bool) -> Self {
        let g = config.graph();
        let port_base = config.port_base();
        let delivery = config.delivery();
        // Owner of each global port (the inverse of the CSR layout).
        let port_count = *port_base.last().expect("port_base has n+1 entries") as usize;
        let mut owner = vec![0u32; port_count];
        for v in 0..nodes.len() {
            let node = u32::try_from(v).expect("node index fits in u32");
            owner[port_base[v] as usize..port_base[v + 1] as usize].fill(node);
        }
        let mut dims = Vec::with_capacity(nodes.len());
        for (v, n) in nodes.iter().enumerate() {
            let len = n
                .label
                .prover
                .as_ref()
                .map_or(0, |p| p.protocol().message_bits());
            dims.push((len, g.degree(NodeId::new(v))));
        }
        let batch_nodes = nodes
            .iter()
            .enumerate()
            .map(|(u, n)| {
                if !n.ready {
                    return NodeBatch::AlwaysFalse;
                }
                let rep = n.label.replication.as_ref().expect("ready implies parsed");
                let mut checks = Vec::new();
                let lo = port_base[u] as usize;
                for (i, recv_prep) in rep.ports.iter().enumerate() {
                    let src = delivery[lo + i] as usize;
                    let v = owner[src] as usize;
                    let p = src - port_base[v] as usize;
                    let Some(send_prep) = &nodes[v].label.prover else {
                        // A malformed sender prover emits empty
                        // certificates, which can never match the expected
                        // fingerprint width: the length check fails every
                        // trial.
                        return NodeBatch::AlwaysFalse;
                    };
                    if send_prep.protocol().message_bits() != rep.expected_bits {
                        return NodeBatch::AlwaysFalse;
                    }
                    if !force_dynamic && Rc::ptr_eq(send_prep, recv_prep) {
                        // Preparations are shared by (modulus,
                        // fingerprinted string), so pointer equality means
                        // the sender fingerprints exactly the string this
                        // port expects: the probe passes at every point of
                        // the field, every trial. (When a cache budget ran
                        // out and handed one side out unshared, the probe
                        // simply runs — and passes — dynamically; votes
                        // cannot depend on the shortcut. `force_dynamic`
                        // keeps every such probe for the same reason the
                        // shortcut is sound: measurement-only, verdicts
                        // identical.)
                        continue;
                    }
                    checks.push(EdgeCheck {
                        src_node: v as u64,
                        src_port: p as u64,
                        send_mod: send_prep.protocol().modulus(),
                        recv_mod: rep.modulus,
                        sender: Rc::clone(send_prep),
                        receiver: Rc::clone(recv_prep),
                    });
                }
                if checks.is_empty() {
                    NodeBatch::StaticPass
                } else {
                    NodeBatch::Dynamic(checks)
                }
            })
            .collect();
        let order = DegreeBuckets::new(g).iter_by_bucket().collect();
        Self {
            dims,
            nodes: batch_nodes,
            order,
        }
    }
}

/// The `t`-round **chunked fingerprint streaming** plan (the compiled
/// scheme's [`PreparedRpls::run_multiround`] schedule). Instead of
/// fingerprinting the whole length-prefixed inner label once, the prover
/// cuts it into `⌈λ/t⌉`-bit slices and sends, in round `r`, one fresh
/// `(x, A_r(x))` fingerprint of slice `r` — per-round communication
/// `2⌈log₂ p⌉` for the prime of the *slice* protocol, and rounds past the
/// string's coverage send nothing at all. The verifier checks each round's
/// fingerprint against the matching slice of its claimed neighbor copy and
/// **rejects early**: a trial's verdict is known at the first round in
/// which any node's check fails.
///
/// Soundness is preserved slice-wise: two different length-prefixed labels
/// differ in some aligned slice (different lengths differ inside the
/// 32-bit length prefix, which lives in slice 0's span), and that slice's
/// equality protocol catches the difference with probability `> 2/3`. The
/// `t = 1` schedule fingerprints the whole string under the exact
/// one-round protocol with the exact one-round randomness, so it is
/// bit-identical to the one-round batched path (`tests/engine_golden.rs`
/// pins this).
///
/// Everything here is labeling-static, mirroring [`BatchPlan`]: per-round
/// certificate widths, coverage mismatches, and which slice probes are
/// non-trivial are resolved once; the per-(edge, round, trial) loop is one
/// SplitMix64 word plus two slice-polynomial probes. Plans are cached per
/// `t` on the prepared instance.
struct MultiRoundPlan {
    /// Per-node `(slice-message width, degree, covered rounds)` for the
    /// message-pattern cost formulas (width and coverage 0 when the
    /// node's prover prefix is malformed and it streams nothing). Round 0
    /// always carries a full slice message wherever anything is sent.
    dims: Vec<(usize, usize, usize)>,
    /// One entry per node.
    nodes: Vec<MultiNodeBatch>,
}

/// How one node's accumulated multi-round vote resolves across a block of
/// trials.
enum MultiNodeBatch {
    /// Rejects deterministically in the given 1-based round, every trial:
    /// parse/arity failures and certificate-width mismatches fail round 1's
    /// length check; coverage mismatches fail the length check of the first
    /// round where one side stops streaming.
    RejectAt(usize),
    /// Every slice probe passes at every point in every round, so the vote
    /// is the memoised inner verdict (a `false` verdict surfaces when the
    /// node votes after its last round, i.e. at round `rounds`).
    StaticPass,
    /// At least one (port, round) needs per-trial slice probes.
    Dynamic {
        /// Earliest 1-based round with a deterministic length failure
        /// (coverage mismatch), if any; probes at or past it are pruned.
        static_reject: Option<usize>,
        /// Non-trivial probes, sorted by round.
        checks: Vec<MultiEdgeCheck>,
    },
}

/// One non-trivial slice probe: round `round`'s certificate on some port,
/// reduced to its algebraic content (the multi-round analog of
/// [`EdgeCheck`]).
struct MultiEdgeCheck {
    /// 0-based round of this probe.
    round: usize,
    /// The sender's (node, port) keying the per-round random stream.
    src_node: u64,
    src_port: u64,
    /// The sender's slice-protocol prime (the random point's field).
    send_mod: u64,
    /// The receiver's slice-protocol prime (points outside it reject).
    recv_mod: u64,
    /// The sender's prepared fingerprint of its own slice `round`.
    sender: Rc<PreparedEq>,
    /// The receiver's prepared fingerprint of the claimed copy's slice.
    receiver: Rc<PreparedEq>,
}

impl MultiEdgeCheck {
    /// Which of the sender's distinct message slots this check's port
    /// carries under `pattern` (see [`EdgeCheck::slot_under`]).
    fn slot_under(&self, pattern: MessagePattern, g: &rpls_graph::Graph) -> u64 {
        pattern.slot_of(
            g.degree(NodeId::new(self.src_node as usize)),
            self.src_port as usize,
        ) as u64
    }
}

/// The prover-side slice schedule of one node: how its length-prefixed
/// inner label streams across `t` rounds.
struct SenderSchedule {
    /// Slice capacity `⌈λ/t⌉` for the node's declared `λ = 32 + κ`.
    chunk: usize,
    /// The equality protocol of that slice capacity (all rounds share it).
    proto: EqProtocol,
    /// The length-prefixed inner label actually streamed.
    lp: BitString,
    /// Rounds that carry a message: `⌈lp.len() / chunk⌉` (≥ 1 — the 32-bit
    /// length prefix guarantees a non-empty string). Rounds past this send
    /// empty certificates without drawing randomness.
    covered: usize,
}

/// The bits `[r·chunk, (r+1)·chunk)` of `lp`, clamped to its length.
fn slice_of(lp: &BitString, r: usize, chunk: usize) -> BitString {
    let start = r * chunk;
    let end = lp.len().min(start.saturating_add(chunk));
    let mut out = BitString::with_capacity(end.saturating_sub(start));
    for i in start..end {
        out.push(lp.bit(i).expect("slice range is clamped to the string"));
    }
    out
}

impl MultiRoundPlan {
    fn build<S: Pls>(
        prepared: &PreparedCompiled<'_, S>,
        rounds: usize,
        rounds_hint: usize,
    ) -> Self {
        let config = prepared.config;
        let g = config.graph();
        let port_base = config.port_base();
        let delivery = config.delivery();
        let port_count = *port_base.last().expect("port_base has n+1 entries") as usize;
        let mut owner = vec![0u32; port_count];
        for v in 0..prepared.nodes.len() {
            let node = u32::try_from(v).expect("node index fits in u32");
            owner[port_base[v] as usize..port_base[v + 1] as usize].fill(node);
        }

        // Prover-side slice schedules, one per node. A malformed
        // (κ, own-label) prefix keeps the one-round behaviour: empty
        // certificates every round, no randomness drawn.
        let senders: Vec<Option<SenderSchedule>> = g
            .nodes()
            .map(|v| {
                parse_own_label(prepared.labeling.get(v)).map(|(kappa, own)| {
                    let lambda = LEN_BITS as usize + kappa;
                    let chunk = lambda.div_ceil(rounds);
                    let proto = EqProtocol::for_length(chunk);
                    let lp = length_prefixed(&own);
                    let covered = lp.len().div_ceil(chunk);
                    SenderSchedule {
                        chunk,
                        proto,
                        lp,
                        covered,
                    }
                })
            })
            .collect();

        let mut dims = Vec::with_capacity(senders.len());
        for (v, s) in senders.iter().enumerate() {
            let degree = g.degree(NodeId::new(v));
            match s {
                Some(s) => dims.push((s.proto.message_bits(), degree, s.covered)),
                None => dims.push((0, degree, 0)),
            }
        }

        // Slice fingerprints are content-keyed `(modulus, slice)` pairs
        // like every other preparation, so they are requested through the
        // cache's shared store: a sender slice checked by several ports —
        // or recurring across the labelings and per-t plans of a sweep —
        // is prepared once, with retention and lazy-table allowances drawn
        // from the cache-wide epoch budgets instead of a per-plan pool.
        let store = &prepared.store;
        let prepare_slice = |proto: &EqProtocol, slice: BitString| -> Rc<PreparedEq> {
            store
                .borrow_mut()
                .eq_prep(proto, slice, rounds_hint)
                .expect("slice length is bounded by the slice capacity")
        };

        let batch_nodes = prepared
            .nodes
            .iter()
            .enumerate()
            .map(|(u, n)| {
                if !n.ready {
                    return MultiNodeBatch::RejectAt(1);
                }
                let rep = n.label.replication.as_ref().expect("ready implies parsed");
                // The receiver's slice capacity comes from its own declared
                // κ (the first 32 bits of its replicated label, which
                // `ready` guarantees parse).
                let kappa_u = BitReader::new(prepared.labeling.get(NodeId::new(u)))
                    .read_u64(LEN_BITS)
                    .expect("ready implies a parsable κ prefix")
                    as usize;
                let chunk_u = (LEN_BITS as usize + kappa_u).div_ceil(rounds);
                let proto_u = EqProtocol::for_length(chunk_u);
                let mut static_reject: Option<usize> = None;
                let mut checks: Vec<MultiEdgeCheck> = Vec::new();
                let lo = port_base[u] as usize;
                for (i, part) in rep.parts[1..].iter().enumerate() {
                    let src = delivery[lo + i] as usize;
                    let v = owner[src] as usize;
                    let p = src - port_base[v] as usize;
                    let Some(sv) = &senders[v] else {
                        // Empty certificates where a slice message is
                        // expected: round 1's length check fails.
                        return MultiNodeBatch::RejectAt(1);
                    };
                    if sv.proto.message_bits() != proto_u.message_bits() {
                        return MultiNodeBatch::RejectAt(1);
                    }
                    let lp_u = length_prefixed(part);
                    let covered_u = lp_u.len().div_ceil(chunk_u);
                    let shared = sv.covered.min(covered_u);
                    if sv.covered != covered_u {
                        // One side stops streaming before the other: the
                        // first uncovered round's length check fails
                        // deterministically.
                        let at = shared + 1;
                        static_reject = Some(static_reject.map_or(at, |k| k.min(at)));
                    }
                    for r in 0..shared {
                        let ss = slice_of(&sv.lp, r, sv.chunk);
                        let su = slice_of(&lp_u, r, chunk_u);
                        if sv.proto.modulus() == proto_u.modulus() && ss == su {
                            // The sender fingerprints exactly the slice
                            // this round expects: passes at every point of
                            // the field, every trial.
                            continue;
                        }
                        let sender = prepare_slice(&sv.proto, ss);
                        let receiver = prepare_slice(&proto_u, su);
                        checks.push(MultiEdgeCheck {
                            round: r,
                            src_node: v as u64,
                            src_port: p as u64,
                            send_mod: sv.proto.modulus(),
                            recv_mod: proto_u.modulus(),
                            sender,
                            receiver,
                        });
                    }
                }
                if let Some(k) = static_reject {
                    // Probes at or past a deterministic rejection cannot
                    // move the node's first-failure round.
                    checks.retain(|c| c.round + 1 < k);
                }
                checks.sort_by_key(|c| c.round);
                match (checks.is_empty(), static_reject) {
                    (true, Some(k)) => MultiNodeBatch::RejectAt(k),
                    (true, None) => MultiNodeBatch::StaticPass,
                    (false, _) => MultiNodeBatch::Dynamic {
                        static_reject,
                        checks,
                    },
                }
            })
            .collect();

        Self {
            dims,
            nodes: batch_nodes,
        }
    }
}

/// Per-node state of a prepared compiled scheme: the content-derived label
/// preparation (shared through the [`PrepCache`]) plus the two
/// per-(configuration, node) facts that are *not* label content and so
/// never cross labelings — the arity fit and the memoised inner verdict.
struct PreparedNode {
    /// The shared preparation of this node's label: prover fingerprint
    /// (`None` when the (κ, own-label) prefix is malformed — such nodes
    /// emit empty certificates without drawing randomness, exactly like
    /// the unprepared [`Rpls::certify_into`]) and the parsed replication
    /// with one prepared fingerprint per claimed neighbor copy.
    label: Rc<CachedLabel>,
    /// Whether the replication parsed *and* matches this node's degree;
    /// `false` means every round rejects at this node.
    ready: bool,
    /// The inner verifier's verdict on the claimed labels. It does not
    /// depend on the round's randomness, so it is computed at most once
    /// per prepared instance — and, matching the unprepared path, only on
    /// a round in which every fingerprint check passed. It depends on the
    /// node's local context (identity, payload, weights), which is not
    /// label content, so it deliberately lives here and not in the cache.
    inner: OnceCell<bool>,
}

/// The prepared form of [`CompiledRpls`] (the ROADMAP's "prepared
/// prover"): each replicated label parsed once per labeling,
/// length-prefixed once, one fingerprint polynomial per node on the prover
/// side and one per claimed neighbor copy on the verifier side — after
/// which each (node, port, trial) costs one random field element plus one
/// polynomial evaluation (a table lookup at Monte-Carlo trial counts).
struct PreparedCompiled<'a, S> {
    scheme: &'a CompiledRpls<S>,
    config: &'a Configuration,
    /// The bound labeling — the multi-round planner re-reads raw labels
    /// from it (slice schedules are cut from strings the one-round
    /// preparation does not retain).
    labeling: &'a Labeling,
    /// The round count this instance was prepared for, reused as the
    /// lazy-table hint of multi-round slice fingerprints.
    rounds_hint: usize,
    /// Handle on the preparing cache's fingerprint store: plans built
    /// lazily after binding time (the per-`t` slice schedules) request
    /// their preparations through it, sharing content and budgets with
    /// everything prepared up front.
    store: Rc<std::cell::RefCell<EqStore>>,
    nodes: Vec<PreparedNode>,
    /// The labeling-static batched-trial plan (see [`BatchPlan`]).
    plan: BatchPlan,
    /// Chunked-fingerprint schedules, built on first use and cached per
    /// `t` (see [`MultiRoundPlan`]). A sweep rarely uses more than a
    /// handful of distinct `t`s, so a small vec beats a map.
    multiround_plans: RefCell<Vec<(usize, Rc<MultiRoundPlan>)>>,
}

impl<S: Pls> PreparedCompiled<'_, S> {
    /// The chunked-fingerprint schedule for `rounds`, built on first use.
    fn multiround_plan(&self, rounds: usize) -> Rc<MultiRoundPlan> {
        if let Some((_, plan)) = self
            .multiround_plans
            .borrow()
            .iter()
            .find(|(t, _)| *t == rounds)
        {
            return Rc::clone(plan);
        }
        let plan = Rc::new(MultiRoundPlan::build(self, rounds, self.rounds_hint));
        self.multiround_plans
            .borrow_mut()
            .push((rounds, Rc::clone(&plan)));
        plan
    }

    /// The memoised inner verdict of node `u`, which must be `ready`.
    /// Shared between the scalar and batched paths, so whichever runs
    /// first fills the same memo — and, matching the unprepared path, it
    /// is only ever queried after a round (or trial) in which every
    /// fingerprint check passed.
    fn inner_verdict(&self, u: usize) -> bool {
        let node = &self.nodes[u];
        debug_assert!(node.ready, "inner verdict queried for a rejecting node");
        let rep = node
            .label
            .replication
            .as_ref()
            .expect("ready implies parsed");
        *node.inner.get_or_init(|| {
            let det = DetView {
                local: crate::engine::local_context(self.config, NodeId::new(u)),
                label: &rep.parts[0],
                neighbor_labels: rep.parts[1..].iter().collect(),
            };
            self.scheme.inner.verify(&det)
        })
    }
}

impl<S: Pls> PreparedRpls for PreparedCompiled<'_, S> {
    fn pattern_cost(&self, pattern: MessagePattern, rounds: usize) -> Option<PatternCost> {
        if rounds == 1 {
            return Some(pattern_cost_from_dims(
                pattern,
                self.plan.dims.iter().map(|&(w, d)| (w, d, 1)),
            ));
        }
        let plan = self.multiround_plan(rounds);
        Some(pattern_cost_from_dims(pattern, plan.dims.iter().copied()))
    }

    fn certify_into(
        &self,
        node: NodeId,
        _port: rpls_graph::Port,
        rng: &mut dyn Rng,
        out: &mut BitString,
    ) {
        out.clear();
        let Some(prep) = &self.nodes[node.index()].label.prover else {
            return;
        };
        let msg = prep.alice_message(rng);
        msg.append_to(prep.protocol().modulus(), out);
    }

    fn verify(&self, node: NodeId, received: &Received<'_>) -> bool {
        let n = &self.nodes[node.index()];
        if !n.ready {
            return false;
        }
        let rep = n.label.replication.as_ref().expect("ready implies parsed");
        for (i, cert) in received.iter().enumerate() {
            if cert.len() != rep.expected_bits {
                return false;
            }
            let Ok(msg) = EqMessage::from_slice(cert, rep.modulus) else {
                return false;
            };
            if !rep.ports[i].bob_accepts(&msg) {
                return false;
            }
        }
        self.inner_verdict(node.index())
    }

    /// The batched trial loop the ROADMAP's "batch whole trials per node"
    /// lever asked for. Certificates are never materialised: with
    /// edge-independent streams, each (node, port, trial) certificate is a
    /// pure function of `(seed_t, node, port)` — one SplitMix64 word
    /// reduced into the sender's field — so the fingerprint check collapses
    /// to comparing two prepared polynomial probes at that point. The
    /// BitSlice parse, the table-vs-Horner dispatch, the arena writes, and
    /// the per-trial vote loop of the scalar path are all hoisted out of
    /// (or dropped from) the inner loop; summaries stay bit-identical to
    /// the scalar path, which the golden tests pin.
    fn run_trials(
        &self,
        config: &Configuration,
        seeds: &[u64],
        pattern: MessagePattern,
        mode: StreamMode,
        scratch: &mut RoundScratch,
        emit: &mut dyn FnMut(RoundSummary),
    ) {
        // The shared-stream violation mode threads one generator across a
        // node's ports sequentially; batching per (node, port) would
        // reorder its draws, so that diagnostics mode keeps the scalar
        // loop for the per-port-keyed patterns. Broadcast and k-messages
        // key their streams by slot and ignore the stream mode entirely,
        // so they always batch.
        let scalar = matches!(pattern, MessagePattern::PerPort | MessagePattern::Unicast)
            && mode != StreamMode::EdgeIndependent;
        if scalar {
            for &seed in seeds {
                emit(crate::engine::run_randomized_prepared_patterned_with(
                    self, config, seed, pattern, mode, scratch,
                ));
            }
            return;
        }
        let plan = &self.plan;
        // Pattern-adjusted bit accounting, identical by construction to
        // what the scalar patterned path reports (it overrides its
        // transcript-derived bits with the same `pattern_cost`). For
        // `PerPort` the formula reproduces `plan.{max,total}_bits`
        // exactly, keeping the golden transcripts intact.
        let cost = pattern_cost_from_dims(pattern, plan.dims.iter().map(|&(w, d)| (w, d, 1)));
        let g = config.graph();
        let trials = seeds.len();
        let mut acc = vec![true; trials];
        let mut ok: Vec<bool> = Vec::with_capacity(trials);
        // Cheapest degree bucket first (see `BatchPlan::order`): the
        // conjunction over nodes is order-independent, but hubs walked
        // last probe only the trials every cheap node already passed.
        'nodes: for &u in &plan.order {
            let u = u as usize;
            match &plan.nodes[u] {
                NodeBatch::AlwaysFalse => {
                    acc.fill(false);
                    break 'nodes;
                }
                NodeBatch::StaticPass => {
                    if trials > 0 && !self.inner_verdict(u) {
                        acc.fill(false);
                        break 'nodes;
                    }
                }
                NodeBatch::Dynamic(checks) => {
                    // Trials some earlier node already rejected can skip
                    // the probes: streams are per-(node, slot, trial), so
                    // nothing downstream observes the skipped draws.
                    ok.clear();
                    ok.extend_from_slice(&acc);
                    match self.scheme.sketch.map(|s| s.max_probes()) {
                        Some(s) if checks.len() > s => {
                            // The probe sketch: a node over budget runs,
                            // per live trial, `s` checks sampled from its
                            // domain-separated sketch stream — a subset
                            // of the full conjunction, so rejection here
                            // implies full-probe rejection on the same
                            // seed (see [`ProbeSketch`]).
                            let d = checks.len() as u64;
                            for (t, &seed) in seeds.iter().enumerate() {
                                if !ok[t] {
                                    continue;
                                }
                                for draw in 0..s as u64 {
                                    let idx =
                                        (sketch_stream_word(seed, u as u64, draw) % d) as usize;
                                    let c = &checks[idx];
                                    let send = c.sender.evaluator();
                                    let recv = c.receiver.evaluator();
                                    let slot = c.slot_under(pattern, g);
                                    if !c.probe_one(pattern, slot, seed, &send, &recv) {
                                        ok[t] = false;
                                        break;
                                    }
                                }
                            }
                        }
                        _ => {
                            for c in checks {
                                c.probe_trials(pattern, g, seeds, &mut ok);
                            }
                        }
                    }
                    if !ok.contains(&true) {
                        acc.fill(false);
                        break 'nodes;
                    }
                    if self.inner_verdict(u) {
                        acc.copy_from_slice(&ok);
                    } else {
                        // The inner verifier rejects the claimed labels:
                        // trials whose fingerprints all passed reach that
                        // rejection, the rest already failed a probe —
                        // either way every vote is false.
                        acc.fill(false);
                        break 'nodes;
                    }
                }
            }
        }
        for &accepted in &acc {
            emit(RoundSummary {
                accepted,
                max_certificate_bits: cost.max_bits_per_round,
                total_certificate_bits: cost.total_bits,
            });
        }
    }

    /// One t-round chunked-fingerprint trial (see [`MultiRoundPlan`]).
    fn run_multiround(
        &self,
        config: &Configuration,
        seed: u64,
        rounds: usize,
        pattern: MessagePattern,
        mode: StreamMode,
        scratch: &mut RoundScratch,
    ) -> MultiRoundSummary {
        let mut out = None;
        self.run_multiround_trials(config, &[seed], rounds, pattern, mode, scratch, &mut |s| {
            out = Some(s);
        });
        out.expect("one summary per seed")
    }

    /// The batched t-round trial loop: chunked fingerprint streaming with
    /// early rejection, certificates never materialised. Each non-trivial
    /// (port, round, trial) probe is one SplitMix64 word of round `r`'s
    /// stream reduced into the sender's slice field, compared through two
    /// prepared slice polynomials; everything else — per-round widths,
    /// coverage mismatches, statically satisfied slices — was resolved at
    /// plan-build time. Probes that can no longer move a trial's
    /// first-rejection round are skipped (streams are per-(node, port,
    /// round, trial), so nothing downstream observes the skipped draws).
    fn run_multiround_trials(
        &self,
        config: &Configuration,
        seeds: &[u64],
        rounds: usize,
        pattern: MessagePattern,
        mode: StreamMode,
        scratch: &mut RoundScratch,
        emit: &mut dyn FnMut(MultiRoundSummary),
    ) {
        assert!(rounds > 0, "a schedule needs at least one round");
        let _ = scratch;
        let plan = self.multiround_plan(rounds);
        // Pattern-adjusted bit accounting; reproduces the plan's own
        // `{max,total}_bits` exactly under `PerPort`.
        let cost = pattern_cost_from_dims(pattern, plan.dims.iter().copied());
        let g = config.graph();
        let trials = seeds.len();
        /// Sentinel for "no rejection observed yet".
        const NONE: usize = usize::MAX;
        let mut reject_at = vec![NONE; trials];
        let mut node_fail: Vec<usize> = Vec::new();
        for (u, nb) in plan.nodes.iter().enumerate() {
            match nb {
                MultiNodeBatch::RejectAt(k) => {
                    for slot in &mut reject_at {
                        *slot = (*slot).min(*k);
                    }
                }
                MultiNodeBatch::StaticPass => {
                    if trials > 0 && !self.inner_verdict(u) {
                        for slot in &mut reject_at {
                            *slot = (*slot).min(rounds);
                        }
                    }
                }
                MultiNodeBatch::Dynamic {
                    static_reject,
                    checks,
                } => {
                    node_fail.clear();
                    node_fail.resize(trials, static_reject.unwrap_or(NONE));
                    for c in checks {
                        let send = c.sender.evaluator();
                        let recv = c.receiver.evaluator();
                        let round1 = c.round + 1;
                        let slot = c.slot_under(pattern, g);
                        for (t, &seed) in seeds.iter().enumerate() {
                            if node_fail[t] <= round1 || reject_at[t] <= round1 {
                                continue;
                            }
                            let rseed = multiround_seed(seed, c.round);
                            let word = match pattern {
                                // Broadcast keys each round's single
                                // message by the sender's per-round node
                                // stream, whatever the stream mode.
                                MessagePattern::Broadcast => node_stream_word(rseed, c.src_node, 0),
                                // k-messages keys each slot's message by
                                // its slot-indexed edge stream,
                                // mode-independently.
                                MessagePattern::KMessages(_) => {
                                    edge_stream_first_word(rseed, c.src_node, slot)
                                }
                                MessagePattern::PerPort | MessagePattern::Unicast => match mode {
                                    StreamMode::EdgeIndependent => {
                                        edge_stream_first_word(rseed, c.src_node, c.src_port)
                                    }
                                    // The shared-stream violation mode
                                    // draws one word per port from the
                                    // node's single per-round stream; port
                                    // rank p consumes word p (each slice
                                    // message costs exactly one word).
                                    StreamMode::SharedPerNode => {
                                        node_stream_word(rseed, c.src_node, c.src_port)
                                    }
                                },
                            };
                            let x = word % c.send_mod;
                            if !(x < c.recv_mod && recv.eval(x) == send.eval(x)) {
                                node_fail[t] = round1;
                            }
                        }
                    }
                    // The inner verifier runs only for trials whose probes
                    // all passed, matching the one-round order; its `false`
                    // verdict surfaces when the node votes after the last
                    // round.
                    let inner = if node_fail.contains(&NONE) {
                        self.inner_verdict(u)
                    } else {
                        true // unused: every trial already failed a probe
                    };
                    for (slot, &fail) in reject_at.iter_mut().zip(&node_fail) {
                        let fail = if fail == NONE {
                            if inner {
                                NONE
                            } else {
                                rounds
                            }
                        } else {
                            fail
                        };
                        *slot = (*slot).min(fail);
                    }
                }
            }
        }
        for &r in &reject_at {
            let accepted = r == NONE;
            emit(MultiRoundSummary {
                accepted,
                rounds,
                decided_round: if accepted { rounds } else { r },
                max_bits_per_round: cost.max_bits_per_round,
                total_bits: cost.total_bits,
            });
        }
    }

    /// The faulted batched trial loop: the clean probe kernel
    /// ([`PreparedRpls::run_trials`]) plus a per-trial fault scan over
    /// **every** directed edge. The scan runs over all ports — not just the
    /// plan's dynamic checks — so a message the batch plan statically
    /// skipped (a shared-preparation probe, a static-pass node) still fails
    /// its trial when the plan perturbs it: a dropped or corrupted message
    /// never silently counts as a passed probe. The global verdict is the
    /// clean kernel's AND "no message missing", which is exactly the scalar
    /// reference semantics (a node missing input rejects conservatively, so
    /// the conjunction over nodes factors).
    fn run_trials_faulted(
        &self,
        config: &Configuration,
        seeds: &[u64],
        plan: &FaultPlan,
        pattern: MessagePattern,
        mode: StreamMode,
        scratch: &mut RoundScratch,
        emit: &mut dyn FnMut(FaultedRoundSummary),
    ) {
        if plan.is_transparent() {
            self.run_trials(config, seeds, pattern, mode, scratch, &mut |s| {
                emit(FaultedRoundSummary::clean(s));
            });
            return;
        }
        // The fault layer models point-to-point delivery, so the scan
        // below stays per directed link under every pattern: a broadcast
        // message crossing d links is hazarded (and accounted) d times.
        let mut clean: Vec<bool> = Vec::with_capacity(seeds.len());
        self.run_trials(config, seeds, pattern, mode, scratch, &mut |s| {
            clean.push(s.accepted);
        });

        // Per-node transmitted certificate width, label-static: exactly
        // what `certify_into` writes (the prover's message width, or zero
        // when the (κ, own-label) prefix is malformed).
        let cert_bits: Vec<usize> = self
            .nodes
            .iter()
            .map(|n| {
                n.label
                    .prover
                    .as_ref()
                    .map_or(0, |p| p.protocol().message_bits())
            })
            .collect();

        let n = config.node_count();
        let delivery = config.delivery();
        let port_owner = config.port_owner();
        let mut crashed = vec![false; n];
        // Trial-stamped marker for "this receiver already lost a message".
        let mut short_at = vec![usize::MAX; n];
        for (t, &seed) in seeds.iter().enumerate() {
            let mut counts = FaultCounts::default();
            for (v, down) in crashed.iter_mut().enumerate() {
                *down = plan.crash_hazard(seed, v as u64, 0);
                counts.crashed_nodes += usize::from(*down);
            }
            let mut missing_messages = 0usize;
            let mut insufficient_nodes = 0usize;
            let mut max_bits = 0usize;
            let mut total_bits = 0usize;
            for (recv_port, &src) in delivery.iter().enumerate() {
                let src = src as usize;
                let sender = port_owner[src] as usize;
                let receiver = port_owner[recv_port] as usize;
                let mut lose = || {
                    missing_messages += 1;
                    if short_at[receiver] != t {
                        short_at[receiver] = t;
                        insufficient_nodes += 1;
                    }
                };
                if crashed[sender] {
                    lose();
                    continue;
                }
                let len = cert_bits[sender];
                let outcome = plan.outcome(seed, 0, src as u64);
                total_bits += len * outcome.transmissions();
                max_bits = max_bits.max(len);
                match outcome {
                    DeliveryOutcome::Intact => {}
                    DeliveryOutcome::Duplicated => counts.duplicated += 1,
                    DeliveryOutcome::Dropped => {
                        counts.dropped += 1;
                        lose();
                    }
                    DeliveryOutcome::Corrupted => {
                        counts.corrupted += 1;
                        lose();
                    }
                }
            }
            emit(FaultedRoundSummary {
                summary: RoundSummary {
                    accepted: clean[t] && missing_messages == 0,
                    max_certificate_bits: max_bits,
                    total_certificate_bits: total_bits,
                },
                insufficient_nodes,
                missing_messages,
                counts,
            });
        }
    }

    /// The faulted batched t-round loop: the clean chunked-fingerprint
    /// kernel plus a fault overlay on *its* per-round message set — node
    /// `u` sends one slice message of its protocol width per port in each
    /// of its `covered` rounds; rounds past coverage carry nothing and
    /// draw no fault word. Failed chunks are re-sent within their round up
    /// to the plan's retry budget (each attempt pays the slice width
    /// again); senders crash-stop at their first firing hazard. A receiver
    /// still missing a chunk after retries rejects at the end of that
    /// round, so `decided_round` is the earlier of the clean kernel's
    /// decision and the first unrecovered loss.
    #[allow(clippy::too_many_arguments)]
    fn run_multiround_trials_faulted(
        &self,
        config: &Configuration,
        seeds: &[u64],
        rounds: usize,
        plan: &FaultPlan,
        pattern: MessagePattern,
        mode: StreamMode,
        scratch: &mut RoundScratch,
        emit: &mut dyn FnMut(FaultedMultiRoundSummary),
    ) {
        assert!(rounds > 0, "a schedule needs at least one round");
        if plan.is_transparent() {
            self.run_multiround_trials(config, seeds, rounds, pattern, mode, scratch, &mut |s| {
                emit(FaultedMultiRoundSummary::clean(s));
            });
            return;
        }
        // As in `run_trials_faulted`, the overlay stays per directed link
        // under every pattern (point-to-point delivery model).
        let mut clean: Vec<MultiRoundSummary> = Vec::with_capacity(seeds.len());
        self.run_multiround_trials(config, seeds, rounds, pattern, mode, scratch, &mut |s| {
            clean.push(s);
        });

        // The streaming schedule's per-node message shape, mirroring the
        // plan builder's `SenderSchedule`: slice-message width and covered
        // rounds (malformed prefixes stream nothing, as in certify_into).
        let sched: Vec<(usize, usize)> = config
            .graph()
            .nodes()
            .map(|v| {
                parse_own_label(self.labeling.get(v)).map_or((0, 0), |(kappa, own)| {
                    let chunk = (LEN_BITS as usize + kappa).div_ceil(rounds);
                    let proto = EqProtocol::for_length(chunk);
                    (
                        proto.message_bits(),
                        length_prefixed(&own).len().div_ceil(chunk),
                    )
                })
            })
            .collect();
        let max_covered = sched.iter().map(|&(_, c)| c).max().unwrap_or(0);

        let n = config.node_count();
        let delivery = config.delivery();
        let port_owner = config.port_owner();
        let mut crash_round = vec![usize::MAX; n];
        let mut short_at = vec![usize::MAX; n];
        for (t, &seed) in seeds.iter().enumerate() {
            let mut counts = FaultCounts::default();
            for (v, cr) in crash_round.iter_mut().enumerate() {
                *cr = usize::MAX;
                for r in 0..max_covered {
                    if plan.crash_hazard(seed, v as u64, r as u64) {
                        *cr = r;
                        counts.crashed_nodes += 1;
                        break;
                    }
                }
            }
            let mut missing_messages = 0usize;
            let mut insufficient_nodes = 0usize;
            let mut earliest_missing = usize::MAX;
            let mut max_round_bits = 0usize;
            let mut total_bits = 0usize;
            for (recv_port, &src) in delivery.iter().enumerate() {
                let src = src as usize;
                let sender = port_owner[src] as usize;
                let receiver = port_owner[recv_port] as usize;
                let (bits, covered) = sched[sender];
                for r in 0..covered {
                    if r >= crash_round[sender] {
                        missing_messages += covered - r;
                        if short_at[receiver] != t {
                            short_at[receiver] = t;
                            insufficient_nodes += 1;
                        }
                        earliest_missing = earliest_missing.min(r);
                        break;
                    }
                    let outcome = plan.outcome(seed, r as u64, src as u64);
                    total_bits += bits * outcome.transmissions();
                    let mut round_bits = bits * outcome.transmissions();
                    match outcome {
                        DeliveryOutcome::Intact => {}
                        DeliveryOutcome::Duplicated => counts.duplicated += 1,
                        DeliveryOutcome::Dropped | DeliveryOutcome::Corrupted => {
                            if matches!(outcome, DeliveryOutcome::Dropped) {
                                counts.dropped += 1;
                            } else {
                                counts.corrupted += 1;
                            }
                            let mut delivered = false;
                            for attempt in 0..plan.retry_budget() {
                                counts.retries += 1;
                                total_bits += bits;
                                round_bits += bits;
                                if plan.retry_delivers(seed, r as u64, src as u64, attempt as u64) {
                                    delivered = true;
                                    break;
                                }
                            }
                            if !delivered {
                                missing_messages += 1;
                                if short_at[receiver] != t {
                                    short_at[receiver] = t;
                                    insufficient_nodes += 1;
                                }
                                earliest_missing = earliest_missing.min(r);
                            }
                        }
                    }
                    max_round_bits = max_round_bits.max(round_bits);
                }
            }
            let cl = clean[t];
            let decided_round = if missing_messages > 0 {
                cl.decided_round.min(earliest_missing + 1)
            } else {
                cl.decided_round
            };
            emit(FaultedMultiRoundSummary {
                summary: MultiRoundSummary {
                    accepted: cl.accepted && missing_messages == 0,
                    rounds,
                    decided_round,
                    max_bits_per_round: max_round_bits,
                    total_bits,
                },
                insufficient_nodes,
                missing_messages,
                counts,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::stats;
    use rpls_graph::{generators, NodeId};

    /// The intro's spanning-tree-style toy: every node's label must equal
    /// its id written in 64 bits, and neighbors must carry ids that are
    /// actually adjacent values on the cycle — enough structure to exercise
    /// the compiler's honest and fooled paths.
    struct IdLabel;

    impl Pls for IdLabel {
        fn name(&self) -> String {
            "id-label".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            config
                .states()
                .iter()
                .map(|s| {
                    let mut w = BitWriter::new();
                    w.write_u64(s.id(), 64);
                    w.finish()
                })
                .collect()
        }
        fn verify(&self, view: &DetView<'_>) -> bool {
            let mut r = BitReader::new(view.label);
            let Ok(claimed) = r.read_u64(64) else {
                return false;
            };
            claimed == view.local.state.id()
                && view
                    .neighbor_labels
                    .iter()
                    .all(|l| BitReader::new(l).read_u64(64).is_ok())
        }
    }

    #[test]
    fn honest_run_always_accepts() {
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = scheme.label(&config);
        for seed in 0..50 {
            let rec = engine::run_randomized(&scheme, &config, &labeling, seed);
            assert!(rec.outcome.accepted(), "seed {seed}");
        }
    }

    #[test]
    fn certificates_are_logarithmic_in_kappa() {
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 3);
        let bits = rec.max_certificate_bits();
        // κ = 64, λ = 96, p ∈ (288, 576) → 2 * ⌈log₂ p⌉ ≤ 20.
        assert!(bits <= 20, "certificate bits = {bits}");
        assert_eq!(
            bits,
            CompiledRpls::<IdLabel>::certificate_bits_for_kappa(64)
        );
    }

    #[test]
    fn tampered_replica_detected_with_good_probability() {
        // Corrupt node 3's claimed copy of its port-0 neighbor's label.
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let mut labeling = scheme.label(&config);
        let (kappa, mut parts) = parse_replicated(labeling.get(NodeId::new(3))).unwrap();
        let flipped: BitString = parts[1]
            .iter()
            .enumerate()
            .map(|(i, b)| if i == 63 { !b } else { b })
            .collect();
        parts[1] = flipped;
        let refs: Vec<&BitString> = parts.iter().collect();
        labeling.set(NodeId::new(3), encode_replicated(kappa, &refs));

        let p = stats::acceptance_probability(&scheme, &config, &labeling, 1000, 17);
        // The corrupted edge check fails with probability > 2/3.
        assert!(p < 1.0 / 3.0 + 0.05, "acceptance = {p}");
    }

    #[test]
    fn malformed_labels_rejected_outright() {
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        // Garbage labels: too short to parse.
        let labeling = Labeling::new(vec![BitString::zeros(5); 5]);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0);
        assert!(!rec.outcome.accepted());
    }

    #[test]
    fn wrong_arity_labels_rejected() {
        // A replicated label with too few parts for the degree.
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        let inner = IdLabel.label(&config);
        let kappa = inner.max_bits();
        let labeling: Labeling = config
            .graph()
            .nodes()
            .map(|v| encode_replicated(kappa, &[inner.get(v)])) // no neighbors!
            .collect();
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0);
        assert!(!rec.outcome.accepted());
    }

    #[test]
    fn absurd_kappa_claims_do_not_materialise_tables() {
        // A label declaring κ ≈ 2³¹ induces a protocol prime around 6·10⁹;
        // preparing with a huge rounds hint must fall back to per-round
        // Horner (a table would be tens of gigabytes) and still agree with
        // the unprepared path.
        let config = Configuration::plain(generators::cycle(3));
        let scheme = CompiledRpls::new(IdLabel);
        let kappa = (1usize << 31) + 5;
        let part = BitString::zeros(8);
        let labeling: Labeling = config
            .graph()
            .nodes()
            .map(|_| encode_replicated(kappa, &[&part, &part, &part]))
            .collect();
        let prepared = Rpls::prepare(&scheme, &config, &labeling, usize::MAX);
        let mut scratch = crate::buffer::RoundScratch::new();
        let summary = engine::run_randomized_prepared_with(
            &*prepared,
            &config,
            1,
            crate::engine::StreamMode::EdgeIndependent,
            &mut scratch,
        );
        let rec = engine::run_randomized(&scheme, &config, &labeling, 1);
        assert_eq!(summary.accepted, rec.outcome.accepted());
        assert_eq!(scratch.votes(), rec.outcome.votes());
        assert_eq!(
            scratch.certificates().to_nested(config.port_base()),
            rec.certificates
        );
    }

    #[test]
    fn cached_preparation_shares_labels_and_matches_uncached() {
        let config = Configuration::plain(generators::cycle(9));
        let scheme = CompiledRpls::new(IdLabel);
        let honest = Rpls::label(&scheme, &config);
        let mut tampered = honest.clone();
        let flipped: BitString = tampered
            .get(NodeId::new(4))
            .iter()
            .enumerate()
            .map(|(i, b)| if i == 70 { !b } else { b })
            .collect();
        tampered.set(NodeId::new(4), flipped);

        let mut cache = PrepCache::new();
        let mut scratch = crate::buffer::RoundScratch::new();
        for labeling in [&honest, &tampered, &honest] {
            let cached = scheme.prepare_cached(&config, labeling, 64, &mut cache);
            let fresh = Rpls::prepare(&scheme, &config, labeling, 64);
            for seed in [1u64, 9, 33] {
                let a = engine::run_randomized_prepared_with(
                    &*cached,
                    &config,
                    seed,
                    crate::engine::StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                let cached_votes = scratch.votes().to_vec();
                let b = engine::run_randomized_prepared_with(
                    &*fresh,
                    &config,
                    seed,
                    crate::engine::StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                assert_eq!(a, b, "seed {seed}");
                assert_eq!(cached_votes, scratch.votes(), "seed {seed}");
            }
        }
        // Honest then tampered then honest again: the second honest pass
        // must be served almost entirely from the cache (9 shared labels
        // plus the one tampered variant).
        assert_eq!(cache.shared_labels(), 10);
        assert!(
            cache.hits() > cache.misses(),
            "sweep should be hit-dominated: {cache:?}"
        );
    }

    #[test]
    fn cache_key_budget_bounds_retention_without_changing_verdicts() {
        // Adversarial labelings carrying multi-megabit claimed copies,
        // distinct every round: retained key material would grow without
        // bound if the budget did not stop it. The big strings sit in a
        // wrong-arity replication, so they are parsed and cached (key
        // pressure) but never probed (their lazy tables never fill) — the
        // test stays fast while the budget is genuinely exercised.
        let config = Configuration::plain(generators::cycle(3));
        let scheme = CompiledRpls::new(IdLabel);
        let mut cache = PrepCache::new();
        let mut scratch = crate::buffer::RoundScratch::new();
        let big = 1usize << 22; // 4 Mbit per claimed copy
        let kappa = big;
        for round in 0..8u64 {
            let labeling: Labeling = (0..3u64)
                .map(|v| {
                    let own = {
                        let mut w = BitWriter::new();
                        w.write_u64(round * 3 + v, 64);
                        w.finish()
                    };
                    let junk = {
                        let mut w = BitWriter::new();
                        for i in 0..big / 64 {
                            w.write_u64(round ^ (v << 32) ^ i as u64, 64);
                        }
                        w.finish()
                    };
                    // Two parts where a degree-2 node needs three: every
                    // node rejects, on cached and uncached paths alike.
                    encode_replicated(kappa, &[&own, &junk])
                })
                .collect();
            let cached = scheme.prepare_cached(&config, &labeling, 4, &mut cache);
            let fresh = Rpls::prepare(&scheme, &config, &labeling, 4);
            let a = engine::run_randomized_prepared_with(
                &*cached,
                &config,
                round,
                crate::engine::StreamMode::EdgeIndependent,
                &mut scratch,
            );
            let b = engine::run_randomized_prepared_with(
                &*fresh,
                &config,
                round,
                crate::engine::StreamMode::EdgeIndependent,
                &mut scratch,
            );
            assert_eq!(a, b, "round {round}");
            assert!(!a.accepted);
            assert!(cache.retained_key_bits() <= PrepCache::KEY_BITS_BUDGET);
            assert!(cache.table_slots_reserved() <= PrepCache::TABLE_SLOT_BUDGET);
        }
        // 8 labelings × ~25 Mbit of distinct keys each (labels plus their
        // fingerprinted parts) far exceeds the 64 Mbit budget: the cache
        // must have turned epochs over rather than growing past the cap.
        assert!(cache.retained_key_bits() <= PrepCache::KEY_BITS_BUDGET);
        assert!(cache.epochs() > 0, "overflow must turn an epoch: {cache:?}");
    }

    #[test]
    fn cache_hit_upgrades_table_allowance_under_bigger_hint() {
        // A screening pass (tiny hint: no table pays off) followed by a
        // deep pass (Monte-Carlo hint) through the same cache: the shared
        // preparations must gain their table allowance on the hit, not be
        // stuck with the birth hint forever.
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        let honest = Rpls::label(&scheme, &config);
        let mut cache = PrepCache::new();
        let _screen = scheme.prepare_cached(&config, &honest, 1, &mut cache);
        assert_eq!(
            cache.table_slots_reserved(),
            0,
            "a 1-round hint must not reserve tables"
        );
        let _deep = scheme.prepare_cached(&config, &honest, 1 << 20, &mut cache);
        assert!(
            cache.table_slots_reserved() > 0,
            "the Monte-Carlo hint must upgrade the cached preparations"
        );
    }

    #[test]
    fn cache_entry_overhead_bounds_tiny_entry_floods() {
        // Floods of tiny distinct labels: the per-entry overhead charge
        // must cap the map at ~KEY_BITS_BUDGET / ENTRY_OVERHEAD_BITS
        // entries per epoch even though the raw key bits alone would
        // admit millions — and overflowing must turn epochs over, after
        // which sharing immediately recovers for fresh candidates.
        let config = Configuration::plain(generators::cycle(3));
        let scheme = CompiledRpls::new(IdLabel);
        let mut cache = PrepCache::new();
        let max_entries = (PrepCache::KEY_BITS_BUDGET / PrepCache::ENTRY_OVERHEAD_BITS) as usize;
        let tiny_labeling = |round: u64| -> Labeling {
            (0..3u64)
                .map(|v| {
                    let mut w = BitWriter::new();
                    w.write_u64(round * 3 + v, 26);
                    w.finish()
                })
                .collect()
        };
        let rounds = max_entries as u64 / 3 + 2000;
        for round in 0..rounds {
            let _ = scheme.prepare_cached(&config, &tiny_labeling(round), 4, &mut cache);
        }
        assert!(
            cache.shared_labels() + cache.shared_fingerprints() <= max_entries,
            "retained {} entries past the overhead bound {max_entries}",
            cache.shared_labels() + cache.shared_fingerprints()
        );
        assert!(cache.retained_key_bits() <= PrepCache::KEY_BITS_BUDGET);
        assert!(cache.epochs() > 0, "overflow must turn an epoch: {cache:?}");

        // Post-overflow amortisation: a candidate prepared again right
        // after landing in the current epoch is served entirely from it.
        let fresh = tiny_labeling(rounds + 7);
        let _ = scheme.prepare_cached(&config, &fresh, 4, &mut cache);
        let _ = scheme.prepare_cached(&config, &fresh, 4, &mut cache);
        let misses_before = cache.misses();
        let _ = scheme.prepare_cached(&config, &fresh, 4, &mut cache);
        assert_eq!(
            cache.misses(),
            misses_before,
            "repeat preparation after an epoch turnover must be all hits"
        );
    }

    #[test]
    fn multiround_honest_accepts_and_t1_matches_one_round() {
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = Rpls::label(&scheme, &config);
        let prepared = Rpls::prepare(&scheme, &config, &labeling, 32);
        let mut scratch = crate::buffer::RoundScratch::new();
        for seed in [0u64, 5, 99] {
            let one = engine::run_randomized_prepared_with(
                &*prepared,
                &config,
                seed,
                crate::engine::StreamMode::EdgeIndependent,
                &mut scratch,
            );
            for rounds in [1usize, 2, 4, 16, 1 << 40] {
                let multi = engine::run_multiround_prepared_with(
                    &*prepared,
                    &config,
                    seed,
                    rounds,
                    crate::engine::StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                assert!(multi.accepted, "seed {seed} rounds {rounds}");
                assert_eq!(multi.decided_round, rounds);
                if rounds == 1 {
                    assert_eq!(multi.max_bits_per_round, one.max_certificate_bits);
                    assert_eq!(multi.total_bits, one.total_certificate_bits);
                }
                // Chunked streaming: per-round messages fingerprint
                // shorter slices, so they can only shrink as t grows.
                assert!(multi.max_bits_per_round <= one.max_certificate_bits);
            }
        }
    }

    #[test]
    fn multiround_verdicts_match_one_round_for_any_t() {
        // Tamper one claimed replica: for every t the acceptance verdict
        // of a trial must equal the one-round verdict for that seed
        // (schedules re-time communication, never change verdicts), and
        // rejecting trials must be decided no later than round t.
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let mut labeling = Rpls::label(&scheme, &config);
        let (kappa, mut parts) = parse_replicated(labeling.get(NodeId::new(3))).unwrap();
        let flipped: BitString = parts[1]
            .iter()
            .enumerate()
            .map(|(i, b)| if i == 63 { !b } else { b })
            .collect();
        parts[1] = flipped;
        let refs: Vec<&BitString> = parts.iter().collect();
        labeling.set(NodeId::new(3), encode_replicated(kappa, &refs));

        let prepared = Rpls::prepare(&scheme, &config, &labeling, 64);
        let mut scratch = crate::buffer::RoundScratch::new();
        let mut rejected_somewhere = false;
        for rounds in [1usize, 2, 3, 8] {
            for seed in 0..64u64 {
                let one = engine::run_randomized_prepared_with(
                    &*prepared,
                    &config,
                    seed,
                    crate::engine::StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                let multi = engine::run_multiround_prepared_with(
                    &*prepared,
                    &config,
                    seed,
                    rounds,
                    crate::engine::StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                // Different t re-randomises the slice probes, so verdicts
                // across t values differ trial-by-trial — but t = 1 must
                // equal the one-round verdict exactly.
                if rounds == 1 {
                    assert_eq!(multi.accepted, one.accepted, "seed {seed}");
                }
                assert!(multi.decided_round >= 1 && multi.decided_round <= rounds);
                if !multi.accepted {
                    rejected_somewhere = true;
                }
            }
        }
        assert!(rejected_somewhere, "a tampered replica must be caught");
    }

    #[test]
    fn multiround_rejects_early_on_sliced_tampering() {
        // The flipped bit sits at position 63 of the first claimed copy:
        // inside the *second half* of the 128-bit length-prefixed string
        // (32 length bits + 96 label bits; bit 63 of the copy is bit 95 of
        // the string). At t = 2 the slices cover [0, 64) and [64, 128), so
        // every rejection must be decided in round 2 — round 1's slice is
        // identical on both sides — while parse-level garbage rejects in
        // round 1.
        let config = Configuration::plain(generators::cycle(7));
        let scheme = CompiledRpls::new(IdLabel);
        let mut labeling = Rpls::label(&scheme, &config);
        let (kappa, mut parts) = parse_replicated(labeling.get(NodeId::new(3))).unwrap();
        let flipped: BitString = parts[1]
            .iter()
            .enumerate()
            .map(|(i, b)| if i == 63 { !b } else { b })
            .collect();
        parts[1] = flipped;
        let refs: Vec<&BitString> = parts.iter().collect();
        labeling.set(NodeId::new(3), encode_replicated(kappa, &refs));
        let prepared = Rpls::prepare(&scheme, &config, &labeling, 64);
        let mut scratch = crate::buffer::RoundScratch::new();
        let mut rejects = 0usize;
        for seed in 0..200u64 {
            let multi = engine::run_multiround_prepared_with(
                &*prepared,
                &config,
                seed,
                2,
                crate::engine::StreamMode::EdgeIndependent,
                &mut scratch,
            );
            if !multi.accepted {
                rejects += 1;
                assert_eq!(
                    multi.decided_round, 2,
                    "seed {seed}: the mismatch lives in slice 2"
                );
            }
        }
        assert!(rejects > 100, "rejects = {rejects}");

        // Garbage labels fail the parse: decided in round 1 at any t.
        let garbage = Labeling::new(vec![BitString::zeros(5); 7]);
        let prepared = Rpls::prepare(&scheme, &config, &garbage, 4);
        let multi = engine::run_multiround_prepared_with(
            &*prepared,
            &config,
            0,
            8,
            crate::engine::StreamMode::EdgeIndependent,
            &mut scratch,
        );
        assert!(!multi.accepted);
        assert_eq!(multi.decided_round, 1);
    }

    #[test]
    fn multiround_per_round_bits_shrink_with_t() {
        // The per-round message fingerprints a ⌈λ/t⌉-bit slice, so its
        // width 2⌈log₂ p⌉ for p ∈ (3⌈λ/t⌉, 6⌈λ/t⌉) is non-increasing in t.
        let config = Configuration::plain(generators::cycle(5));
        let scheme = CompiledRpls::new(IdLabel);
        let labeling = Rpls::label(&scheme, &config);
        let prepared = Rpls::prepare(&scheme, &config, &labeling, 8);
        let mut scratch = crate::buffer::RoundScratch::new();
        let mut last = usize::MAX;
        for rounds in [1usize, 2, 4, 8, 16] {
            let multi = engine::run_multiround_prepared_with(
                &*prepared,
                &config,
                1,
                rounds,
                crate::engine::StreamMode::EdgeIndependent,
                &mut scratch,
            );
            assert!(
                multi.max_bits_per_round <= last,
                "t {rounds}: {} > {last}",
                multi.max_bits_per_round
            );
            last = multi.max_bits_per_round;
        }
        // λ = 96: t = 16 slices are 6 bits, p ∈ (18, 36) → ≤ 12-bit
        // messages vs 20 at t = 1.
        assert!(last < 16, "per-round bits must shrink: {last}");
    }

    #[test]
    fn replicated_roundtrip() {
        let a = BitString::from_bools([true, false, true]);
        let b = BitString::zeros(7);
        let enc = encode_replicated(9, &[&a, &b]);
        let (kappa, parts) = parse_replicated(&enc).unwrap();
        assert_eq!(kappa, 9);
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn oversized_part_rejected_by_parser() {
        // A part longer than the declared κ must be rejected.
        let a = BitString::zeros(10);
        let enc = encode_replicated(5, &[&a]);
        assert!(parse_replicated(&enc).is_none());
    }

    #[test]
    fn certificate_bits_grow_double_logarithmically() {
        // κ → 2⌈log₂(6(32+κ))⌉: doubling κ should add at most 2 bits.
        let b1 = CompiledRpls::<IdLabel>::certificate_bits_for_kappa(1 << 10);
        let b2 = CompiledRpls::<IdLabel>::certificate_bits_for_kappa(1 << 20);
        assert!(b2 - b1 <= 21, "{b1} -> {b2}");
        assert!(b1 <= 2 * 13);
    }
}
