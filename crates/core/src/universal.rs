//! The universal schemes: Lemma 3.3 and Corollary 3.4.
//!
//! **Lemma 3.3** (Appendix B): for any decidable predicate there is a
//! deterministic PLS whose label is a canonical representation `R` of the
//! whole configuration — `O(min(n², m log n) + nk)` bits. Every node checks
//! that (a) all neighbors hold the same `R`, (b) its own row of `R` matches
//! its actual local view (identity, state, degree, incident weights, and
//! the claimed neighbor identities), and (c) `R` satisfies the predicate.
//! If every node accepts, the actual configuration is isomorphic to `R`
//! (identities are unique), hence legal.
//!
//! **Corollary 3.4**: compiling this scheme with
//! [`CompiledRpls`] yields certificates of
//! `O(log n + log k)` bits for any predicate.
//!
//! Two encodings are implemented and the smaller is chosen per
//! configuration, mirroring the `min(n², m log n)` in the bound: an
//! adjacency *list* with `⌈log n⌉`-bit node indices (weighted graphs
//! supported, port-exact), and an adjacency *matrix* of `n²` bits
//! (unweighted only; certifies the structure up to port renumbering, which
//! suffices for the port-invariant predicates in this repository).

use crate::compiler::CompiledRpls;
use crate::labeling::Labeling;
use crate::scheme::{DetView, Pls, Predicate};
use crate::state::{Configuration, State};
use rpls_bits::{bits_for, id_width, BitReader, BitString, BitWriter};
use rpls_graph::{Graph, GraphBuilder, NodeId, Port};

/// Fixed width of the node-count field.
const N_BITS: u32 = 32;
/// Width of the width-descriptor fields in the header.
const WIDTH_BITS: u32 = 7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Encoding {
    List,
    Matrix,
}

struct Widths {
    id: u32,
    payload_len: u32,
    node: u32,
    weight: u32, // 0 = unweighted
}

fn widths_for(config: &Configuration) -> Widths {
    let id = config
        .states()
        .iter()
        .map(|s| bits_for(s.id()))
        .max()
        .unwrap_or(1);
    let payload_len = bits_for(
        config
            .states()
            .iter()
            .map(|s| s.payload().len() as u64)
            .max()
            .unwrap_or(0),
    );
    let node = id_width(config.node_count() as u64);
    let weight = if config.graph().is_weighted() {
        config
            .graph()
            .edges()
            .map(|(_, r)| bits_for(r.weight.expect("weighted")))
            .max()
            .unwrap_or(1)
    } else {
        0
    };
    Widths {
        id,
        payload_len,
        node,
        weight,
    }
}

fn write_header(w: &mut BitWriter, config: &Configuration, enc: Encoding, widths: &Widths) {
    w.write_bool(enc == Encoding::Matrix);
    w.write_u64(config.node_count() as u64, N_BITS);
    w.write_u64(u64::from(widths.id), WIDTH_BITS);
    w.write_u64(u64::from(widths.payload_len), WIDTH_BITS);
    w.write_u64(u64::from(widths.node), WIDTH_BITS);
    w.write_u64(u64::from(widths.weight), WIDTH_BITS);
    for s in config.states() {
        w.write_u64(s.id(), widths.id);
        w.write_u64(s.payload().len() as u64, widths.payload_len);
        w.write_bits(s.payload());
    }
}

/// Canonically encodes a configuration as the adjacency-list form.
fn encode_list(config: &Configuration) -> BitString {
    let widths = widths_for(config);
    let mut w = BitWriter::new();
    write_header(&mut w, config, Encoding::List, &widths);
    let g = config.graph();
    for v in g.nodes() {
        w.write_u64(g.degree(v) as u64, widths.node.max(1) + 1);
        for nb in g.neighbors(v) {
            w.write_u64(nb.node.index() as u64, widths.node);
            w.write_u64(nb.remote_port.rank() as u64, widths.node.max(1) + 1);
            if widths.weight > 0 {
                w.write_u64(nb.weight.expect("weighted"), widths.weight);
            }
        }
    }
    w.finish()
}

/// Canonically encodes a configuration as the adjacency-matrix form
/// (unweighted graphs only).
fn encode_matrix(config: &Configuration) -> Option<BitString> {
    if config.graph().is_weighted() {
        return None;
    }
    let widths = widths_for(config);
    let mut w = BitWriter::new();
    write_header(&mut w, config, Encoding::Matrix, &widths);
    let g = config.graph();
    let n = g.node_count();
    for u in 0..n {
        for v in 0..n {
            w.write_bool(u != v && g.are_adjacent(NodeId::new(u), NodeId::new(v)));
        }
    }
    Some(w.finish())
}

/// Encodes a configuration, choosing the smaller of the two encodings — the
/// `min(n², m log n)` of Lemma 3.3 in action.
#[must_use]
pub fn encode_configuration(config: &Configuration) -> BitString {
    let list = encode_list(config);
    match encode_matrix(config) {
        Some(matrix) if matrix.len() < list.len() => matrix,
        _ => list,
    }
}

/// Decodes a configuration. Returns `None` on any malformed input —
/// adversarial labels must never panic the verifier.
#[must_use]
pub fn decode_configuration(bits: &BitString) -> Option<Configuration> {
    let mut r = BitReader::new(bits);
    let matrix = r.read_bool().ok()?;
    let n = r.read_u64(N_BITS).ok()? as usize;
    if n == 0 || n > 1 << 24 {
        return None;
    }
    let w_id = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
    let w_pl = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
    let w_node = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
    let w_weight = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
    if w_id == 0 || w_id > 64 || w_pl > 64 || w_node == 0 || w_node > 32 || w_weight > 64 {
        return None;
    }
    // Capacity bounded by what the bits could possibly encode (each state
    // takes at least w_id ≥ 1 bits): an adversarial header claiming
    // n = 2²⁴ on a short label must not pre-allocate gigabytes.
    let mut states = Vec::with_capacity(n.min(r.remaining() + 1));
    for _ in 0..n {
        let id = r.read_u64(w_id).ok()?;
        let pl_len = if w_pl == 0 {
            0
        } else {
            r.read_u64(w_pl).ok()? as usize
        };
        let payload = r.read_bits(pl_len).ok()?;
        states.push(State::new(id, payload));
    }
    // Distinct ids required; Configuration::new would panic, so pre-check.
    {
        let mut ids: Vec<u64> = states.iter().map(State::id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != n {
            return None;
        }
    }
    let graph = if matrix {
        decode_matrix_graph(&mut r, n)?
    } else {
        decode_list_graph(&mut r, n, w_node, w_weight)?
    };
    if !r.is_exhausted() {
        return None;
    }
    Some(Configuration::new(graph, states))
}

fn decode_matrix_graph(r: &mut BitReader<'_>, n: usize) -> Option<Graph> {
    // Every capacity is clamped by what the remaining bits could encode
    // (each row takes n bits), so a huge claimed n cannot force a huge
    // allocation before the reads fail.
    let mut rows = Vec::with_capacity(n.min(r.remaining() / n.max(1) + 1));
    for _ in 0..n {
        let mut row = Vec::with_capacity(n.min(r.remaining() + 1));
        for _ in 0..n {
            row.push(r.read_bool().ok()?);
        }
        rows.push(row);
    }
    // Must be symmetric with empty diagonal.
    for (u, row) in rows.iter().enumerate() {
        if row[u] {
            return None;
        }
        for (v, &cell) in row.iter().enumerate() {
            if cell != rows[v][u] {
                return None;
            }
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, row) in rows.iter().enumerate() {
        for (v, &cell) in row.iter().enumerate().skip(u + 1) {
            if cell {
                b.add_edge(u, v).ok()?;
            }
        }
    }
    b.finish().ok()
}

fn decode_list_graph(r: &mut BitReader<'_>, n: usize, w_node: u32, w_weight: u32) -> Option<Graph> {
    let w_deg = w_node.max(1) + 1;
    // entries[v][p] = (neighbor, remote_port, weight); capacities clamped
    // by the remaining bits so a huge claimed n or degree cannot force a
    // huge allocation before the reads fail.
    let mut entries: Vec<Vec<(usize, usize, Option<u64>)>> =
        Vec::with_capacity(n.min(r.remaining() / w_deg as usize + 1));
    for _ in 0..n {
        let deg = r.read_u64(w_deg).ok()? as usize;
        if deg >= n {
            return None;
        }
        let mut row = Vec::with_capacity(deg.min(r.remaining() / w_node as usize + 1));
        for _ in 0..deg {
            let nb = r.read_u64(w_node).ok()? as usize;
            let rport = r.read_u64(w_deg).ok()? as usize;
            let weight = if w_weight > 0 {
                Some(r.read_u64(w_weight).ok()?)
            } else {
                None
            };
            if nb >= n {
                return None;
            }
            row.push((nb, rport, weight));
        }
        entries.push(row);
    }
    // Symmetry check: entry (v, p) -> (u, q, w) must be mirrored by
    // (u, q) -> (v, p, w).
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for (p, &(u, q, weight)) in entries[v].iter().enumerate() {
            let mirror = entries.get(u)?.get(q)?;
            if *mirror != (v, p, weight) {
                return None;
            }
            if v < u {
                b.add_edge_full(
                    NodeId::new(v),
                    NodeId::new(u),
                    Some((Port::from_rank(p), Port::from_rank(q))),
                    weight,
                )
                .ok()?;
            }
        }
    }
    b.finish().ok()
}

/// The Lemma 3.3 universal deterministic scheme for an arbitrary predicate.
///
/// # Examples
///
/// ```
/// use rpls_core::{UniversalPls, Configuration};
/// use rpls_core::scheme::{FnPredicate, Pls};
/// use rpls_graph::generators;
///
/// let scheme = UniversalPls::new(FnPredicate::new("is-cycle", |c: &Configuration| {
///     c.graph().nodes().all(|v| c.graph().degree(v) == 2)
/// }));
/// let config = Configuration::plain(generators::cycle(5));
/// let labels = scheme.label(&config);
/// assert!(labels.max_bits() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct UniversalPls<P> {
    predicate: P,
}

impl<P: Predicate> UniversalPls<P> {
    /// Builds the universal scheme for `predicate`.
    #[must_use]
    pub fn new(predicate: P) -> Self {
        Self { predicate }
    }

    /// The certified predicate.
    #[must_use]
    pub fn predicate(&self) -> &P {
        &self.predicate
    }
}

/// Splits a universal label into `(id, R)`.
fn parse_universal_label(label: &BitString) -> Option<(u64, BitString)> {
    let mut r = BitReader::new(label);
    let id = r.read_u64(64).ok()?;
    let rest = r.read_bits(r.remaining()).ok()?;
    Some((id, rest))
}

impl<P: Predicate> Pls for UniversalPls<P> {
    fn name(&self) -> String {
        format!("universal({})", self.predicate.name())
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let repr = encode_configuration(config);
        config
            .states()
            .iter()
            .map(|s| {
                let mut w = BitWriter::new();
                w.write_u64(s.id(), 64);
                w.write_bits(&repr);
                w.finish()
            })
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some((own_id, repr)) = parse_universal_label(view.label) else {
            return false;
        };
        if own_id != view.local.state.id() {
            return false;
        }
        // (a) All neighbors hold the same representation.
        let mut neighbor_ids = Vec::with_capacity(view.neighbor_labels.len());
        for l in &view.neighbor_labels {
            let Some((nid, nrepr)) = parse_universal_label(l) else {
                return false;
            };
            if nrepr != repr {
                return false;
            }
            neighbor_ids.push(nid);
        }
        // (b) Our row of R matches our actual local view.
        let Some(decoded) = decode_configuration(&repr) else {
            return false;
        };
        let Some(me) = decoded.node_with_id(own_id) else {
            return false;
        };
        if decoded.state(me).payload() != view.local.state.payload() {
            return false;
        }
        let g = decoded.graph();
        if g.degree(me) != view.local.degree() {
            return false;
        }
        let matrix_encoded = repr.bit(0) == Some(true);
        if matrix_encoded {
            // Ports are not represented: compare the neighbor id multiset
            // and require the graph unweighted.
            if view.local.incident_weights.iter().any(Option::is_some) {
                return false;
            }
            let mut claimed: Vec<u64> = g
                .neighbors(me)
                .map(|nb| decoded.state(nb.node).id())
                .collect();
            let mut actual = neighbor_ids.clone();
            claimed.sort_unstable();
            actual.sort_unstable();
            if claimed != actual {
                return false;
            }
        } else {
            // Port-exact check: neighbor on port p must have the claimed id
            // and the recorded weight.
            for (p, &nid) in neighbor_ids.iter().enumerate() {
                let Some(nb) = g.neighbor_by_port(me, Port::from_rank(p)) else {
                    return false;
                };
                if decoded.state(nb.node).id() != nid {
                    return false;
                }
                if nb.weight != view.local.incident_weights[p] {
                    return false;
                }
            }
        }
        // (c) The representation satisfies the predicate.
        self.predicate.holds(&decoded)
    }
}

/// The Corollary 3.4 universal randomized scheme: the compiled Lemma 3.3
/// scheme, exchanging `O(log n + log k)`-bit certificates.
pub type UniversalRpls<P> = CompiledRpls<UniversalPls<P>>;

/// Builds the universal randomized scheme for a predicate.
#[must_use]
pub fn universal_rpls<P: Predicate>(predicate: P) -> UniversalRpls<P> {
    CompiledRpls::new(UniversalPls::new(predicate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::scheme::FnPredicate;
    use crate::stats;
    use rpls_graph::generators;

    fn cycle_predicate() -> FnPredicate<impl Fn(&Configuration) -> bool> {
        FnPredicate::new("is-cycle", |c: &Configuration| {
            c.graph().nodes().all(|v| c.graph().degree(v) == 2)
                && rpls_graph::connectivity::is_connected(c.graph())
        })
    }

    #[test]
    fn encode_decode_round_trip_unweighted() {
        for g in [
            generators::cycle(6),
            generators::path(4),
            generators::wheel(7),
            generators::complete(5),
        ] {
            let c = Configuration::plain(g);
            let enc = encode_configuration(&c);
            let dec = decode_configuration(&enc).expect("decodes");
            assert_eq!(dec.node_count(), c.node_count());
            assert_eq!(dec.graph().sorted_edge_list(), c.graph().sorted_edge_list());
            for v in c.graph().nodes() {
                assert_eq!(dec.state(v).id(), c.state(v).id());
            }
        }
    }

    #[test]
    fn encode_decode_round_trip_weighted_preserves_ports() {
        let g = generators::cycle(5).with_weights(&[9, 1, 7, 3, 5]);
        let c = Configuration::plain(g);
        let enc = encode_configuration(&c);
        let dec = decode_configuration(&enc).expect("decodes");
        // Weighted graphs use the list encoding: port-exact.
        for v in c.graph().nodes() {
            for nb in c.graph().neighbors(v) {
                let dnb = dec.graph().neighbor_by_port(v, nb.port).unwrap();
                assert_eq!(dnb.node, nb.node);
                assert_eq!(dnb.weight, nb.weight);
                assert_eq!(dnb.remote_port, nb.remote_port);
            }
        }
    }

    #[test]
    fn dense_graphs_pick_matrix_encoding() {
        let c = Configuration::plain(generators::complete(40));
        let enc = encode_configuration(&c);
        assert_eq!(enc.bit(0), Some(true), "matrix tag expected");
        // Sparse graphs pick the list.
        let c = Configuration::plain(generators::path(40));
        let enc = encode_configuration(&c);
        assert_eq!(enc.bit(0), Some(false), "list tag expected");
    }

    #[test]
    fn universal_pls_accepts_legal_configurations() {
        let scheme = UniversalPls::new(cycle_predicate());
        for n in [3usize, 5, 9] {
            let c = Configuration::plain(generators::cycle(n));
            let labeling = scheme.label(&c);
            let out = engine::run_deterministic(&scheme, &c, &labeling);
            assert!(out.accepted(), "n = {n}");
        }
    }

    #[test]
    fn universal_pls_rejects_wrong_representation() {
        // Label a path with the representation of a cycle: nodes must spot
        // the degree mismatch.
        let scheme = UniversalPls::new(cycle_predicate());
        let cycle_conf = Configuration::plain(generators::cycle(5));
        let path_conf = Configuration::plain(generators::path(5));
        let forged = scheme.label(&cycle_conf);
        let out = engine::run_deterministic(&scheme, &path_conf, &forged);
        assert!(!out.accepted());
    }

    #[test]
    fn universal_pls_rejects_honest_encoding_of_illegal_config() {
        // Honestly encode an illegal configuration: the predicate check at
        // every node fails.
        let scheme = UniversalPls::new(cycle_predicate());
        let path_conf = Configuration::plain(generators::path(5));
        let labeling = scheme.label(&path_conf);
        let out = engine::run_deterministic(&scheme, &path_conf, &labeling);
        assert!(!out.accepted());
    }

    #[test]
    fn universal_rpls_accepts_legal_and_rejects_forgery() {
        let rpls = universal_rpls(cycle_predicate());
        let c = Configuration::plain(generators::cycle(6));
        let labeling = crate::scheme::Rpls::label(&rpls, &c);
        let rec = engine::run_randomized(&rpls, &c, &labeling, 5);
        assert!(rec.outcome.accepted());

        // Forge on an illegal instance by replaying the cycle labels.
        let path_conf = Configuration::plain(generators::path(6));
        let p = stats::acceptance_probability(&rpls, &path_conf, &labeling, 300, 1);
        assert!(p < 0.34, "forged acceptance = {p}");
    }

    #[test]
    fn universal_certificates_are_logarithmic() {
        let rpls = universal_rpls(cycle_predicate());
        let small = Configuration::plain(generators::cycle(8));
        let big = Configuration::plain(generators::cycle(64));
        let bits_small = {
            let l = crate::scheme::Rpls::label(&rpls, &small);
            engine::run_randomized(&rpls, &small, &l, 0).max_certificate_bits()
        };
        let bits_big = {
            let l = crate::scheme::Rpls::label(&rpls, &big);
            engine::run_randomized(&rpls, &big, &l, 0).max_certificate_bits()
        };
        // n grew 8×, labels grew ~64×; certificates by a few bits only.
        assert!(bits_big <= bits_small + 8, "{bits_small} -> {bits_big}");
    }

    #[test]
    fn decode_rejects_truncated_and_asymmetric_input() {
        let c = Configuration::plain(generators::cycle(4));
        let enc = encode_configuration(&c);
        assert!(decode_configuration(&enc.truncated(enc.len() - 3)).is_none());
        assert!(decode_configuration(&BitString::zeros(10)).is_none());
    }
}
