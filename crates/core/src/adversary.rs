//! Adversarial label forgers.
//!
//! Soundness quantifies over *every* label assignment, which no test can
//! enumerate in general. These forgers probe it from two directions:
//!
//! * [`exhaustive_forge`] really does enumerate all assignments up to a bit
//!   budget — feasible only for tiny instances, but then conclusive;
//! * [`random_forge`] / [`random_forge_rpls`] search with restarts and
//!   bit-flip hill climbing — never conclusive, but effective at finding
//!   the fooling assignments that *do* exist (e.g. for truncated schemes,
//!   where the lower-bound theorems predict forgeries).

use crate::engine;
use crate::labeling::Labeling;
use crate::scheme::{Pls, Rpls};
use crate::state::Configuration;
use crate::stats;
use rand::rngs::StdRng;
use rand::RngExt;
use rpls_bits::BitString;
use rpls_graph::NodeId;

/// Enumerates **all** label assignments in which every label has at most
/// `max_bits` bits, returning the first one the verifier accepts on
/// `config`, or `None` if none exists (a *proof* of soundness at this
/// budget).
///
/// The label space per node has `2^{max_bits+1} − 1` elements; the total
/// number of assignments is capped to keep runtimes sane.
///
/// # Panics
///
/// Panics if the total search space exceeds `2^22` assignments.
pub fn exhaustive_forge<S: Pls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    max_bits: usize,
) -> Option<Labeling> {
    let n = config.node_count();
    let per_node: u64 = (1u64 << (max_bits + 1)) - 1; // strings of len 0..=max_bits
    let total = (per_node as f64).powi(n as i32);
    assert!(
        total <= (1u64 << 22) as f64,
        "search space {total} too large for exhaustive forging"
    );

    // Enumerate strings of length 0..=max_bits in a canonical order.
    let strings: Vec<BitString> = (0..=max_bits)
        .flat_map(|len| {
            (0..(1u64 << len))
                .map(move |v| BitString::from_bools((0..len).rev().map(move |i| (v >> i) & 1 == 1)))
        })
        .collect();
    debug_assert_eq!(strings.len() as u64, per_node);

    let mut counters = vec![0usize; n];
    loop {
        let labeling: Labeling = counters.iter().map(|&c| strings[c].clone()).collect();
        if engine::run_deterministic(scheme, config, &labeling).accepted() {
            return Some(labeling);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return None;
            }
            counters[i] += 1;
            if counters[i] < strings.len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

/// Result of a randomized forging attempt.
#[derive(Debug, Clone)]
pub struct ForgeReport {
    /// The best labeling found.
    pub labeling: Labeling,
    /// Number of rejecting nodes under the best labeling (0 = forged).
    pub rejecting: usize,
}

impl ForgeReport {
    /// Whether the attack fully succeeded (all nodes accept).
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.rejecting == 0
    }
}

/// Randomized forging against a deterministic scheme: random restarts plus
/// single-bit hill climbing on the number of rejecting nodes.
pub fn random_forge<S: Pls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    label_bits: usize,
    restarts: usize,
    steps_per_restart: usize,
    rng: &mut StdRng,
) -> ForgeReport {
    let n = config.node_count();
    let mut best: Option<ForgeReport> = None;
    for _ in 0..restarts {
        let mut current: Labeling = (0..n).map(|_| random_bits(label_bits, rng)).collect();
        let mut current_rejecting = engine::run_deterministic(scheme, config, &current)
            .rejecting_nodes()
            .len();
        for _ in 0..steps_per_restart {
            if current_rejecting == 0 {
                break;
            }
            // Flip one random bit of one random node's label.
            let v = NodeId::new(rng.random_range(0..n));
            let mut candidate = current.clone();
            candidate.set(v, flip_random_bit(candidate.get(v), label_bits, rng));
            let rejecting = engine::run_deterministic(scheme, config, &candidate)
                .rejecting_nodes()
                .len();
            if rejecting <= current_rejecting {
                current = candidate;
                current_rejecting = rejecting;
            }
        }
        if best
            .as_ref()
            .is_none_or(|b| current_rejecting < b.rejecting)
        {
            best = Some(ForgeReport {
                labeling: current,
                rejecting: current_rejecting,
            });
        }
        if best.as_ref().is_some_and(ForgeReport::succeeded) {
            break;
        }
    }
    best.expect("at least one restart")
}

/// Result of a randomized forging attempt against an RPLS.
#[derive(Debug, Clone)]
pub struct RplsForgeReport {
    /// The best labeling found.
    pub labeling: Labeling,
    /// Estimated acceptance probability under the best labeling.
    pub acceptance: f64,
}

/// Randomized forging against a randomized scheme: the objective is the
/// estimated acceptance probability; success means exceeding `threshold`
/// (use `1/3` when attacking a two-sided scheme, `1/2` for one-sided).
///
/// The climb mutates one label bit per step, so consecutive candidates
/// share almost all their labels; every acceptance estimate runs through
/// one [`PrepCache`](crate::PrepCache) shared across the whole sweep, so
/// each candidate re-prepares only the labels the mutation touched instead
/// of paying a full preparation per forged labeling. Estimates are
/// bit-identical to the uncached path.
#[allow(clippy::too_many_arguments)]
pub fn random_forge_rpls<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    label_bits: usize,
    restarts: usize,
    steps_per_restart: usize,
    trials: usize,
    seed: u64,
    rng: &mut StdRng,
) -> RplsForgeReport {
    let n = config.node_count();
    let mut best: Option<RplsForgeReport> = None;
    // One scratch and one preparation cache for the whole climb: every
    // acceptance estimate reuses both.
    let mut scratch = crate::buffer::RoundScratch::new();
    let mut cache = crate::prep::PrepCache::new();
    for _ in 0..restarts {
        let mut current: Labeling = (0..n).map(|_| random_bits(label_bits, rng)).collect();
        let mut current_acc = stats::acceptance_probability_cached(
            scheme,
            config,
            &current,
            trials,
            seed,
            &mut scratch,
            &mut cache,
        );
        for _ in 0..steps_per_restart {
            if current_acc >= 1.0 {
                break;
            }
            let v = NodeId::new(rng.random_range(0..n));
            let mut candidate = current.clone();
            candidate.set(v, flip_random_bit(candidate.get(v), label_bits, rng));
            let acc = stats::acceptance_probability_cached(
                scheme,
                config,
                &candidate,
                trials,
                seed,
                &mut scratch,
                &mut cache,
            );
            if acc >= current_acc {
                current = candidate;
                current_acc = acc;
            }
        }
        if best.as_ref().is_none_or(|b| current_acc > b.acceptance) {
            best = Some(RplsForgeReport {
                labeling: current,
                acceptance: current_acc,
            });
        }
    }
    best.expect("at least one restart")
}

fn random_bits(len: usize, rng: &mut StdRng) -> BitString {
    BitString::from_bools((0..len).map(|_| rng.random_bool(0.5)))
}

fn flip_random_bit(label: &BitString, label_bits: usize, rng: &mut StdRng) -> BitString {
    if label.is_empty() {
        return random_bits(label_bits.max(1), rng);
    }
    let target = rng.random_range(0..label.len());
    label
        .iter()
        .enumerate()
        .map(|(i, b)| if i == target { !b } else { b })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::DetView;
    use rand::SeedableRng;
    use rpls_graph::generators;

    /// Accepts iff every label equals the node's id modulo 4, written in
    /// 2 bits — forgeable by construction, so the forgers must find it.
    struct IdMod4;

    impl Pls for IdMod4 {
        fn name(&self) -> String {
            "id-mod-4".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            config
                .states()
                .iter()
                .map(|s| {
                    let v = s.id() % 4;
                    BitString::from_bools([(v >> 1) & 1 == 1, v & 1 == 1])
                })
                .collect()
        }
        fn verify(&self, view: &DetView<'_>) -> bool {
            view.label.len() == 2 && view.label.leading_u64() == view.local.state.id() % 4
        }
    }

    /// Accepts nothing — unforgeable.
    struct RejectAll;

    impl Pls for RejectAll {
        fn name(&self) -> String {
            "reject-all".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn verify(&self, _view: &DetView<'_>) -> bool {
            false
        }
    }

    #[test]
    fn exhaustive_finds_the_unique_accepting_assignment() {
        let config = Configuration::plain(generators::path(3));
        let found = exhaustive_forge(&IdMod4, &config, 2).expect("forgeable");
        let honest = IdMod4.label(&config);
        assert_eq!(found, honest);
    }

    #[test]
    fn exhaustive_proves_unforgeability() {
        let config = Configuration::plain(generators::path(3));
        assert!(exhaustive_forge(&RejectAll, &config, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_rejects_oversized_spaces() {
        let config = Configuration::plain(generators::cycle(20));
        let _ = exhaustive_forge(&IdMod4, &config, 8);
    }

    #[test]
    fn random_forge_finds_easy_targets() {
        let config = Configuration::plain(generators::path(4));
        let mut rng = StdRng::seed_from_u64(1);
        let report = random_forge(&IdMod4, &config, 2, 50, 200, &mut rng);
        assert!(report.succeeded(), "rejecting = {}", report.rejecting);
    }

    #[test]
    fn random_forge_reports_failure_against_reject_all() {
        let config = Configuration::plain(generators::path(3));
        let mut rng = StdRng::seed_from_u64(2);
        let report = random_forge(&RejectAll, &config, 2, 5, 20, &mut rng);
        assert!(!report.succeeded());
        assert_eq!(report.rejecting, 3);
    }
}
