//! One-round synchronous execution of schemes.
//!
//! The model of §2.1 is a single round: every node sends one value to each
//! neighbor, receives one value from each, and outputs a boolean. The
//! engine simulates this exactly and deterministically:
//!
//! * deterministic schemes exchange labels ([`run_deterministic`]);
//! * randomized schemes generate one certificate per (node, port) from an
//!   **independent** random stream seeded by `(seed, node, port)` —
//!   edge-independence (Definition 4.5) holds by construction — and deliver
//!   each certificate to the far endpoint of its edge
//!   ([`run_randomized`]);
//! * [`run_randomized_shared`] deliberately reuses one stream per node
//!   across its ports, the violation mode used to probe the hypothesis of
//!   Proposition 4.6.

use crate::labeling::Labeling;
use crate::scheme::{CertView, DetView, LocalContext, Pls, RandView, Rpls};
use crate::state::Configuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls_bits::BitString;
use rpls_graph::{NodeId, Port};

/// The per-node votes of one verification round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    votes: Vec<bool>,
}

impl Outcome {
    /// Wraps raw per-node votes (used by the alternative execution modes,
    /// e.g. label-free local decision).
    #[must_use]
    pub fn from_votes(votes: Vec<bool>) -> Self {
        Self { votes }
    }

    /// Whether the round *accepts*: every node returned `true`.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.votes.iter().all(|&v| v)
    }

    /// The nodes that returned `false`.
    #[must_use]
    pub fn rejecting_nodes(&self) -> Vec<NodeId> {
        self.votes
            .iter()
            .enumerate()
            .filter(|(_, &v)| !v)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// The raw vote of each node.
    #[must_use]
    pub fn votes(&self) -> &[bool] {
        &self.votes
    }
}

/// A full randomized round: every generated certificate plus the votes.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// `certificates[v][p]` is the certificate node `v` generated for its
    /// port rank `p`.
    pub certificates: Vec<Vec<BitString>>,
    /// The verification outcome.
    pub outcome: Outcome,
}

impl RoundRecord {
    /// The largest certificate generated this round, in bits — one sample
    /// of the verification complexity of Definition 2.1.
    #[must_use]
    pub fn max_certificate_bits(&self) -> usize {
        self.certificates
            .iter()
            .flatten()
            .map(BitString::len)
            .max()
            .unwrap_or(0)
    }

    /// Total bits communicated this round, summed over every directed edge
    /// (the network-wide communication cost the paper's bandwidth
    /// motivation is about).
    #[must_use]
    pub fn total_certificate_bits(&self) -> usize {
        self.certificates
            .iter()
            .flatten()
            .map(BitString::len)
            .sum()
    }
}

/// Builds the strictly-local context of `node` within `config`.
#[must_use]
pub fn local_context(config: &Configuration, node: NodeId) -> LocalContext<'_> {
    LocalContext {
        node,
        state: config.state(node),
        incident_weights: config
            .graph()
            .neighbors(node)
            .map(|nb| nb.weight)
            .collect(),
    }
}

/// Runs a deterministic verification round: every node sees its own label
/// and its neighbors' labels, and votes.
pub fn run_deterministic<S: Pls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
) -> Outcome {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    let votes = config
        .graph()
        .nodes()
        .map(|v| {
            let neighbor_labels = config
                .graph()
                .neighbors(v)
                .map(|nb| labeling.get(nb.node))
                .collect();
            let view = DetView {
                local: local_context(config, v),
                label: labeling.get(v),
                neighbor_labels,
            };
            scheme.verify(&view)
        })
        .collect();
    Outcome { votes }
}

/// SplitMix64: a tiny, statistically solid mixer used to derive the
/// per-(node, port) stream seeds from the round seed. Public because the
/// lower-bound tooling derives its own streams the same way.
#[must_use]
pub fn mix_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a randomized verification round with edge-independent randomness:
/// node `v`'s certificate for port `p` is drawn from a stream seeded by
/// `(seed, v, p)`, independent across both nodes and ports.
pub fn run_randomized<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
) -> RoundRecord {
    run_randomized_inner(scheme, config, labeling, seed, false)
}

/// Like [`run_randomized`] but every node reuses **one** stream across all
/// its ports, sequentially — certificates of one node become correlated,
/// violating edge-independence (Definition 4.5). Exists to demonstrate that
/// the hypothesis of Proposition 4.6 is about the scheme, not the engine.
pub fn run_randomized_shared<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
) -> RoundRecord {
    run_randomized_inner(scheme, config, labeling, seed, true)
}

fn run_randomized_inner<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    shared_streams: bool,
) -> RoundRecord {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    let g = config.graph();

    // Phase 1: certificate generation.
    let certificates: Vec<Vec<BitString>> = g
        .nodes()
        .map(|v| {
            let view = CertView {
                local: local_context(config, v),
                label: labeling.get(v),
            };
            let mut node_rng = StdRng::seed_from_u64(mix_seed(seed, v.index() as u64, u64::MAX));
            (0..g.degree(v))
                .map(|p| {
                    let port = Port::from_rank(p);
                    if shared_streams {
                        scheme.certify(&view, port, &mut node_rng)
                    } else {
                        let mut rng = StdRng::seed_from_u64(mix_seed(
                            seed,
                            v.index() as u64,
                            p as u64,
                        ));
                        scheme.certify(&view, port, &mut rng)
                    }
                })
                .collect()
        })
        .collect();

    // Phase 2: delivery and verification. The certificate arriving at v on
    // port p is the one its neighbor generated for the far end of that edge.
    let votes = g
        .nodes()
        .map(|v| {
            let received: Vec<&BitString> = g
                .neighbors(v)
                .map(|nb| &certificates[nb.node.index()][nb.remote_port.rank()])
                .collect();
            let view = RandView {
                local: local_context(config, v),
                label: labeling.get(v),
                received,
            };
            scheme.verify(&view)
        })
        .collect();

    RoundRecord {
        certificates,
        outcome: Outcome { votes },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ErrorSides;
    use rpls_graph::generators;

    /// A scheme that accepts iff every neighbor's label equals its own —
    /// legal labelings are constant ones.
    struct AgreeOnLabel;

    impl Pls for AgreeOnLabel {
        fn name(&self) -> String {
            "agree".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::new(vec![
                BitString::from_bools([true, false]);
                config.node_count()
            ])
        }
        fn verify(&self, view: &DetView<'_>) -> bool {
            view.neighbor_labels.iter().all(|l| *l == view.label)
        }
    }

    #[test]
    fn deterministic_round_accepts_consistent_labels() {
        let config = Configuration::plain(generators::cycle(5));
        let labeling = AgreeOnLabel.label(&config);
        let out = run_deterministic(&AgreeOnLabel, &config, &labeling);
        assert!(out.accepted());
        assert!(out.rejecting_nodes().is_empty());
    }

    #[test]
    fn deterministic_round_flags_inconsistency() {
        let config = Configuration::plain(generators::cycle(5));
        let mut labeling = AgreeOnLabel.label(&config);
        labeling.set(NodeId::new(2), BitString::zeros(2));
        let out = run_deterministic(&AgreeOnLabel, &config, &labeling);
        assert!(!out.accepted());
        // Node 2's neighbors (1 and 3) reject; node 2 itself rejects too
        // since its neighbors now differ from it.
        let rejecting = out.rejecting_nodes();
        assert!(rejecting.contains(&NodeId::new(1)));
        assert!(rejecting.contains(&NodeId::new(3)));
    }

    /// A scheme whose certificate is one fresh random bit per port; verify
    /// accepts everything. Used to check stream independence.
    struct RandomBit;

    impl Rpls for RandomBit {
        fn name(&self) -> String {
            "random-bit".into()
        }
        fn error_sides(&self) -> ErrorSides {
            ErrorSides::TwoSided
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, _view: &CertView<'_>, _port: Port, rng: &mut StdRng) -> BitString {
            use rand::Rng;
            BitString::from_bools([(rng.next_u64() & 1) == 1])
        }
        fn verify(&self, _view: &RandView<'_>) -> bool {
            true
        }
    }

    #[test]
    fn randomized_round_is_reproducible() {
        let config = Configuration::plain(generators::cycle(6));
        let labeling = RandomBit.label(&config);
        let r1 = run_randomized(&RandomBit, &config, &labeling, 99);
        let r2 = run_randomized(&RandomBit, &config, &labeling, 99);
        assert_eq!(r1.certificates, r2.certificates);
        let r3 = run_randomized(&RandomBit, &config, &labeling, 100);
        assert_ne!(r1.certificates, r3.certificates);
    }

    #[test]
    fn per_port_streams_are_independent() {
        // Different (node, port) pairs should essentially never produce
        // identical long streams; spot-check by comparing the first bits
        // across many ports — they must not all coincide.
        let config = Configuration::plain(generators::complete(8));
        let labeling = RandomBit.label(&config);
        let rec = run_randomized(&RandomBit, &config, &labeling, 7);
        let bits: Vec<bool> = rec
            .certificates
            .iter()
            .flatten()
            .map(|c| c.bit(0).unwrap())
            .collect();
        let ones = bits.iter().filter(|&&b| b).count();
        assert!(ones > 10 && ones < bits.len() - 10, "ones = {ones}");
    }

    #[test]
    fn max_certificate_bits_reports_largest() {
        let config = Configuration::plain(generators::path(3));
        let labeling = RandomBit.label(&config);
        let rec = run_randomized(&RandomBit, &config, &labeling, 1);
        assert_eq!(rec.max_certificate_bits(), 1);
    }

    #[test]
    fn shared_mode_differs_from_independent_mode() {
        let config = Configuration::plain(generators::complete(6));
        let labeling = RandomBit.label(&config);
        let ind = run_randomized(&RandomBit, &config, &labeling, 5);
        let sh = run_randomized_shared(&RandomBit, &config, &labeling, 5);
        assert_ne!(ind.certificates, sh.certificates);
    }

    #[test]
    fn mix_seed_spreads_inputs() {
        let a = mix_seed(1, 0, 0);
        let b = mix_seed(1, 0, 1);
        let c = mix_seed(1, 1, 0);
        let d = mix_seed(2, 0, 0);
        let set: std::collections::HashSet<u64> = [a, b, c, d].into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
