//! One-round synchronous execution of schemes.
//!
//! The model of §2.1 is a single round: every node sends one value to each
//! neighbor, receives one value from each, and outputs a boolean. The
//! engine simulates this exactly and deterministically:
//!
//! * deterministic schemes exchange labels ([`run_deterministic`]);
//! * randomized schemes generate one certificate per (node, port) from an
//!   **independent** random stream keyed by `(seed, node, port)` —
//!   edge-independence (Definition 4.5) holds by construction — and deliver
//!   each certificate to the far endpoint of its edge
//!   ([`run_randomized`]);
//! * [`run_randomized_shared`] deliberately reuses one stream per node
//!   across its ports, the violation mode used to probe the hypothesis of
//!   Proposition 4.6.
//!
//! # Throughput
//!
//! Monte-Carlo estimation runs tens of thousands of rounds per data point,
//! so the round loop is built for reuse: certificates live in a flat
//! [`CertificateBuffer`](crate::buffer::CertificateBuffer) arena indexed by
//! the configuration's CSR port layout, per-port randomness comes from
//! counter-based [`PortRng`] streams (no per-stream key expansion),
//! and [`run_randomized_with`] executes a round against a caller-owned
//! [`RoundScratch`] without allocating after warm-up. [`run_randomized`]
//! is the convenience wrapper that additionally materialises a full
//! [`RoundRecord`]; both produce bit-identical certificates and votes for
//! the same seed.
//!
//! For many rounds against one labeling, [`Rpls::prepare`] hoists label
//! parsing and polynomial construction out of the loop entirely;
//! [`run_randomized_prepared_with`] then runs a round of the prepared
//! scheme — still bit-identical to the unprepared path, which the golden
//! tests pin. For many *trials* against one prepared labeling (the
//! Monte-Carlo regime), [`run_trials_batched_with`] hands the whole block
//! of per-trial seeds to [`PreparedRpls::run_trials`], letting schemes
//! batch trials node-at-a-time — the compiled schemes skip certificate
//! materialisation entirely — while emitting summaries bit-identical to
//! the scalar loop.
//!
//! # One dispatch surface
//!
//! The entry points above grew as axes were added (multiround × faulted ×
//! patterned × batched), and every combination spawned a `run_*` twin. The
//! redesigned surface folds the axes into one value: a [`RunSpec`] names
//! the job — `rounds`, `pattern`, `stream_mode`, optional `faults`, and a
//! [`SeedSource`] (private trial seed or GRAIL-style public beacon coins)
//! — and [`run`] / [`run_prepared`] / [`run_trials`] execute it, returning
//! uniform [`RunReport`]s. Every legacy `run_*` entry is a thin shim over
//! this dispatch (except the `DegradedSummary`-returning diagnostics
//! entries, which share its cores, and the multiround fault-overlay
//! family, which keeps its distinct `t = 1` semantics — see each entry's
//! docs), so the golden suites pin the new surface transitively.

use crate::buffer::{Received, RoundScratch};
use crate::fault::{
    DegradedSummary, DeliveryOutcome, FaultCounts, FaultPlan, FaultedMultiRoundSummary,
    FaultedRoundSummary, NodeVerdict,
};
use crate::labeling::Labeling;
use crate::rng::PortRng;
use crate::scheme::{DetView, LocalContext, Pls, PreparedRpls, Rpls, UnpreparedRpls};
use crate::state::Configuration;
use rpls_bits::BitString;
use rpls_graph::{NodeId, Port};

pub use crate::rng::mix_seed;

/// The per-node votes of one verification round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    votes: Vec<bool>,
}

impl Outcome {
    /// Wraps raw per-node votes (used by the alternative execution modes,
    /// e.g. label-free local decision).
    #[must_use]
    pub fn from_votes(votes: Vec<bool>) -> Self {
        Self { votes }
    }

    /// Whether the round *accepts*: every node returned `true`.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.votes.iter().all(|&v| v)
    }

    /// The nodes that returned `false`.
    #[must_use]
    pub fn rejecting_nodes(&self) -> Vec<NodeId> {
        self.votes
            .iter()
            .enumerate()
            .filter(|(_, &v)| !v)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// The raw vote of each node.
    #[must_use]
    pub fn votes(&self) -> &[bool] {
        &self.votes
    }
}

/// A full randomized round: every generated certificate plus the votes.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// `certificates[v][p]` is the certificate node `v` generated for its
    /// port rank `p`.
    pub certificates: Vec<Vec<BitString>>,
    /// The verification outcome.
    pub outcome: Outcome,
}

impl RoundRecord {
    /// The largest certificate generated this round, in bits — one sample
    /// of the verification complexity of Definition 2.1.
    #[must_use]
    pub fn max_certificate_bits(&self) -> usize {
        self.certificates
            .iter()
            .flatten()
            .map(BitString::len)
            .max()
            .unwrap_or(0)
    }

    /// Total bits communicated this round, summed over every directed edge
    /// (the network-wide communication cost the paper's bandwidth
    /// motivation is about).
    #[must_use]
    pub fn total_certificate_bits(&self) -> usize {
        self.certificates.iter().flatten().map(BitString::len).sum()
    }
}

/// The cheap, `Copy` summary of a round executed through
/// [`run_randomized_with`]: everything the Monte-Carlo estimators need
/// without materialising a [`RoundRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Whether every node voted `true`.
    pub accepted: bool,
    /// Largest certificate of the round, in bits (Definition 2.1).
    pub max_certificate_bits: usize,
    /// Total certificate bits over all directed edges.
    pub total_certificate_bits: usize,
}

/// The summary of a **t-round** verification schedule (the space–time
/// trade-off axis: a proof of size κ verified in `t` rounds with `O(κ/t)`
/// bits communicated per round per edge). Produced by
/// [`run_multiround_with`] / [`run_multiround_prepared_with`] and the
/// batched [`run_multiround_trials_batched_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiRoundSummary {
    /// Whether every node's accumulated verdict is `true` after all
    /// `rounds` rounds. The default certificate-splitting schedule only
    /// re-times communication, so this equals the one-round
    /// [`RoundSummary::accepted`] of the same trial seed for any `t`;
    /// schedules that re-randomise per round (the compiled
    /// chunked-fingerprint streaming) preserve perfect completeness and
    /// the soundness *bound* for every `t`, and are bit-identical to the
    /// one-round trial at `t = 1`.
    pub accepted: bool,
    /// The schedule length `t` this trial ran with.
    pub rounds: usize,
    /// The 1-based round at which the global verdict became known: the
    /// earliest round in which some node's accumulated verdict turned
    /// `false` (early rejection), or `rounds` for accepting trials (and
    /// for schedules, like the default certificate-splitting one, whose
    /// verifiers only vote once the last chunk has arrived).
    pub decided_round: usize,
    /// The largest number of bits any single directed edge carries in any
    /// single round — the per-round communication the trade-off shrinks as
    /// ≈ κ/t. At `t = 1` this equals
    /// [`RoundSummary::max_certificate_bits`].
    pub max_bits_per_round: usize,
    /// Total bits communicated over all directed edges and all rounds. At
    /// `t = 1` this equals [`RoundSummary::total_certificate_bits`].
    pub total_bits: usize,
}

impl MultiRoundSummary {
    /// The default **certificate-splitting** schedule, derived from a
    /// one-round summary: the one-round certificate of each directed edge
    /// is cut into `rounds` equal chunks (the last possibly short) and
    /// chunk `r` is delivered in round `r`; verifiers reassemble and vote
    /// after the last round. Verdicts and total bits are exactly the
    /// one-round ones; per-round communication is
    /// `⌈max_certificate_bits / rounds⌉` (ceiling division is monotone, so
    /// the per-edge maximum commutes with the split).
    #[must_use]
    pub fn from_split(summary: RoundSummary, rounds: usize) -> Self {
        assert!(rounds > 0, "a schedule needs at least one round");
        Self {
            accepted: summary.accepted,
            rounds,
            decided_round: rounds,
            max_bits_per_round: summary.max_certificate_bits.div_ceil(rounds),
            total_bits: summary.total_certificate_bits,
        }
    }
}

/// Seed-derivation tag of per-round streams beyond the first, chosen to
/// collide with neither the estimator tags in [`stats`](crate::stats) nor
/// any (node, port) mixing.
const TAG_MULTIROUND: u64 = 0x6D72_6F75_6E64; // "mround"

/// The stream seed of round `round` (0-based) within a multi-round trial
/// whose base seed is `seed`. Round 0 uses `seed` itself, so the `t = 1`
/// schedule consumes **exactly** the randomness of the one-round engine —
/// the bit-identity `tests/engine_golden.rs` pins; later rounds get
/// independently mixed seeds.
#[must_use]
pub fn multiround_seed(seed: u64, round: usize) -> u64 {
    if round == 0 {
        seed
    } else {
        mix_seed(seed, round as u64, TAG_MULTIROUND)
    }
}

/// How per-port random streams are keyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// One independent stream per (node, port) — Definition 4.5 holds.
    EdgeIndependent,
    /// One stream per node, consumed sequentially across its ports — the
    /// deliberate edge-independence violation of the Proposition 4.6
    /// probes.
    SharedPerNode,
}

/// How many **distinct** messages a node emits per round — the
/// Patt-Shamir–Perry axis ("Proof-Labeling Schemes: Broadcast, Unicast and
/// In Between"): between the broadcast model, where a node utters one
/// message heard by all neighbors, and the unicast model, where every port
/// carries its own message, lies a spectrum parameterised by the number of
/// distinct messages `k`, and the number of distinct messages is a resource
/// axis of its own with real verification-complexity consequences.
///
/// The engine realises the spectrum as a first-class parameter next to
/// [`StreamMode`]:
///
/// * [`MessagePattern::PerPort`] — today's implicit assumption: one
///   independently drawn message per port. The default everywhere; all
///   legacy entry points are thin wrappers over it, and the golden tests
///   pin it transcript-identical to the pre-pattern engine.
/// * [`MessagePattern::Broadcast`] — one message per node per round,
///   drawn from the node's single stream and shared across all its ports.
///   A one-round broadcast therefore *coincides* with what
///   [`StreamMode::SharedPerNode`] draws for port 0 — the broadcast
///   pattern subsumes the node-keyed stream machinery rather than
///   duplicating it — and ignores `StreamMode` (there is only one message,
///   so there is nothing to correlate).
/// * [`MessagePattern::Unicast`] — one distinct message per port, but the
///   random point `x` of a fingerprint message is a pure function of the
///   public round seed (Filtser–Fischer-style randomness sharing), so only
///   the evaluation `P(x)` needs the wire: compiled schemes charge half
///   the per-port message width. Transcripts are identical to `PerPort` —
///   the saving is accounting, the verdict path is untouched.
/// * [`MessagePattern::KMessages`] — `k` distinct messages interpolating
///   between the endpoints: port `p` carries slot `p mod k`'s message. At
///   `k ≥ degree` this is bit-identical to `PerPort` under
///   [`StreamMode::EdgeIndependent`].
///
/// Patterns re-time and re-share *messages*; they never change verdict
/// semantics: `PerPort` and `Unicast` are transcript-identical, and
/// `Broadcast`/`KMessages` deliver each slot's message on every port that
/// maps to the slot, so phase 2 (delivery + verification) is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessagePattern {
    /// One independent message per port (the classic RPLS model and the
    /// engine's historical implicit behaviour).
    PerPort,
    /// One message per node per round, shared across all its ports.
    Broadcast,
    /// One distinct message per port at half the wire cost for compiled
    /// fingerprint schemes (the random point rides the public round seed).
    Unicast,
    /// Exactly `k` distinct messages per node per round (clamped to
    /// `1..=degree`); port `p` carries slot `p mod k`.
    KMessages(usize),
}

impl MessagePattern {
    /// The number of distinct message slots a node of `degree` fills under
    /// this pattern: `degree` for per-port and unicast, 1 for broadcast,
    /// `k.clamp(1, degree)` for k-messages. A degree-0 node fills no slot
    /// under any pattern.
    #[must_use]
    pub fn slots(self, degree: usize) -> usize {
        if degree == 0 {
            return 0;
        }
        match self {
            Self::PerPort | Self::Unicast => degree,
            Self::Broadcast => 1,
            Self::KMessages(k) => k.clamp(1, degree),
        }
    }

    /// The message slot port rank `port` carries under this pattern at a
    /// node of `degree` (`port < degree` required): the port itself for
    /// per-port and unicast, slot 0 for broadcast, `port mod k` for
    /// k-messages.
    #[must_use]
    pub fn slot_of(self, degree: usize, port: usize) -> usize {
        match self {
            Self::PerPort | Self::Unicast => port,
            Self::Broadcast => 0,
            Self::KMessages(_) => port % self.slots(degree),
        }
    }
}

/// The per-round communication profile of a prepared scheme under one
/// [`MessagePattern`] — what [`PreparedRpls::pattern_cost`] reports and the
/// complexity triple in [`measure`](crate::measure) is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternCost {
    /// The largest number of distinct messages any node emits per round
    /// (`max_v slots(deg v)`): `Δ` for per-port/unicast, 1 for broadcast.
    pub messages: usize,
    /// The largest number of bits any single message carries in any round.
    pub max_bits_per_round: usize,
    /// Total bits on the wire over all nodes, slots, and rounds — each
    /// distinct message is counted **once** per round, which is exactly
    /// where broadcast and unicast beat per-port.
    pub total_bits: usize,
}

/// Where the base seed of a [`RunSpec`] comes from — the private-coin /
/// public-coin axis of the redesigned dispatch surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSource {
    /// An ordinary private trial seed: the caller picks (or derives) a
    /// 64-bit seed, exactly as every legacy entry point did.
    Trial(u64),
    /// GRAIL-style **public coins**: the seed is derived from a randomness
    /// beacon pulse via [`beacon_seed`](crate::rng::beacon_seed), so any
    /// third party holding `(round_id, value)` and a published transcript
    /// re-derives every certificate bit-for-bit. Verification itself is
    /// unchanged — the beacon only replaces where the seed comes from.
    Beacon {
        /// The beacon pulse's sequence number (e.g. a drand round).
        round_id: u64,
        /// The pulse's published 64-bit value.
        value: u64,
    },
}

impl SeedSource {
    /// The 64-bit engine base seed this source denotes.
    #[must_use]
    pub fn resolve(self) -> u64 {
        match self {
            Self::Trial(seed) => seed,
            Self::Beacon { round_id, value } => crate::rng::beacon_seed(round_id, value),
        }
    }
}

/// One verification job, fully specified — the single dispatch surface the
/// historical `run_*` twins collapse into. Every axis the engine grew over
/// the PRs is a field:
///
/// * `rounds` — the t-round space–time trade-off (1 = the paper's
///   one-round model);
/// * `pattern` — the broadcast/unicast/k-messages spectrum;
/// * `stream_mode` — edge-independent randomness or the deliberate
///   Proposition 4.6 violation mode;
/// * `faults` — an optional fault plan (lossy/corrupting channels,
///   crash-stop nodes);
/// * `seed_source` — private trial seed or public beacon coins.
///
/// Execute a spec with [`run`] (unprepared convenience), [`run_prepared`]
/// (against a prepared scheme) or [`run_trials`] (whole seed blocks, the
/// Monte-Carlo regime). **Semantics note:** with faults at `rounds = 1`
/// the spec runs the one-round fault model (single-shot delivery, no
/// retries — what [`run_trials_faulted_with`] always measured); with
/// faults at `rounds > 1` it runs the multiround overlay (chunked
/// schedule, retry budget). The legacy `run_multiround_*faulted*` entries
/// keep the overlay semantics at every `t`, including 1, and therefore
/// delegate to the scheme hooks directly rather than through a spec.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Schedule length `t` (must be ≥ 1; enforced at execution).
    pub rounds: usize,
    /// The message pattern certificates are shared under.
    pub pattern: MessagePattern,
    /// How per-port random streams are keyed.
    pub stream_mode: StreamMode,
    /// The fault environment, `None` for a clean network.
    pub faults: Option<FaultPlan>,
    /// Where the base seed comes from.
    pub seed_source: SeedSource,
}

impl RunSpec {
    /// A one-round, per-port, edge-independent, fault-free spec over
    /// `seed_source` — the defaults every legacy entry point implied.
    #[must_use]
    pub fn new(seed_source: SeedSource) -> Self {
        Self {
            rounds: 1,
            pattern: MessagePattern::PerPort,
            stream_mode: StreamMode::EdgeIndependent,
            faults: None,
            seed_source,
        }
    }

    /// A default spec over a private trial seed.
    #[must_use]
    pub fn trial(seed: u64) -> Self {
        Self::new(SeedSource::Trial(seed))
    }

    /// A default spec over public beacon coins (see [`SeedSource::Beacon`]).
    #[must_use]
    pub fn beacon(round_id: u64, value: u64) -> Self {
        Self::new(SeedSource::Beacon { round_id, value })
    }

    /// Sets the schedule length `t`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds > 0, "a schedule needs at least one round");
        self.rounds = rounds;
        self
    }

    /// Sets the message pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: MessagePattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the stream mode.
    #[must_use]
    pub fn with_stream_mode(mut self, mode: StreamMode) -> Self {
        self.stream_mode = mode;
        self
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The resolved 64-bit base seed of this spec.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed_source.resolve()
    }
}

/// The fault half of a [`RunReport`]: how much the plan actually degraded
/// the trial. Present iff the spec carried a fault plan — a transparent
/// plan still reports (all-zero) fault statistics, because the trial ran
/// through the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Nodes that were missing at least one incident message (and so voted
    /// a conservative reject).
    pub insufficient_nodes: usize,
    /// Messages that never arrived, over all rounds.
    pub missing_messages: usize,
    /// Fault events that fired.
    pub counts: FaultCounts,
}

/// The uniform result of executing one [`RunSpec`] trial — what every
/// summary type ([`RoundSummary`], [`MultiRoundSummary`],
/// [`FaultedRoundSummary`], [`FaultedMultiRoundSummary`]) projects into,
/// losslessly: the legacy shims convert back without information loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Whether every node's (accumulated) verdict is accept.
    pub accepted: bool,
    /// The schedule length the trial ran with (1 for one-round specs).
    pub rounds: usize,
    /// The 1-based round the global verdict became known in (see
    /// [`MultiRoundSummary::decided_round`]; always 1 for one-round specs).
    pub decided_round: usize,
    /// Largest bits any single directed edge carried in any single round.
    pub max_bits_per_round: usize,
    /// Total bits over all directed edges and rounds.
    pub total_bits: usize,
    /// Fault statistics, `Some` iff the spec carried a fault plan.
    pub fault: Option<FaultReport>,
}

impl RunReport {
    fn from_round(summary: RoundSummary) -> Self {
        Self {
            accepted: summary.accepted,
            rounds: 1,
            decided_round: 1,
            max_bits_per_round: summary.max_certificate_bits,
            total_bits: summary.total_certificate_bits,
            fault: None,
        }
    }

    fn from_multiround(summary: MultiRoundSummary) -> Self {
        Self {
            accepted: summary.accepted,
            rounds: summary.rounds,
            decided_round: summary.decided_round,
            max_bits_per_round: summary.max_bits_per_round,
            total_bits: summary.total_bits,
            fault: None,
        }
    }

    fn from_faulted_round(summary: FaultedRoundSummary) -> Self {
        Self {
            fault: Some(FaultReport {
                insufficient_nodes: summary.insufficient_nodes,
                missing_messages: summary.missing_messages,
                counts: summary.counts,
            }),
            ..Self::from_round(summary.summary)
        }
    }

    fn from_faulted_multiround(summary: FaultedMultiRoundSummary) -> Self {
        Self {
            fault: Some(FaultReport {
                insufficient_nodes: summary.insufficient_nodes,
                missing_messages: summary.missing_messages,
                counts: summary.counts,
            }),
            ..Self::from_multiround(summary.summary)
        }
    }

    /// This report viewed as a one-round summary. Exact for one-round
    /// specs (`rounds == 1`); for longer schedules the bits fields carry
    /// the per-round maximum and the all-rounds total.
    #[must_use]
    pub fn round_summary(&self) -> RoundSummary {
        RoundSummary {
            accepted: self.accepted,
            max_certificate_bits: self.max_bits_per_round,
            total_certificate_bits: self.total_bits,
        }
    }

    /// This report viewed as a t-round summary (exact at any `rounds`).
    #[must_use]
    pub fn multiround_summary(&self) -> MultiRoundSummary {
        MultiRoundSummary {
            accepted: self.accepted,
            rounds: self.rounds,
            decided_round: self.decided_round,
            max_bits_per_round: self.max_bits_per_round,
            total_bits: self.total_bits,
        }
    }

    /// This report viewed as a faulted one-round summary; a report without
    /// fault statistics converts as clean.
    #[must_use]
    pub fn faulted_round_summary(&self) -> FaultedRoundSummary {
        let fault = self.fault.unwrap_or_default();
        FaultedRoundSummary {
            summary: self.round_summary(),
            insufficient_nodes: fault.insufficient_nodes,
            missing_messages: fault.missing_messages,
            counts: fault.counts,
        }
    }

    /// This report viewed as a faulted t-round summary; a report without
    /// fault statistics converts as clean.
    #[must_use]
    pub fn faulted_multiround_summary(&self) -> FaultedMultiRoundSummary {
        let fault = self.fault.unwrap_or_default();
        FaultedMultiRoundSummary {
            summary: self.multiround_summary(),
            insufficient_nodes: fault.insufficient_nodes,
            missing_messages: fault.missing_messages,
            counts: fault.counts,
        }
    }
}

/// Executes one [`RunSpec`] trial of `scheme` against `labeling`,
/// preparing the labeling internally — the one-shot convenience the
/// service front uses. Callers running many trials should prepare once
/// ([`Rpls::prepare`] / [`Rpls::prepare_cached`]) and use [`run_prepared`]
/// or [`run_trials`].
///
/// # Panics
///
/// Panics if `spec.rounds` is 0 or `labeling` does not assign one label
/// per node.
pub fn run<S: Rpls + ?Sized>(
    spec: &RunSpec,
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
) -> RunReport {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    let prepared = scheme.prepare(config, labeling, 1);
    run_prepared(spec, &*prepared, config, &mut RoundScratch::new())
}

/// Executes one [`RunSpec`] trial of a **prepared** scheme — the dispatch
/// core every legacy scalar entry point is a shim over. The four-way
/// dispatch on `(faults, rounds)`:
///
/// * clean, `rounds == 1` — the scalar one-round core (after the call
///   `scratch.votes()` / `scratch.certificates()` hold the round, exactly
///   as [`run_randomized_prepared_with`] always promised);
/// * clean, `rounds > 1` — [`PreparedRpls::run_multiround`];
/// * faulted, `rounds == 1` — the one-round fault model (single-shot
///   delivery, no retries);
/// * faulted, `rounds > 1` — [`PreparedRpls::run_multiround_faulted`]
///   (the chunked overlay with the plan's retry budget).
///
/// # Panics
///
/// Panics if `spec.rounds` is 0.
pub fn run_prepared<P: PreparedRpls + ?Sized>(
    spec: &RunSpec,
    prepared: &P,
    config: &Configuration,
    scratch: &mut RoundScratch,
) -> RunReport {
    assert!(spec.rounds > 0, "a schedule needs at least one round");
    let seed = spec.seed();
    match (&spec.faults, spec.rounds) {
        (None, 1) => RunReport::from_round(clean_round_patterned(
            prepared,
            config,
            seed,
            spec.pattern,
            spec.stream_mode,
            scratch,
        )),
        (None, rounds) => RunReport::from_multiround(prepared.run_multiround(
            config,
            seed,
            rounds,
            spec.pattern,
            spec.stream_mode,
            scratch,
        )),
        (Some(plan), 1) => RunReport::from_faulted_round(
            faulted_round_patterned(
                prepared,
                config,
                seed,
                spec.pattern,
                plan,
                spec.stream_mode,
                scratch,
            )
            .compact(),
        ),
        (Some(plan), rounds) => {
            RunReport::from_faulted_multiround(prepared.run_multiround_faulted(
                config,
                seed,
                rounds,
                plan,
                spec.pattern,
                spec.stream_mode,
                scratch,
            ))
        }
    }
}

/// Runs one [`RunSpec`] trial per seed in `seeds` against a prepared
/// scheme, calling `emit` once per trial in seed order — the batched
/// dispatch core behind every Monte-Carlo estimator
/// ([`stats::estimate`](crate::stats::estimate) funnels here). Dispatches
/// to the same four scheme hooks as [`run_prepared`], so emitted reports
/// are bit-identical to calling it once per seed.
///
/// `spec.seed_source` is **not** consulted: the caller supplies the
/// explicit per-trial seed block (the estimators derive one from the
/// spec's base seed). Batched hooks may skip materialising certificates,
/// so no promise is made about `scratch` afterwards.
///
/// # Panics
///
/// Panics if `spec.rounds` is 0.
pub fn run_trials<P: PreparedRpls + ?Sized>(
    spec: &RunSpec,
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(RunReport),
) {
    assert!(spec.rounds > 0, "a schedule needs at least one round");
    match (&spec.faults, spec.rounds) {
        (None, 1) => prepared.run_trials(
            config,
            seeds,
            spec.pattern,
            spec.stream_mode,
            scratch,
            &mut |s| emit(RunReport::from_round(s)),
        ),
        (None, rounds) => prepared.run_multiround_trials(
            config,
            seeds,
            rounds,
            spec.pattern,
            spec.stream_mode,
            scratch,
            &mut |s| emit(RunReport::from_multiround(s)),
        ),
        (Some(plan), 1) => prepared.run_trials_faulted(
            config,
            seeds,
            plan,
            spec.pattern,
            spec.stream_mode,
            scratch,
            &mut |s| emit(RunReport::from_faulted_round(s)),
        ),
        (Some(plan), rounds) => prepared.run_multiround_trials_faulted(
            config,
            seeds,
            rounds,
            plan,
            spec.pattern,
            spec.stream_mode,
            scratch,
            &mut |s| emit(RunReport::from_faulted_multiround(s)),
        ),
    }
}

/// Builds the strictly-local context of `node` within `config` —
/// allocation-free, borrowing the configuration's precomputed port layout.
#[must_use]
pub fn local_context(config: &Configuration, node: NodeId) -> LocalContext<'_> {
    LocalContext {
        node,
        state: config.state(node),
        incident_weights: config.incident_weights(node),
    }
}

/// Runs a deterministic verification round: every node sees its own label
/// and its neighbors' labels, and votes.
pub fn run_deterministic<S: Pls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
) -> Outcome {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    let g = config.graph();
    let mut neighbor_labels: Vec<&BitString> = Vec::new();
    let votes = g
        .nodes()
        .map(|v| {
            neighbor_labels.clear();
            neighbor_labels.extend(g.neighbors(v).map(|nb| labeling.get(nb.node)));
            let view = DetView {
                local: local_context(config, v),
                label: labeling.get(v),
                neighbor_labels: std::mem::take(&mut neighbor_labels),
            };
            let vote = scheme.verify(&view);
            neighbor_labels = view.neighbor_labels;
            vote
        })
        .collect();
    Outcome { votes }
}

/// Runs a randomized verification round with edge-independent randomness:
/// node `v`'s certificate for port `p` is drawn from a stream keyed by
/// `(seed, v, p)`, independent across both nodes and ports.
pub fn run_randomized<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
) -> RoundRecord {
    record_round(scheme, config, labeling, seed, StreamMode::EdgeIndependent)
}

/// Like [`run_randomized`] but every node reuses **one** stream across all
/// its ports, sequentially — certificates of one node become correlated,
/// violating edge-independence (Definition 4.5). Exists to demonstrate that
/// the hypothesis of Proposition 4.6 is about the scheme, not the engine.
pub fn run_randomized_shared<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
) -> RoundRecord {
    record_round(scheme, config, labeling, seed, StreamMode::SharedPerNode)
}

fn record_round<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    mode: StreamMode,
) -> RoundRecord {
    let mut scratch = RoundScratch::new();
    run_randomized_with(scheme, config, labeling, seed, mode, &mut scratch);
    RoundRecord {
        certificates: scratch.buffer.to_nested(config.port_base()),
        outcome: Outcome {
            votes: scratch.votes.clone(),
        },
    }
}

/// Executes one randomized round against reusable scratch storage — the
/// hot path behind every Monte-Carlo estimator. Produces exactly the same
/// certificates and votes as [`run_randomized`] /
/// [`run_randomized_shared`] for the same seed, but performs no heap
/// allocation once the scratch buffers have grown to the workload's size.
///
/// After the call, `scratch.votes()` holds the per-node votes and
/// `scratch.certificates()` the round's certificate arena.
pub fn run_randomized_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> RoundSummary {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    // The unprepared adapter routes straight to the scheme's certify/verify
    // with statically dispatched views — no per-labeling precomputation, no
    // boxing. Estimators that run many rounds against one labeling should
    // call [`Rpls::prepare`] once and use
    // [`run_randomized_prepared_with`] instead.
    let unprepared = UnpreparedRpls {
        scheme,
        config,
        labeling,
    };
    run_randomized_prepared_with(&unprepared, config, seed, mode, scratch)
}

/// Executes one randomized round of a **prepared** scheme (see
/// [`Rpls::prepare`]) against reusable scratch storage. This is the round
/// loop every other entry point funnels into; with a prepared scheme the
/// per-(node, port) cost is whatever the preparation left behind — for
/// [`CompiledRpls`](crate::compiler::CompiledRpls), one random field
/// element plus one polynomial evaluation.
///
/// `prepared` must have been prepared for `config` (and the labeling the
/// caller wants) — transcripts are bit-identical to
/// [`run_randomized_with`] on the same inputs, which
/// `tests/engine_golden.rs` pins.
///
/// A shim over [`run_prepared`] with a one-round, per-port [`RunSpec`].
pub fn run_randomized_prepared_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> RoundSummary {
    run_prepared(
        &RunSpec::trial(seed).with_stream_mode(mode),
        prepared,
        config,
        scratch,
    )
    .round_summary()
}

/// The scalar one-round core: phase 1 (certificate generation in global
/// port order from mode-keyed streams) and phase 2 (involution delivery +
/// verification). Everything clean and one-round in the engine bottoms out
/// here; after the call `scratch.votes()` / `scratch.certificates()` hold
/// the round.
fn clean_round<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> RoundSummary {
    let g = config.graph();
    let RoundScratch { buffer, votes, tmp } = scratch;

    // Phase 1: certificate generation, in global port order.
    buffer.clear();
    for v in g.nodes() {
        let node_index = v.index() as u64;
        let degree = g.degree(v);
        match mode {
            StreamMode::EdgeIndependent => {
                for p in 0..degree {
                    let mut rng = PortRng::for_edge(seed, node_index, p as u64);
                    prepared.certify_into(v, Port::from_rank(p), &mut rng, tmp);
                    buffer.push(tmp);
                }
            }
            StreamMode::SharedPerNode => {
                let mut rng = PortRng::for_node(seed, node_index);
                for p in 0..degree {
                    prepared.certify_into(v, Port::from_rank(p), &mut rng, tmp);
                    buffer.push(tmp);
                }
            }
        }
    }

    // Phase 2: delivery and verification. The certificate arriving at v on
    // port p is the one its neighbor generated for the far end of that
    // edge; the configuration's delivery map has the routing precomputed.
    let delivery = config.delivery();
    let port_base = config.port_base();
    votes.clear();
    let mut accepted = true;
    for v in g.nodes() {
        let lo = port_base[v.index()] as usize;
        let hi = port_base[v.index() + 1] as usize;
        let received = Received::new(buffer, &delivery[lo..hi]);
        let vote = prepared.verify(v, &received);
        accepted &= vote;
        votes.push(vote);
    }

    RoundSummary {
        accepted,
        max_certificate_bits: buffer.max_bits(),
        total_certificate_bits: buffer.total_bits(),
    }
}

/// Phase 1 of a patterned round for the slot-sharing patterns
/// ([`MessagePattern::Broadcast`] / [`MessagePattern::KMessages`]): fills
/// the arena with one certificate per port, where port `p` of node `v`
/// carries the message of slot `slot_of(deg v, p)` — broadcast slots draw
/// from the node's single stream ([`PortRng::for_node`]), k-message slot
/// `s` from the edge stream of `(v, s)`. Every port of a slot regenerates
/// the slot's message from a fresh generator, so the copies are
/// bit-identical by construction. Returns `(max_bits, total_bits)` with
/// each distinct slot counted **once** — the pattern's wire accounting.
fn patterned_certificates<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    pattern: MessagePattern,
    buffer: &mut crate::buffer::CertificateBuffer,
    tmp: &mut BitString,
) -> (usize, usize) {
    let g = config.graph();
    let mut max_bits = 0usize;
    let mut total_bits = 0usize;
    buffer.clear();
    for v in g.nodes() {
        let node_index = v.index() as u64;
        let degree = g.degree(v);
        let slots = pattern.slots(degree);
        for p in 0..degree {
            let slot = pattern.slot_of(degree, p);
            let mut rng = match pattern {
                MessagePattern::Broadcast => PortRng::for_node(seed, node_index),
                _ => PortRng::for_edge(seed, node_index, slot as u64),
            };
            prepared.certify_into(v, Port::from_rank(slot), &mut rng, tmp);
            if p < slots {
                max_bits = max_bits.max(tmp.len());
                total_bits += tmp.len();
            }
            buffer.push(tmp);
        }
    }
    (max_bits, total_bits)
}

/// Executes one randomized round of `scheme` against `labeling` under an
/// explicit [`MessagePattern`] — the unprepared patterned entry point.
/// [`MessagePattern::PerPort`] is exactly [`run_randomized_with`].
#[allow(clippy::too_many_arguments)]
pub fn run_randomized_patterned_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    pattern: MessagePattern,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> RoundSummary {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    let unprepared = UnpreparedRpls {
        scheme,
        config,
        labeling,
    };
    run_randomized_prepared_patterned_with(&unprepared, config, seed, pattern, mode, scratch)
}

/// Executes one randomized round of a **prepared** scheme under an explicit
/// [`MessagePattern`] — the patterned scalar reference path every batched
/// pattern kernel must agree with.
///
/// * `PerPort` delegates verbatim to [`run_randomized_prepared_with`] —
///   bit-identical to the pre-pattern engine by construction.
/// * `Unicast` runs the same transcript as `PerPort` (the random point is
///   shared through the round seed, so the verdict path is untouched) and
///   only re-accounts bits via [`PreparedRpls::pattern_cost`] when the
///   scheme knows its wire cost.
/// * `Broadcast` / `KMessages` generate one message per slot (see
///   [`MessagePattern`]) and deliver each slot's message on every port
///   mapping to it; summaries count each distinct slot once, overridden by
///   [`PreparedRpls::pattern_cost`] when available so the scalar and
///   batched summaries agree by construction.
///
/// A shim over [`run_prepared`] with a one-round [`RunSpec`].
pub fn run_randomized_prepared_patterned_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    pattern: MessagePattern,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> RoundSummary {
    run_prepared(
        &RunSpec::trial(seed)
            .with_pattern(pattern)
            .with_stream_mode(mode),
        prepared,
        config,
        scratch,
    )
    .round_summary()
}

/// The scalar patterned one-round core (see
/// [`run_randomized_prepared_patterned_with`] for the per-pattern
/// semantics): the clean `rounds == 1` arm of [`run_prepared`]'s dispatch.
fn clean_round_patterned<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    pattern: MessagePattern,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> RoundSummary {
    match pattern {
        MessagePattern::PerPort => {
            return clean_round(prepared, config, seed, mode, scratch);
        }
        MessagePattern::Unicast => {
            let mut summary = clean_round(prepared, config, seed, mode, scratch);
            if let Some(cost) = prepared.pattern_cost(pattern, 1) {
                summary.max_certificate_bits = cost.max_bits_per_round;
                summary.total_certificate_bits = cost.total_bits;
            }
            return summary;
        }
        MessagePattern::Broadcast | MessagePattern::KMessages(_) => {}
    }
    let g = config.graph();
    let RoundScratch { buffer, votes, tmp } = scratch;
    let (max_bits, total_bits) =
        patterned_certificates(prepared, config, seed, pattern, buffer, tmp);

    // Phase 2 is the unchanged delivery + verification of the per-port
    // engine: patterns share messages across ports, they never change what
    // a port receives relative to what its slot generated.
    let delivery = config.delivery();
    let port_base = config.port_base();
    votes.clear();
    let mut accepted = true;
    for v in g.nodes() {
        let lo = port_base[v.index()] as usize;
        let hi = port_base[v.index() + 1] as usize;
        let received = Received::new(buffer, &delivery[lo..hi]);
        let vote = prepared.verify(v, &received);
        accepted &= vote;
        votes.push(vote);
    }

    let mut summary = RoundSummary {
        accepted,
        max_certificate_bits: max_bits,
        total_certificate_bits: total_bits,
    };
    if let Some(cost) = prepared.pattern_cost(pattern, 1) {
        summary.max_certificate_bits = cost.max_bits_per_round;
        summary.total_certificate_bits = cost.total_bits;
    }
    summary
}

/// Executes one randomized round of `scheme` against `labeling` under the
/// fault environment of `plan` — the unprepared faulted entry point,
/// mirroring [`run_randomized_with`]. Certificate *generation* is
/// unaffected by faults (nodes draw their randomness before the network
/// acts); only delivery is perturbed. See
/// [`run_randomized_prepared_faulted_with`] for the semantics.
pub fn run_randomized_faulted_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> DegradedSummary {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    let unprepared = UnpreparedRpls {
        scheme,
        config,
        labeling,
    };
    run_randomized_prepared_faulted_with(&unprepared, config, seed, plan, mode, scratch)
}

/// Executes one randomized round of a **prepared** scheme under the fault
/// environment of `plan` — the scalar reference semantics every faulted
/// engine path must agree with:
///
/// * Phase 1 (certificate generation) is exactly the fault-free
///   [`run_randomized_prepared_with`] phase — same streams, same bits.
/// * Phase 2 consults the plan once per directed edge: a message from a
///   crashed sender is never transmitted; a dropped or corrupted message
///   is transmitted but lost; a duplicated message arrives intact with its
///   bits counted twice.
/// * A node missing any incident message votes
///   [`NodeVerdict::InsufficientInput`] — a conservative reject — and its
///   verifier is not consulted; every other node votes its fault-free
///   verdict. Faults can therefore only flip accept → reject, preserving
///   the paper's one-sided soundness.
///
/// A transparent `plan` branches to the exact fault-free path, so its
/// summary (and the scratch contents) are bit-identical to
/// [`run_randomized_prepared_with`].
///
/// This entry keeps its rich [`DegradedSummary`] return (per-node verdicts
/// and missing-message counts, which the compact [`RunReport`] does not
/// carry) and therefore calls the faulted scalar core directly — the same
/// core [`run_prepared`]'s faulted one-round arm compacts.
pub fn run_randomized_prepared_faulted_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> DegradedSummary {
    faulted_round(prepared, config, seed, plan, mode, scratch)
}

/// The scalar faulted one-round core (see
/// [`run_randomized_prepared_faulted_with`] for the semantics): the
/// faulted `rounds == 1` arm of [`run_prepared`]'s dispatch bottoms out
/// here (via [`faulted_round_patterned`]).
fn faulted_round<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> DegradedSummary {
    if plan.is_transparent() {
        let summary = clean_round(prepared, config, seed, mode, scratch);
        return DegradedSummary::transparent(summary, scratch.votes());
    }

    let g = config.graph();
    let RoundScratch { buffer, votes, tmp } = scratch;

    // Phase 1: certificate generation, untouched by the fault layer.
    buffer.clear();
    for v in g.nodes() {
        let node_index = v.index() as u64;
        let degree = g.degree(v);
        match mode {
            StreamMode::EdgeIndependent => {
                for p in 0..degree {
                    let mut rng = PortRng::for_edge(seed, node_index, p as u64);
                    prepared.certify_into(v, Port::from_rank(p), &mut rng, tmp);
                    buffer.push(tmp);
                }
            }
            StreamMode::SharedPerNode => {
                let mut rng = PortRng::for_node(seed, node_index);
                for p in 0..degree {
                    prepared.certify_into(v, Port::from_rank(p), &mut rng, tmp);
                    buffer.push(tmp);
                }
            }
        }
    }

    faulted_verdicts(prepared, config, seed, plan, buffer, votes)
}

/// Executes one randomized round of `scheme` under `plan`'s faults with an
/// explicit [`MessagePattern`] — the unprepared patterned faulted entry
/// point, mirroring [`run_randomized_faulted_with`].
#[allow(clippy::too_many_arguments)]
pub fn run_randomized_faulted_patterned_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    pattern: MessagePattern,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> DegradedSummary {
    assert_eq!(
        labeling.len(),
        config.node_count(),
        "one label per node required"
    );
    let unprepared = UnpreparedRpls {
        scheme,
        config,
        labeling,
    };
    run_randomized_prepared_faulted_patterned_with(
        &unprepared,
        config,
        seed,
        pattern,
        plan,
        mode,
        scratch,
    )
}

/// Executes one randomized round of a **prepared** scheme under `plan`'s
/// faults with an explicit [`MessagePattern`] — the patterned faulted
/// scalar reference. `PerPort` and `Unicast` delegate verbatim to
/// [`run_randomized_prepared_faulted_with`]; the slot-sharing patterns run
/// the patterned phase 1 and the unchanged faulted delivery.
///
/// Note the deliberate accounting asymmetry: the fault layer models
/// point-to-point delivery, so its bit totals charge each directed link's
/// transmissions individually (a broadcast message crossing `d` links pays
/// `d` times) — pattern-shared accounting applies to the clean summaries
/// only.
///
/// Like [`run_randomized_prepared_faulted_with`], this entry keeps its
/// rich [`DegradedSummary`] return and calls the faulted patterned core
/// directly — the exact core [`run_prepared`]'s faulted one-round arm
/// compacts into a [`RunReport`].
#[allow(clippy::too_many_arguments)]
pub fn run_randomized_prepared_faulted_patterned_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    pattern: MessagePattern,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> DegradedSummary {
    faulted_round_patterned(prepared, config, seed, pattern, plan, mode, scratch)
}

/// The scalar faulted patterned one-round core (see
/// [`run_randomized_prepared_faulted_patterned_with`] for the semantics):
/// the faulted `rounds == 1` arm of [`run_prepared`]'s dispatch.
fn faulted_round_patterned<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    pattern: MessagePattern,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> DegradedSummary {
    match pattern {
        MessagePattern::PerPort | MessagePattern::Unicast => {
            return faulted_round(prepared, config, seed, plan, mode, scratch);
        }
        MessagePattern::Broadcast | MessagePattern::KMessages(_) => {}
    }
    if plan.is_transparent() {
        let summary = clean_round_patterned(prepared, config, seed, pattern, mode, scratch);
        return DegradedSummary::transparent(summary, scratch.votes());
    }
    let RoundScratch { buffer, votes, tmp } = scratch;
    let _ = patterned_certificates(prepared, config, seed, pattern, buffer, tmp);
    faulted_verdicts(prepared, config, seed, plan, buffer, votes)
}

/// The faulted phase 2 shared by the per-port and patterned scalar paths:
/// crash draws, per-link perturbed delivery over the filled certificate
/// arena, and conservative verdicts.
fn faulted_verdicts<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    plan: &FaultPlan,
    buffer: &crate::buffer::CertificateBuffer,
    votes: &mut Vec<bool>,
) -> DegradedSummary {
    let g = config.graph();
    // Crash draws: the one-round engine has a single round, round 0.
    let n = config.node_count();
    let mut counts = FaultCounts::default();
    let mut crashed = vec![false; n];
    for (v, down) in crashed.iter_mut().enumerate() {
        if plan.crash_hazard(seed, v as u64, 0) {
            *down = true;
            counts.crashed_nodes += 1;
        }
    }

    // Phase 2: faulted delivery. The message of each directed edge is
    // keyed by its *sender's* global port index; `delivery` being an
    // involution, walking receiver ports visits every edge exactly once.
    let delivery = config.delivery();
    let port_base = config.port_base();
    let port_owner = config.port_owner();
    let mut missing: Vec<u32> = vec![0; n];
    let mut max_bits = 0usize;
    let mut total_bits = 0usize;
    for (recv_port, &src) in delivery.iter().enumerate() {
        let src = src as usize;
        let receiver = port_owner[recv_port] as usize;
        let len = buffer.get(src).len();
        if crashed[port_owner[src] as usize] {
            missing[receiver] += 1;
            continue;
        }
        let outcome = plan.outcome(seed, 0, src as u64);
        total_bits += len * outcome.transmissions();
        max_bits = max_bits.max(len);
        match outcome {
            DeliveryOutcome::Intact => {}
            DeliveryOutcome::Duplicated => counts.duplicated += 1,
            DeliveryOutcome::Dropped => {
                counts.dropped += 1;
                missing[receiver] += 1;
            }
            DeliveryOutcome::Corrupted => {
                counts.corrupted += 1;
                missing[receiver] += 1;
            }
        }
    }

    // Verdicts: InsufficientInput dominates; intact nodes vote their
    // fault-free verdict over the unchanged certificate arena.
    votes.clear();
    let mut verdicts = Vec::with_capacity(n);
    let mut accepted = true;
    for v in g.nodes() {
        let verdict = if missing[v.index()] > 0 {
            NodeVerdict::InsufficientInput
        } else {
            let lo = port_base[v.index()] as usize;
            let hi = port_base[v.index() + 1] as usize;
            let received = Received::new(buffer, &delivery[lo..hi]);
            if prepared.verify(v, &received) {
                NodeVerdict::Accept
            } else {
                NodeVerdict::Reject
            }
        };
        accepted &= verdict.accepts();
        votes.push(verdict.accepts());
        verdicts.push(verdict);
    }

    DegradedSummary {
        summary: RoundSummary {
            accepted,
            max_certificate_bits: max_bits,
            total_certificate_bits: total_bits,
        },
        verdicts,
        missing,
        counts,
    }
}

/// Executes one **t-round** verification trial of `scheme` against
/// `labeling` — the space–time trade-off entry point. The labeling is
/// prepared internally for this single trial; callers running many trials
/// should [`Rpls::prepare`] (or [`Rpls::prepare_cached`]) once and use
/// [`run_multiround_prepared_with`] or the batched
/// [`run_multiround_trials_batched_with`] instead.
///
/// The schedule is the scheme's [`PreparedRpls::run_multiround`]: by
/// default the one-round certificates are split into `rounds` chunks
/// delivered one per round (per-round bits `⌈κ/t⌉`, verdict after the last
/// chunk); [`CompiledRpls`](crate::compiler::CompiledRpls) overrides it
/// with chunked fingerprint streaming (each round fingerprints the next
/// κ/t-bit slice of the inner label, with early rejection). The default
/// schedule's verdict is identical to the one-round engine for the same
/// seed at any `t` (it re-times the same trial); schedules that
/// re-randomise per round — the compiled streaming — preserve perfect
/// completeness and the soundness *bound* instead, so their `t > 1`
/// verdicts may differ per seed. Every schedule's `rounds = 1` case is
/// bit-identical to the one-round engine — summaries, estimates and
/// randomness consumption alike (`tests/engine_golden.rs` pins this).
///
/// # Panics
///
/// Panics if `rounds` is 0 or `labeling` does not assign one label per
/// node.
pub fn run_multiround_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    rounds: usize,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> MultiRoundSummary {
    let spec = RunSpec::trial(seed)
        .with_rounds(rounds)
        .with_stream_mode(mode);
    let prepared = scheme.prepare(config, labeling, 1);
    run_prepared(&spec, &*prepared, config, scratch).multiround_summary()
}

/// Executes one t-round trial of a **prepared** scheme (see
/// [`run_multiround_with`] for the schedule semantics). `prepared` must
/// have been prepared for `config`.
///
/// # Panics
///
/// Panics if `rounds` is 0.
pub fn run_multiround_prepared_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    rounds: usize,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> MultiRoundSummary {
    let spec = RunSpec::trial(seed)
        .with_rounds(rounds)
        .with_stream_mode(mode);
    run_prepared(&spec, prepared, config, scratch).multiround_summary()
}

/// Executes one **t-round** trial of `scheme` against `labeling` under an
/// explicit [`MessagePattern`] — the patterned twin of
/// [`run_multiround_with`].
///
/// # Panics
///
/// Panics if `rounds` is 0 or `labeling` does not assign one label per
/// node.
#[allow(clippy::too_many_arguments)]
pub fn run_multiround_patterned_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    rounds: usize,
    pattern: MessagePattern,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> MultiRoundSummary {
    let spec = RunSpec::trial(seed)
        .with_rounds(rounds)
        .with_pattern(pattern)
        .with_stream_mode(mode);
    let prepared = scheme.prepare(config, labeling, 1);
    run_prepared(&spec, &*prepared, config, scratch).multiround_summary()
}

/// Executes one t-round trial of a **prepared** scheme under an explicit
/// [`MessagePattern`] — the patterned twin of
/// [`run_multiround_prepared_with`].
///
/// # Panics
///
/// Panics if `rounds` is 0.
pub fn run_multiround_prepared_patterned_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seed: u64,
    rounds: usize,
    pattern: MessagePattern,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> MultiRoundSummary {
    let spec = RunSpec::trial(seed)
        .with_rounds(rounds)
        .with_pattern(pattern)
        .with_stream_mode(mode);
    run_prepared(&spec, prepared, config, scratch).multiround_summary()
}

/// Runs one t-round trial per seed in `seeds` against a prepared scheme,
/// calling `emit` once per trial in seed order — the multi-round twin of
/// [`run_trials_batched_with`], and what the multi-round estimators in
/// [`stats`](crate::stats) and [`measure`](crate::measure) funnel into.
///
/// Delegates to [`PreparedRpls::run_multiround_trials`]: the default rides
/// the (batched) one-round trial engine and re-times its summaries as the
/// certificate-splitting schedule, while
/// [`CompiledRpls`](crate::compiler::CompiledRpls) streams chunked
/// fingerprints with a labeling-static per-round plan. Emitted summaries
/// are bit-identical to running [`run_multiround_prepared_with`] once per
/// seed.
///
/// # Panics
///
/// Panics if `rounds` is 0.
pub fn run_multiround_trials_batched_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    rounds: usize,
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(MultiRoundSummary),
) {
    let spec = RunSpec::trial(0).with_rounds(rounds).with_stream_mode(mode);
    run_trials(&spec, prepared, config, seeds, scratch, &mut |r| {
        emit(r.multiround_summary());
    });
}

/// Runs one t-round trial per seed under an explicit [`MessagePattern`] —
/// the patterned twin of [`run_multiround_trials_batched_with`].
///
/// # Panics
///
/// Panics if `rounds` is 0.
#[allow(clippy::too_many_arguments)]
pub fn run_multiround_trials_batched_patterned_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    rounds: usize,
    pattern: MessagePattern,
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(MultiRoundSummary),
) {
    let spec = RunSpec::trial(0)
        .with_rounds(rounds)
        .with_pattern(pattern)
        .with_stream_mode(mode);
    run_trials(&spec, prepared, config, seeds, scratch, &mut |r| {
        emit(r.multiround_summary());
    });
}

/// Executes one faulted t-round trial of `scheme` against `labeling` — the
/// faulted twin of [`run_multiround_with`]. Delegates to
/// [`PreparedRpls::run_multiround_faulted`]: the default overlays the
/// fault schedule (with the plan's retry budget) on the
/// certificate-splitting schedule; the compiled streaming schemes overlay
/// it on their per-round chunked-fingerprint message set.
///
/// The `run_multiround_*faulted*` family keeps the **overlay** semantics
/// at every `t`, including `t = 1` (retry budget active), and therefore
/// delegates to the scheme hook directly; a faulted [`RunSpec`] at
/// `rounds = 1` instead runs the one-round single-shot fault model. At
/// `rounds > 1` the two surfaces call the identical hook.
///
/// # Panics
///
/// Panics if `rounds` is 0 or `labeling` does not assign one label per
/// node.
#[allow(clippy::too_many_arguments)]
pub fn run_multiround_faulted_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    rounds: usize,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> FaultedMultiRoundSummary {
    assert!(rounds > 0, "a schedule needs at least one round");
    let prepared = scheme.prepare(config, labeling, 1);
    prepared.run_multiround_faulted(
        config,
        seed,
        rounds,
        plan,
        MessagePattern::PerPort,
        mode,
        scratch,
    )
}

/// Executes one faulted t-round trial of `scheme` against `labeling` under
/// an explicit [`MessagePattern`] — the patterned twin of
/// [`run_multiround_faulted_with`].
///
/// # Panics
///
/// Panics if `rounds` is 0 or `labeling` does not assign one label per
/// node.
#[allow(clippy::too_many_arguments)]
pub fn run_multiround_faulted_patterned_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    seed: u64,
    rounds: usize,
    pattern: MessagePattern,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
) -> FaultedMultiRoundSummary {
    assert!(rounds > 0, "a schedule needs at least one round");
    let prepared = scheme.prepare(config, labeling, 1);
    prepared.run_multiround_faulted(config, seed, rounds, plan, pattern, mode, scratch)
}

/// Runs one faulted t-round trial per seed against a prepared scheme — the
/// faulted twin of [`run_multiround_trials_batched_with`]. A transparent
/// plan emits summaries bit-identical (wrapped clean) to the fault-free
/// trial engine. Like the scalar [`run_multiround_faulted_with`], this
/// keeps overlay semantics at every `t` (including 1) and delegates to the
/// scheme hook directly rather than through a [`RunSpec`].
///
/// # Panics
///
/// Panics if `rounds` is 0.
#[allow(clippy::too_many_arguments)]
pub fn run_multiround_trials_faulted_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    rounds: usize,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(FaultedMultiRoundSummary),
) {
    assert!(rounds > 0, "a schedule needs at least one round");
    prepared.run_multiround_trials_faulted(
        config,
        seeds,
        rounds,
        plan,
        MessagePattern::PerPort,
        mode,
        scratch,
        emit,
    );
}

/// Runs one faulted t-round trial per seed under an explicit
/// [`MessagePattern`] — the patterned twin of
/// [`run_multiround_trials_faulted_with`].
///
/// # Panics
///
/// Panics if `rounds` is 0.
#[allow(clippy::too_many_arguments)]
pub fn run_multiround_trials_faulted_patterned_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    rounds: usize,
    pattern: MessagePattern,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(FaultedMultiRoundSummary),
) {
    assert!(rounds > 0, "a schedule needs at least one round");
    prepared
        .run_multiround_trials_faulted(config, seeds, rounds, plan, pattern, mode, scratch, emit);
}

/// Overlays the fault schedule of `plan` on the **certificate-splitting**
/// multiround schedule of a trial whose fault-free one-round summary is
/// `clean` and whose certificates sit in `scratch.buffer` — the default
/// [`PreparedRpls::run_multiround_trials_faulted`] core.
///
/// The split schedule cuts the `L`-bit certificate of each directed edge
/// into `rounds` chunks (sizes `⌈L/rounds⌉` then `⌊L/rounds⌋`); zero-bit
/// chunks carry no message and draw no fault word, so the loop is bounded
/// by certificate bits even at `rounds = usize::MAX`. A chunk that fails
/// delivery (dropped or corrupted) is re-sent within its round up to the
/// plan's retry budget, each attempt paying the chunk's bits again;
/// senders crash-stop at their first firing hazard and crashed senders
/// never retry. A receiver still missing a chunk after retries rejects
/// (insufficient input) at the end of that round, which is what
/// `decided_round` reports.
pub(crate) fn overlay_split_faults(
    config: &Configuration,
    seed: u64,
    rounds: usize,
    plan: &FaultPlan,
    scratch: &RoundScratch,
    clean: RoundSummary,
) -> FaultedMultiRoundSummary {
    let n = config.node_count();
    let buffer = scratch.certificates();
    let delivery = config.delivery();
    let port_owner = config.port_owner();

    // Message-bearing rounds per edge: ⌈L/rounds⌉-then-⌊L/rounds⌋ chunks,
    // of which exactly min(rounds, L) are non-empty.
    let msgs_of = |len: usize| if len == 0 { 0 } else { rounds.min(len) };
    let max_msgs = (0..delivery.len())
        .map(|p| msgs_of(buffer.get(p).len()))
        .max()
        .unwrap_or(0);

    // Crash rounds, drawn only while messages are still outstanding.
    let mut counts = FaultCounts::default();
    let mut crash_round: Vec<usize> = vec![usize::MAX; n];
    for (v, cr) in crash_round.iter_mut().enumerate() {
        for r in 0..max_msgs {
            if plan.crash_hazard(seed, v as u64, r as u64) {
                *cr = r;
                counts.crashed_nodes += 1;
                break;
            }
        }
    }

    let mut missing: Vec<u32> = vec![0; n];
    let mut earliest_missing = usize::MAX;
    let mut max_round_bits = 0usize;
    let mut total_bits = 0usize;
    for (recv_port, &src) in delivery.iter().enumerate() {
        let src = src as usize;
        let receiver = port_owner[recv_port] as usize;
        let sender = port_owner[src] as usize;
        let len = buffer.get(src).len();
        let msgs = msgs_of(len);
        let (q, rem) = if msgs == 0 {
            (0, 0)
        } else {
            (len / rounds, len % rounds)
        };
        for r in 0..msgs {
            if r >= crash_round[sender] {
                // Crash-stop: every remaining chunk of this edge is lost
                // without being transmitted.
                missing[receiver] += (msgs - r) as u32;
                earliest_missing = earliest_missing.min(r);
                break;
            }
            let bits = q + usize::from(r < rem);
            let outcome = plan.outcome(seed, r as u64, src as u64);
            total_bits += bits * outcome.transmissions();
            let mut round_bits = bits * outcome.transmissions();
            match outcome {
                DeliveryOutcome::Intact => {}
                DeliveryOutcome::Duplicated => counts.duplicated += 1,
                DeliveryOutcome::Dropped | DeliveryOutcome::Corrupted => {
                    if matches!(outcome, DeliveryOutcome::Dropped) {
                        counts.dropped += 1;
                    } else {
                        counts.corrupted += 1;
                    }
                    let mut delivered = false;
                    for attempt in 0..plan.retry_budget() {
                        counts.retries += 1;
                        total_bits += bits;
                        round_bits += bits;
                        if plan.retry_delivers(seed, r as u64, src as u64, attempt as u64) {
                            delivered = true;
                            break;
                        }
                    }
                    if !delivered {
                        missing[receiver] += 1;
                        earliest_missing = earliest_missing.min(r);
                    }
                }
            }
            max_round_bits = max_round_bits.max(round_bits);
        }
    }

    let missing_messages: usize = missing.iter().map(|&m| m as usize).sum();
    let insufficient_nodes = missing.iter().filter(|&&m| m > 0).count();
    let decided_round = if missing_messages > 0 {
        // The first receiver to come up short rejects at the end of that
        // round; the split schedule itself only decides after the last.
        rounds.min(earliest_missing + 1)
    } else {
        rounds
    };
    FaultedMultiRoundSummary {
        summary: MultiRoundSummary {
            accepted: clean.accepted && missing_messages == 0,
            rounds,
            decided_round,
            max_bits_per_round: max_round_bits,
            total_bits,
        },
        insufficient_nodes,
        missing_messages,
        counts,
    }
}

/// How many per-trial seeds the estimators hand to the batched engine at
/// once. Bounds estimator memory at O(chunk) for any trial count while
/// leaving whole-node batching intact — trials are independent, so chunked
/// and unchunked runs are bit-identical, and any chunk in the thousands
/// amortises the per-block plan walk to noise.
pub(crate) const TRIAL_CHUNK: usize = 8192;

/// Runs one verification round per seed in `seeds` against a prepared
/// scheme, calling `emit` once per trial (in seed order) with that round's
/// [`RoundSummary`] — the trial loop every Monte-Carlo estimator in
/// [`stats`](crate::stats) and [`measure`](crate::measure) funnels into.
///
/// This delegates to [`PreparedRpls::run_trials`], whose default is a
/// scalar loop over [`run_randomized_prepared_with`]; schemes with a
/// batched override (notably
/// [`CompiledRpls`](crate::compiler::CompiledRpls)) evaluate whole blocks
/// of trials node-at-a-time instead, with per-(node, port) setup hoisted
/// out of the inner loop. Either way the emitted summaries are
/// **bit-identical** to running the scalar prepared path once per seed —
/// `tests/engine_golden.rs` pins this — so estimates never depend on which
/// path executed.
///
/// Batched overrides may skip materialising certificates, so unlike the
/// single-round entry points this function makes no promise about the
/// contents of `scratch` afterwards; only the emitted summaries are
/// meaningful.
pub fn run_trials_batched_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(RoundSummary),
) {
    let spec = RunSpec::trial(0).with_stream_mode(mode);
    run_trials(&spec, prepared, config, seeds, scratch, &mut |r| {
        emit(r.round_summary());
    });
}

/// Runs one verification round per seed under an explicit
/// [`MessagePattern`] — the patterned twin of [`run_trials_batched_with`].
pub fn run_trials_batched_patterned_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    pattern: MessagePattern,
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(RoundSummary),
) {
    let spec = RunSpec::trial(0)
        .with_pattern(pattern)
        .with_stream_mode(mode);
    run_trials(&spec, prepared, config, seeds, scratch, &mut |r| {
        emit(r.round_summary());
    });
}

/// Runs one **faulted** verification round per seed against a prepared
/// scheme, calling `emit` once per trial in seed order — the faulted twin
/// of [`run_trials_batched_with`], and what
/// [`stats::acceptance_under_faults`](crate::stats::acceptance_under_faults)
/// funnels into.
///
/// Delegates to [`PreparedRpls::run_trials_faulted`], whose default is a
/// scalar loop over [`run_randomized_prepared_faulted_with`]; the compiled
/// schemes override it with the clean batched probe kernel plus a
/// per-trial fault scan over every directed edge (so an edge the batched
/// plan statically skipped still fails its trial when perturbed — a lost
/// message never silently counts as a passed probe). Either way the
/// emitted summaries agree with the scalar faulted reference path, and a
/// transparent plan emits summaries bit-identical (wrapped clean) to
/// [`run_trials_batched_with`].
pub fn run_trials_faulted_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(FaultedRoundSummary),
) {
    let spec = RunSpec::trial(0)
        .with_faults(plan.clone())
        .with_stream_mode(mode);
    run_trials(&spec, prepared, config, seeds, scratch, &mut |r| {
        emit(r.faulted_round_summary());
    });
}

/// Runs one faulted verification round per seed under an explicit
/// [`MessagePattern`] — the patterned twin of [`run_trials_faulted_with`].
#[allow(clippy::too_many_arguments)]
pub fn run_trials_faulted_patterned_with<P: PreparedRpls + ?Sized>(
    prepared: &P,
    config: &Configuration,
    seeds: &[u64],
    pattern: MessagePattern,
    plan: &FaultPlan,
    mode: StreamMode,
    scratch: &mut RoundScratch,
    emit: &mut dyn FnMut(FaultedRoundSummary),
) {
    let spec = RunSpec::trial(0)
        .with_pattern(pattern)
        .with_faults(plan.clone())
        .with_stream_mode(mode);
    run_trials(&spec, prepared, config, seeds, scratch, &mut |r| {
        emit(r.faulted_round_summary());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{CertView, ErrorSides, RandView};
    use rand::Rng;
    use rpls_graph::generators;

    /// A scheme that accepts iff every neighbor's label equals its own —
    /// legal labelings are constant ones.
    struct AgreeOnLabel;

    impl Pls for AgreeOnLabel {
        fn name(&self) -> String {
            "agree".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::new(vec![
                BitString::from_bools([true, false]);
                config.node_count()
            ])
        }
        fn verify(&self, view: &DetView<'_>) -> bool {
            view.neighbor_labels.iter().all(|l| *l == view.label)
        }
    }

    #[test]
    fn deterministic_round_accepts_consistent_labels() {
        let config = Configuration::plain(generators::cycle(5));
        let labeling = AgreeOnLabel.label(&config);
        let out = run_deterministic(&AgreeOnLabel, &config, &labeling);
        assert!(out.accepted());
        assert!(out.rejecting_nodes().is_empty());
    }

    #[test]
    fn deterministic_round_flags_inconsistency() {
        let config = Configuration::plain(generators::cycle(5));
        let mut labeling = AgreeOnLabel.label(&config);
        labeling.set(NodeId::new(2), BitString::zeros(2));
        let out = run_deterministic(&AgreeOnLabel, &config, &labeling);
        assert!(!out.accepted());
        // Node 2's neighbors (1 and 3) reject; node 2 itself rejects too
        // since its neighbors now differ from it.
        let rejecting = out.rejecting_nodes();
        assert!(rejecting.contains(&NodeId::new(1)));
        assert!(rejecting.contains(&NodeId::new(3)));
    }

    /// A scheme whose certificate is one fresh random bit per port; verify
    /// accepts everything. Used to check stream independence.
    struct RandomBit;

    impl Rpls for RandomBit {
        fn name(&self) -> String {
            "random-bit".into()
        }
        fn error_sides(&self) -> ErrorSides {
            ErrorSides::TwoSided
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, _view: &CertView<'_>, _port: Port, rng: &mut dyn Rng) -> BitString {
            BitString::from_bools([(rng.next_u64() & 1) == 1])
        }
        fn verify(&self, _view: &RandView<'_>) -> bool {
            true
        }
    }

    #[test]
    fn randomized_round_is_reproducible() {
        let config = Configuration::plain(generators::cycle(6));
        let labeling = RandomBit.label(&config);
        let r1 = run_randomized(&RandomBit, &config, &labeling, 99);
        let r2 = run_randomized(&RandomBit, &config, &labeling, 99);
        assert_eq!(r1.certificates, r2.certificates);
        let r3 = run_randomized(&RandomBit, &config, &labeling, 100);
        assert_ne!(r1.certificates, r3.certificates);
    }

    #[test]
    fn per_port_streams_are_independent() {
        // Different (node, port) pairs should essentially never produce
        // identical long streams; spot-check by comparing the first bits
        // across many ports — they must not all coincide.
        let config = Configuration::plain(generators::complete(8));
        let labeling = RandomBit.label(&config);
        let rec = run_randomized(&RandomBit, &config, &labeling, 7);
        // Total read: a too-short certificate counts as a zero bit instead
        // of panicking (the "reject, never panic" contract applies to every
        // consumer of delivered certificates, tests included).
        let bits: Vec<bool> = rec
            .certificates
            .iter()
            .flatten()
            .map(|c| c.bit(0).unwrap_or(false))
            .collect();
        let ones = bits.iter().filter(|&&b| b).count();
        assert!(ones > 10 && ones < bits.len() - 10, "ones = {ones}");
    }

    #[test]
    fn max_certificate_bits_reports_largest() {
        let config = Configuration::plain(generators::path(3));
        let labeling = RandomBit.label(&config);
        let rec = run_randomized(&RandomBit, &config, &labeling, 1);
        assert_eq!(rec.max_certificate_bits(), 1);
    }

    #[test]
    fn shared_mode_differs_from_independent_mode() {
        let config = Configuration::plain(generators::complete(6));
        let labeling = RandomBit.label(&config);
        let ind = run_randomized(&RandomBit, &config, &labeling, 5);
        let sh = run_randomized_shared(&RandomBit, &config, &labeling, 5);
        assert_ne!(ind.certificates, sh.certificates);
    }

    #[test]
    fn mix_seed_spreads_inputs() {
        let a = mix_seed(1, 0, 0);
        let b = mix_seed(1, 0, 1);
        let c = mix_seed(1, 1, 0);
        let d = mix_seed(2, 0, 0);
        let set: std::collections::HashSet<u64> = [a, b, c, d].into_iter().collect();
        assert_eq!(set.len(), 4);
    }

    /// A scheme with variable-length certificates exercising the arena:
    /// port p of node v sends v's id in unary followed by p random bits.
    struct VariableLength;

    impl Rpls for VariableLength {
        fn name(&self) -> String {
            "variable-length".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, view: &CertView<'_>, port: Port, rng: &mut dyn Rng) -> BitString {
            let unary = view.local.state.id() as usize;
            let mut out = BitString::with_capacity(unary + port.rank());
            for _ in 0..unary {
                out.push(true);
            }
            for _ in 0..port.rank() {
                out.push(rng.next_u64() & 1 == 1);
            }
            out
        }
        fn verify(&self, view: &RandView<'_>) -> bool {
            // Every received certificate must start with the sender's
            // unary id — cross-checks arena routing end to end.
            view.local.incident_weights.len() == view.received.len()
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_record_path() {
        let config = Configuration::plain(generators::wheel(9));
        let labeling = VariableLength.label(&config);
        let mut scratch = RoundScratch::new();
        for seed in [0u64, 1, 7, 99, 12345] {
            for mode in [StreamMode::EdgeIndependent, StreamMode::SharedPerNode] {
                let summary = run_randomized_with(
                    &VariableLength,
                    &config,
                    &labeling,
                    seed,
                    mode,
                    &mut scratch,
                );
                let record = match mode {
                    StreamMode::EdgeIndependent => {
                        run_randomized(&VariableLength, &config, &labeling, seed)
                    }
                    StreamMode::SharedPerNode => {
                        run_randomized_shared(&VariableLength, &config, &labeling, seed)
                    }
                };
                assert_eq!(summary.accepted, record.outcome.accepted());
                assert_eq!(summary.max_certificate_bits, record.max_certificate_bits());
                assert_eq!(
                    summary.total_certificate_bits,
                    record.total_certificate_bits()
                );
                assert_eq!(scratch.votes(), record.outcome.votes());
                assert_eq!(
                    scratch.certificates().to_nested(config.port_base()),
                    record.certificates
                );
            }
        }
    }

    #[test]
    fn multiround_seed_keeps_round_zero_and_mixes_the_rest() {
        assert_eq!(multiround_seed(42, 0), 42);
        let later: std::collections::HashSet<u64> =
            (1..5).map(|r| multiround_seed(42, r)).collect();
        assert_eq!(later.len(), 4);
        assert!(!later.contains(&42));
        assert_ne!(multiround_seed(42, 1), multiround_seed(43, 1));
    }

    #[test]
    fn default_split_schedule_matches_one_round_verdicts() {
        let config = Configuration::plain(generators::wheel(9));
        let labeling = VariableLength.label(&config);
        let mut scratch = RoundScratch::new();
        for seed in [0u64, 7, 991] {
            let one = run_randomized_with(
                &VariableLength,
                &config,
                &labeling,
                seed,
                StreamMode::EdgeIndependent,
                &mut scratch,
            );
            for rounds in [1usize, 2, 3, 16, usize::MAX] {
                let multi = run_multiround_with(
                    &VariableLength,
                    &config,
                    &labeling,
                    seed,
                    rounds,
                    StreamMode::EdgeIndependent,
                    &mut scratch,
                );
                assert_eq!(multi.accepted, one.accepted);
                assert_eq!(multi.rounds, rounds);
                assert_eq!(multi.decided_round, rounds);
                assert_eq!(
                    multi.max_bits_per_round,
                    one.max_certificate_bits.div_ceil(rounds)
                );
                assert_eq!(multi.total_bits, one.total_certificate_bits);
            }
        }
    }

    #[test]
    fn multiround_batched_default_equals_scalar_per_seed() {
        let config = Configuration::plain(generators::wheel(7));
        let labeling = VariableLength.label(&config);
        let prepared = Rpls::prepare(&VariableLength, &config, &labeling, 8);
        let mut scratch = RoundScratch::new();
        let seeds: Vec<u64> = (0..8).collect();
        for rounds in [1usize, 4] {
            let mut batched = Vec::new();
            run_multiround_trials_batched_with(
                &*prepared,
                &config,
                &seeds,
                rounds,
                StreamMode::EdgeIndependent,
                &mut scratch,
                &mut |s| batched.push(s),
            );
            let scalar: Vec<MultiRoundSummary> = seeds
                .iter()
                .map(|&s| {
                    run_multiround_prepared_with(
                        &*prepared,
                        &config,
                        s,
                        rounds,
                        StreamMode::EdgeIndependent,
                        &mut scratch,
                    )
                })
                .collect();
            assert_eq!(batched, scalar, "rounds {rounds}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_round_schedule_is_rejected() {
        let config = Configuration::plain(generators::path(3));
        let labeling = RandomBit.label(&config);
        let mut scratch = RoundScratch::new();
        let _ = run_multiround_with(
            &RandomBit,
            &config,
            &labeling,
            0,
            0,
            StreamMode::EdgeIndependent,
            &mut scratch,
        );
    }

    #[test]
    fn run_spec_dispatch_matches_legacy_entry_points() {
        use crate::fault::FaultSpec;
        let config = Configuration::plain(generators::wheel(9));
        let labeling = VariableLength.label(&config);
        let prepared = Rpls::prepare(&VariableLength, &config, &labeling, 8);
        let mut scratch = RoundScratch::new();
        let seed = 0xABCD;
        let mode = StreamMode::EdgeIndependent;

        // Clean one-round.
        let report = run_prepared(&RunSpec::trial(seed), &*prepared, &config, &mut scratch);
        let legacy = run_randomized_prepared_with(&*prepared, &config, seed, mode, &mut scratch);
        assert_eq!(report.round_summary(), legacy);
        assert!(report.fault.is_none());

        // Clean multiround.
        let spec = RunSpec::trial(seed).with_rounds(4);
        let report = run_prepared(&spec, &*prepared, &config, &mut scratch);
        let legacy = run_multiround_prepared_with(&*prepared, &config, seed, 4, mode, &mut scratch);
        assert_eq!(report.multiround_summary(), legacy);

        // Faulted one-round: the single-shot fault model.
        let plan = FaultPlan::new(FaultSpec::transparent().with_drop(0.3), 7);
        let spec = RunSpec::trial(seed).with_faults(plan.clone());
        let report = run_prepared(&spec, &*prepared, &config, &mut scratch);
        let legacy = run_randomized_prepared_faulted_with(
            &*prepared,
            &config,
            seed,
            &plan,
            mode,
            &mut scratch,
        )
        .compact();
        assert_eq!(report.faulted_round_summary(), legacy);
        assert!(report.fault.is_some());

        // Faulted multiround: the overlay schedule.
        let spec = RunSpec::trial(seed)
            .with_rounds(3)
            .with_faults(plan.clone());
        let report = run_prepared(&spec, &*prepared, &config, &mut scratch);
        let legacy = prepared.run_multiround_faulted(
            &config,
            seed,
            3,
            &plan,
            MessagePattern::PerPort,
            mode,
            &mut scratch,
        );
        assert_eq!(report.faulted_multiround_summary(), legacy);
    }

    #[test]
    fn run_trials_emits_reports_identical_to_scalar_dispatch() {
        let config = Configuration::plain(generators::wheel(7));
        let labeling = VariableLength.label(&config);
        let prepared = Rpls::prepare(&VariableLength, &config, &labeling, 6);
        let mut scratch = RoundScratch::new();
        let seeds: Vec<u64> = (10..16).collect();
        for spec in [
            RunSpec::trial(0),
            RunSpec::trial(0).with_rounds(3),
            RunSpec::trial(0).with_pattern(MessagePattern::Broadcast),
        ] {
            let mut batched = Vec::new();
            run_trials(&spec, &*prepared, &config, &seeds, &mut scratch, &mut |r| {
                batched.push(r);
            });
            let scalar: Vec<RunReport> = seeds
                .iter()
                .map(|&s| {
                    let mut per_seed = spec.clone();
                    per_seed.seed_source = SeedSource::Trial(s);
                    run_prepared(&per_seed, &*prepared, &config, &mut scratch)
                })
                .collect();
            assert_eq!(batched, scalar, "spec {spec:?}");
        }
    }

    #[test]
    fn beacon_spec_equals_trial_of_derived_seed() {
        let config = Configuration::plain(generators::wheel(9));
        let labeling = VariableLength.label(&config);
        let prepared = Rpls::prepare(&VariableLength, &config, &labeling, 2);
        let mut scratch = RoundScratch::new();
        let (round_id, value) = (4242u64, 0xDEAD_BEEFu64);
        let beacon = run_prepared(
            &RunSpec::beacon(round_id, value),
            &*prepared,
            &config,
            &mut scratch,
        );
        let beacon_certs = scratch.certificates().to_nested(config.port_base());
        let derived = crate::rng::beacon_seed(round_id, value);
        assert_eq!(RunSpec::beacon(round_id, value).seed(), derived);
        let trial = run_prepared(&RunSpec::trial(derived), &*prepared, &config, &mut scratch);
        assert_eq!(beacon, trial);
        assert_eq!(
            scratch.certificates().to_nested(config.port_base()),
            beacon_certs
        );
    }

    #[test]
    fn run_prepares_internally_and_matches_prepared_dispatch() {
        let config = Configuration::plain(generators::wheel(7));
        let labeling = VariableLength.label(&config);
        let spec = RunSpec::trial(77).with_rounds(2);
        let via_run = run(&spec, &VariableLength, &config, &labeling);
        let prepared = Rpls::prepare(&VariableLength, &config, &labeling, 1);
        let mut scratch = RoundScratch::new();
        let direct = run_prepared(&spec, &*prepared, &config, &mut scratch);
        assert_eq!(via_run, direct);
    }

    #[test]
    fn delivery_routes_certificates_to_far_endpoints() {
        // With VariableLength, the certificate on port p of node v starts
        // with v's id in unary — check each received certificate's prefix
        // length against the actual neighbor.
        let config = Configuration::plain(generators::wheel(7));
        let labeling = VariableLength.label(&config);
        let rec = run_randomized(&VariableLength, &config, &labeling, 3);
        let g = config.graph();
        let mut scratch = RoundScratch::new();
        run_randomized_with(
            &VariableLength,
            &config,
            &labeling,
            3,
            StreamMode::EdgeIndependent,
            &mut scratch,
        );
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                let sent = &rec.certificates[nb.node.index()][nb.remote_port.rank()];
                let got = scratch
                    .certificates()
                    .get(config.delivery()[config.port_index(v, nb.port.rank())] as usize);
                assert_eq!(got, *sent);
                let unary_prefix = got.iter().take_while(|&b| b).count().min(nb.node.index());
                assert_eq!(unary_prefix, nb.node.index(), "sender id prefix");
            }
        }
    }
}
