//! Label-free local decision — the `LD` baseline the paper builds on.
//!
//! The introduction frames proof-labeling schemes against plain *local
//! decision* (the class `LD` of Fraigniaud–Korman–Peleg \[15], referenced
//! throughout the paper and in its concluding open questions): every node
//! inspects its radius-`t` ball — no prover, no labels — and the usual
//! acceptance rule applies (all nodes `TRUE` on legal instances, at least
//! one `FALSE` otherwise).
//!
//! This module implements that baseline so the repository can *demonstrate*
//! why schemes are needed at all:
//!
//! * proper coloring is decidable at radius 1 (the paper's §1 example);
//! * acyclicity is **not** decidable at any constant radius — a node cannot
//!   distinguish a long path from a long cycle (the paper's §1 argument) —
//!   but cycles short enough to fit in the ball (length ≤ 2t + 1) are
//!   caught;
//! * with labels (a PLS) the same predicates become decidable at radius 1,
//!   which is exactly the point of \[31] and of this paper.

use crate::scheme::Predicate;
use crate::state::Configuration;
use rpls_graph::{GraphBuilder, NodeId};

/// The radius-`t` view of one node: the induced subgraph on its ball,
/// complete with states, distances, and the *true* degrees (so a boundary
/// node can be told apart from a genuinely low-degree one).
#[derive(Debug, Clone)]
pub struct Ball {
    /// The ball as a configuration of its own (nodes re-indexed; states,
    /// identities and edge weights copied from the host).
    pub config: Configuration,
    /// The center, as an index into `config`.
    pub center: NodeId,
    /// `distance[v]` = hop distance from the center within the ball.
    pub distance: Vec<usize>,
    /// `true_degree[v]` = the node's degree in the *host* graph; nodes on
    /// the ball's boundary have `true_degree > ball degree`.
    pub true_degree: Vec<usize>,
}

impl Ball {
    /// Whether node `v` of the ball is interior: all its host-graph
    /// neighbors are inside the ball too.
    #[must_use]
    pub fn is_interior(&self, v: NodeId) -> bool {
        self.config.graph().degree(v) == self.true_degree[v.index()]
    }
}

/// A label-free local decision algorithm (the class `LD(t)` of \[15]).
pub trait LocalDecision {
    /// Human-readable name.
    fn name(&self) -> String;

    /// The view radius `t`.
    fn radius(&self) -> usize;

    /// The decision at one node, given its radius-`t` ball.
    fn decide(&self, ball: &Ball) -> bool;
}

/// Extracts the radius-`t` ball around `center`.
#[must_use]
pub fn ball(config: &Configuration, center: NodeId, radius: usize) -> Ball {
    let g = config.graph();
    // BFS out to the radius.
    let mut dist: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    dist.insert(center, 0);
    let mut order = vec![center];
    let mut queue = std::collections::VecDeque::from([center]);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d == radius {
            continue;
        }
        for nb in g.neighbors(v) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(nb.node) {
                e.insert(d + 1);
                order.push(nb.node);
                queue.push_back(nb.node);
            }
        }
    }
    let index_of: std::collections::HashMap<NodeId, usize> =
        order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut b = GraphBuilder::new(order.len());
    for (_, rec) in g.edges() {
        if let (Some(&iu), Some(&iv)) = (index_of.get(&rec.u), index_of.get(&rec.v)) {
            b.add_edge_full(NodeId::new(iu), NodeId::new(iv), None, rec.weight)
                .expect("induced edges are simple");
        }
    }
    let graph = b.finish().expect("auto ports are contiguous");
    let states = order.iter().map(|&v| config.state(v).clone()).collect();
    Ball {
        config: Configuration::new(graph, states),
        center: NodeId::new(0),
        distance: order.iter().map(|v| dist[v]).collect(),
        true_degree: order.iter().map(|&v| g.degree(v)).collect(),
    }
}

/// Runs a local decision algorithm at every node; accepts iff all accept.
pub fn run_local_decision<S: LocalDecision + ?Sized>(
    scheme: &S,
    config: &Configuration,
) -> crate::engine::Outcome {
    let votes: Vec<bool> = config
        .graph()
        .nodes()
        .map(|v| scheme.decide(&ball(config, v, scheme.radius())))
        .collect();
    crate::engine::Outcome::from_votes(votes)
}

/// The radius-1 proper-coloring decision (the paper's §1 example of a
/// predicate that needs no labels at all): reject iff some neighbor shares
/// the center's color payload.
#[derive(Debug, Clone, Copy)]
pub struct ColoringLd;

impl LocalDecision for ColoringLd {
    fn name(&self) -> String {
        "coloring-ld".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn decide(&self, ball: &Ball) -> bool {
        let center_color = ball.config.state(ball.center).payload().clone();
        ball.config
            .graph()
            .neighbors(ball.center)
            .all(|nb| ball.config.state(nb.node).payload() != &center_color)
    }
}

/// The best label-free acyclicity decision at radius `t`: reject iff the
/// ball provably contains a cycle. Sound but *incomplete* — cycles longer
/// than `2t + 1` are invisible, which is precisely why acyclicity needs a
/// proof-labeling scheme (§1 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct AcyclicityLd {
    radius: usize,
}

impl AcyclicityLd {
    /// The decision with view radius `t`.
    #[must_use]
    pub fn new(radius: usize) -> Self {
        Self { radius }
    }
}

impl LocalDecision for AcyclicityLd {
    fn name(&self) -> String {
        format!("acyclicity-ld({})", self.radius)
    }

    fn radius(&self) -> usize {
        self.radius
    }

    fn decide(&self, ball: &Ball) -> bool {
        // A cycle inside the ball is certain; anything else must be given
        // the benefit of the doubt (boundary edges may or may not close).
        !rpls_graph::cycles::has_cycle(ball.config.graph())
    }
}

/// A closure-based local decision, for tests and experiments.
pub struct FnLocalDecision<F> {
    name: String,
    radius: usize,
    f: F,
}

impl<F: Fn(&Ball) -> bool> FnLocalDecision<F> {
    /// Wraps a closure as a radius-`t` decision.
    pub fn new(name: impl Into<String>, radius: usize, f: F) -> Self {
        Self {
            name: name.into(),
            radius,
            f,
        }
    }
}

impl<F: Fn(&Ball) -> bool> LocalDecision for FnLocalDecision<F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn radius(&self) -> usize {
        self.radius
    }

    fn decide(&self, ball: &Ball) -> bool {
        (self.f)(ball)
    }
}

/// Correctness of a local decision against a predicate on a configuration
/// set: complete on the legal ones, sound on the illegal ones.
pub fn agrees_with_predicate<S: LocalDecision + ?Sized, P: Predicate + ?Sized>(
    scheme: &S,
    predicate: &P,
    configs: &[Configuration],
) -> bool {
    configs
        .iter()
        .all(|c| run_local_decision(scheme, c).accepted() == predicate.holds(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::FnPredicate;
    use rpls_graph::generators;

    #[test]
    fn ball_of_radius_one_is_closed_neighborhood() {
        let c = Configuration::plain(generators::cycle(8));
        let b = ball(&c, NodeId::new(3), 1);
        assert_eq!(b.config.node_count(), 3);
        assert_eq!(b.distance, vec![0, 1, 1]);
        // Ids are preserved from the host configuration.
        assert_eq!(b.config.state(b.center).id(), 3);
    }

    #[test]
    fn ball_marks_boundary_nodes() {
        let c = Configuration::plain(generators::path(7));
        let b = ball(&c, NodeId::new(3), 2);
        // Nodes 1 and 5 are on the boundary: their true degree is 2 but the
        // ball only contains one of their neighbors.
        let boundary = b
            .config
            .graph()
            .nodes()
            .filter(|&v| !b.is_interior(v))
            .count();
        assert_eq!(boundary, 2);
        assert!(b.is_interior(b.center));
    }

    #[test]
    fn coloring_is_decidable_at_radius_one() {
        use crate::Predicate;
        let legal = {
            // 2-color a cycle of even length by hand.
            let mut c = Configuration::plain(generators::cycle(6));
            for i in 0..6 {
                c.state_mut(NodeId::new(i))
                    .set_payload(rpls_bits::BitString::from_bools([(i % 2) == 1]));
            }
            c
        };
        assert!(run_local_decision(&ColoringLd, &legal).accepted());
        let mut illegal = legal.clone();
        illegal
            .state_mut(NodeId::new(2))
            .set_payload(rpls_bits::BitString::from_bools([true]));
        let out = run_local_decision(&ColoringLd, &illegal);
        assert!(!out.accepted());
        let pred = FnPredicate::new("proper", |c: &Configuration| {
            c.graph()
                .edges()
                .all(|(_, r)| c.state(r.u).payload() != c.state(r.v).payload())
        });
        assert!(pred.holds(&legal) && !pred.holds(&illegal));
    }

    #[test]
    fn short_cycles_are_caught_without_labels() {
        // A triangle fits in every radius-1 ball of its nodes.
        let c = Configuration::plain(generators::cycle(3));
        assert!(!run_local_decision(&AcyclicityLd::new(1), &c).accepted());
        // C5 fits in radius-2 balls.
        let c = Configuration::plain(generators::cycle(5));
        assert!(!run_local_decision(&AcyclicityLd::new(2), &c).accepted());
    }

    #[test]
    fn long_cycles_are_invisible_without_labels() {
        // The paper's §1 point: an 11-cycle looks exactly like a path at
        // radius 2 — the decision accepts an illegal instance, so
        // acyclicity ∉ LD(2) over this family. With labels (AcyclicityPls)
        // the same instance is rejected — that is what schemes buy.
        let c = Configuration::plain(generators::cycle(11));
        assert!(run_local_decision(&AcyclicityLd::new(2), &c).accepted());
        // Completeness still holds on legal instances.
        let p = Configuration::plain(generators::path(11));
        assert!(run_local_decision(&AcyclicityLd::new(2), &p).accepted());
    }

    #[test]
    fn cycle_detection_threshold_matches_ball_size() {
        // A cycle of length L is visible at radius t iff L ≤ 2t + 1.
        for (len, radius, visible) in [
            (5usize, 2usize, true),
            (6, 2, false),
            (7, 3, true),
            (9, 3, false),
        ] {
            let c = Configuration::plain(generators::cycle(len));
            let accepted = run_local_decision(&AcyclicityLd::new(radius), &c).accepted();
            assert_eq!(!accepted, visible, "len={len} radius={radius}");
        }
    }

    #[test]
    fn agreement_helper() {
        let configs = vec![
            Configuration::plain(generators::cycle(3)),
            Configuration::plain(generators::path(4)),
        ];
        let pred = FnPredicate::new("acyclic", |c: &Configuration| {
            rpls_graph::cycles::is_forest(c.graph())
        });
        assert!(agrees_with_predicate(
            &AcyclicityLd::new(1),
            &pred,
            &configs
        ));
        // But on the long cycle the agreement breaks — the decision needs
        // labels there.
        let hard = vec![Configuration::plain(generators::cycle(9))];
        assert!(!agrees_with_predicate(&AcyclicityLd::new(1), &pred, &hard));
    }

    #[test]
    fn fn_local_decision_wraps_closures() {
        let d = FnLocalDecision::new("deg>=2", 1, |b: &Ball| b.true_degree[b.center.index()] >= 2);
        assert_eq!(d.radius(), 1);
        let c = Configuration::plain(generators::cycle(4));
        assert!(run_local_decision(&d, &c).accepted());
        let p = Configuration::plain(generators::path(4));
        assert!(!run_local_decision(&d, &p).accepted());
    }
}
