//! Deterministic, seed-replayable fault injection for the verification
//! engine: lossy and corrupting channels, message duplication, crash-stop
//! nodes, and the graceful-degradation summaries every faulted engine path
//! reports.
//!
//! # Fault model
//!
//! A [`FaultSpec`] names per-message and per-node hazard rates; a
//! [`FaultPlan`] binds the spec to a SplitMix64 *fault seed* and turns it
//! into a **pure function** from `(trial seed, round, directed edge)` to a
//! [`DeliveryOutcome`] — the same counter-based derivation the engine's
//! certificate streams use ([`mix_seed`] /
//! [`state_stream_word`]), so any fault
//! schedule replays bit-identically from the same `(seed, fault seed)`
//! pair with no generator state to thread.
//!
//! The transport is assumed integrity-checked: a message whose bits were
//! corrupted in flight is *detected* and discarded by the receiver, so
//! corruption and loss both degrade to a **missing** message (omission
//! faults). This is the standard reduction — and it is what keeps the
//! paper's one-sided error intact, because a verifier never acts on
//! adversarially flipped fingerprint bits (which could otherwise collide
//! and turn a reject into an accept). A *duplicated* message is delivered
//! intact (verification is idempotent) but pays its wire bits twice. A
//! **crash-stop** node stops sending from its crash round on; everything
//! it would have sent is missing at the receivers.
//!
//! # Degradation semantics
//!
//! A node missing one or more of its incident messages cannot run its
//! verifier soundly, so it votes [`NodeVerdict::InsufficientInput`] —
//! which *rejects* conservatively. Faults therefore only ever flip
//! accept → reject, never reject → accept:
//!
//! * **Soundness is preserved** under every fault rate up to 1.0: if the
//!   fault-free engine rejects a configuration, the faulted engine rejects
//!   it too (each node's verdict is either its fault-free vote or the
//!   rejecting `InsufficientInput`).
//! * **Completeness degrades gracefully**: an honest labeling is accepted
//!   exactly when every message survives, and [`DegradedSummary`] reports
//!   per-node missing-message counts so callers can see *why* a trial
//!   degraded. The multiround engine can buy completeness back with a
//!   bounded retry budget for lossy links ([`FaultSpec::with_retry_budget`]).
//!
//! A spec whose rates are all zero is *transparent*
//! ([`FaultPlan::is_transparent`]): every faulted entry point branches to
//! the exact fault-free code path, so zero-fault runs are bit-identical to
//! the unfaulted engine — summaries, estimates and randomness consumption
//! alike (`tests/fault_injection.rs` pins this).

use crate::engine::{MultiRoundSummary, RoundSummary};
use crate::rng::{mix_seed, state_stream_word};

/// Seed-derivation tag of per-message delivery words, chosen to collide
/// with neither the estimator tags in [`stats`](crate::stats) nor the
/// engine's multiround tag.
const TAG_FAULT_MSG: u64 = 0x666D_7367; // "fmsg"
/// Seed-derivation tag of per-(node, round) crash-hazard words.
const TAG_FAULT_CRASH: u64 = 0x6372617368; // "crash"
/// Seed-derivation tag of per-attempt retry words.
const TAG_FAULT_RETRY: u64 = 0x7265747279; // "retry"

/// 2⁶⁴ as an `f64`, the scale mapping a probability to a 64-bit threshold.
const TWO_64: f64 = 18_446_744_073_709_551_616.0;

/// Per-message and per-node hazard rates of a fault environment, plus the
/// multiround retry budget. All rates are probabilities in `[0, 1]`.
///
/// Build one with the `with_*` combinators:
///
/// ```
/// use rpls_core::fault::FaultSpec;
///
/// let spec = FaultSpec::default().with_drop(0.1).with_crash(0.01);
/// assert!(!spec.is_transparent());
/// assert!(FaultSpec::default().is_transparent());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    drop_rate: f64,
    corrupt_rate: f64,
    duplicate_rate: f64,
    crash_rate: f64,
    retry_budget: usize,
}

/// Validates one rate argument.
fn check_rate(rate: f64, what: &str) {
    assert!(
        rate.is_finite() && (0.0..=1.0).contains(&rate),
        "{what} rate must be a probability in [0, 1], got {rate}"
    );
}

impl FaultSpec {
    /// The spec with every hazard at rate `0` — the transparent
    /// environment whose faulted runs are bit-identical to the fault-free
    /// engine.
    #[must_use]
    pub fn transparent() -> Self {
        Self::default()
    }

    /// Sets the per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_drop(mut self, rate: f64) -> Self {
        check_rate(rate, "drop");
        self.drop_rate = rate;
        self
    }

    /// Sets the per-message bit-corruption probability. Corrupted messages
    /// are detected by the integrity-checked transport and discarded, so
    /// they degrade to missing messages (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_corrupt(mut self, rate: f64) -> Self {
        check_rate(rate, "corrupt");
        self.corrupt_rate = rate;
        self
    }

    /// Sets the per-message duplication probability. A duplicated message
    /// is delivered intact (verification is idempotent) but its wire bits
    /// are counted twice.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_duplicate(mut self, rate: f64) -> Self {
        check_rate(rate, "duplicate");
        self.duplicate_rate = rate;
        self
    }

    /// Sets the per-(node, round) crash-stop hazard. A node whose hazard
    /// fires in round `r` sends nothing from round `r` on (crash-stop, no
    /// recovery within a trial).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_crash(mut self, rate: f64) -> Self {
        check_rate(rate, "crash");
        self.crash_rate = rate;
        self
    }

    /// Sets the multiround retry budget: how many times a sender re-sends
    /// a chunk whose delivery failed (dropped or corrupted) within the same
    /// round. Each attempt pays the chunk's bits again; crashed senders
    /// never retry. The one-round engine takes no retries (there is no
    /// later point in the round to resend at).
    #[must_use]
    pub fn with_retry_budget(mut self, budget: usize) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Per-message drop probability.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        self.drop_rate
    }

    /// Per-message corruption probability.
    #[must_use]
    pub fn corrupt_rate(&self) -> f64 {
        self.corrupt_rate
    }

    /// Per-message duplication probability.
    #[must_use]
    pub fn duplicate_rate(&self) -> f64 {
        self.duplicate_rate
    }

    /// Per-(node, round) crash-stop hazard.
    #[must_use]
    pub fn crash_rate(&self) -> f64 {
        self.crash_rate
    }

    /// Multiround retry budget per failed chunk.
    #[must_use]
    pub fn retry_budget(&self) -> usize {
        self.retry_budget
    }

    /// Whether every hazard rate is zero — the environment in which the
    /// faulted engine paths are bit-identical to the fault-free ones (the
    /// retry budget is irrelevant when nothing ever fails).
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.crash_rate == 0.0
    }
}

/// What happened to one message on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Delivered exactly as sent.
    Intact,
    /// Delivered intact, twice — the receiver ignores the copy, but the
    /// wire carried the bits twice.
    Duplicated,
    /// Lost in transit; the receiver sees nothing.
    Dropped,
    /// Bits flipped in transit; the integrity-checked transport detects
    /// and discards it, so the receiver sees nothing (see module docs for
    /// why corruption must not be delivered).
    Corrupted,
}

impl DeliveryOutcome {
    /// Whether the receiver sees the message content.
    #[must_use]
    pub fn delivered(self) -> bool {
        matches!(self, Self::Intact | Self::Duplicated)
    }

    /// How many times the message's bits crossed the wire.
    #[must_use]
    pub fn transmissions(self) -> usize {
        match self {
            Self::Duplicated => 2,
            _ => 1,
        }
    }
}

/// The three-valued per-node verdict of a faulted verification round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeVerdict {
    /// All incident messages arrived and the verifier accepted.
    Accept,
    /// All incident messages arrived and the verifier rejected.
    Reject,
    /// One or more incident messages were missing; the node cannot run its
    /// verifier soundly and **rejects conservatively** — this is what
    /// preserves one-sided soundness under faults.
    InsufficientInput,
}

impl NodeVerdict {
    /// Whether this verdict counts as an accepting vote (`Accept` only).
    #[must_use]
    pub fn accepts(self) -> bool {
        matches!(self, Self::Accept)
    }
}

/// Aggregate fault-event counts of one faulted trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Messages lost in transit (not counting crash-suppressed sends).
    pub dropped: usize,
    /// Messages corrupted in transit and discarded by the transport.
    pub corrupted: usize,
    /// Messages delivered twice.
    pub duplicated: usize,
    /// Nodes whose crash-stop hazard fired during the trial.
    pub crashed_nodes: usize,
    /// Retry transmissions performed by the multiround resend schedule
    /// (zero in the one-round engine).
    pub retries: usize,
}

impl FaultCounts {
    /// Adds `other`'s counters into `self` — how the Monte-Carlo
    /// estimators ([`stats::acceptance_under_faults`]) aggregate per-trial
    /// counts into a block total.
    ///
    /// [`stats::acceptance_under_faults`]: crate::stats::acceptance_under_faults
    pub fn absorb(&mut self, other: FaultCounts) {
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.duplicated += other.duplicated;
        self.crashed_nodes += other.crashed_nodes;
        self.retries += other.retries;
    }
}

/// The rich, per-node summary of one faulted verification round — the
/// graceful-degradation twin of [`RoundSummary`], produced by the scalar
/// reference path
/// [`run_randomized_faulted_with`](crate::engine::run_randomized_faulted_with).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedSummary {
    /// The round summary under faults: `accepted` is true iff every node's
    /// verdict is [`NodeVerdict::Accept`]; the bit counts reflect what the
    /// wire actually carried (crashed senders transmit nothing, duplicated
    /// messages pay twice).
    pub summary: RoundSummary,
    /// The three-valued verdict of each node.
    pub verdicts: Vec<NodeVerdict>,
    /// How many incident messages each node was missing.
    pub missing: Vec<u32>,
    /// Aggregate fault-event counts.
    pub counts: FaultCounts,
}

impl DegradedSummary {
    /// A degraded summary for a trial that ran through the fault-free
    /// engine (transparent plan): verdicts are the clean votes, nothing is
    /// missing.
    #[must_use]
    pub fn transparent(summary: RoundSummary, votes: &[bool]) -> Self {
        Self {
            summary,
            verdicts: votes
                .iter()
                .map(|&v| {
                    if v {
                        NodeVerdict::Accept
                    } else {
                        NodeVerdict::Reject
                    }
                })
                .collect(),
            missing: vec![0; votes.len()],
            counts: FaultCounts::default(),
        }
    }

    /// Whether the round accepted under faults.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.summary.accepted
    }

    /// Nodes that voted [`NodeVerdict::InsufficientInput`].
    #[must_use]
    pub fn insufficient_nodes(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| matches!(v, NodeVerdict::InsufficientInput))
            .count()
    }

    /// Total missing messages over all nodes.
    #[must_use]
    pub fn missing_messages(&self) -> usize {
        self.missing.iter().map(|&m| m as usize).sum()
    }

    /// The compact per-trial form the batched faulted engine emits.
    #[must_use]
    pub fn compact(&self) -> FaultedRoundSummary {
        FaultedRoundSummary {
            summary: self.summary,
            insufficient_nodes: self.insufficient_nodes(),
            missing_messages: self.missing_messages(),
            counts: self.counts,
        }
    }
}

/// The compact per-trial summary of one faulted one-round trial, as
/// emitted by [`PreparedRpls::run_trials_faulted`](crate::scheme::PreparedRpls::run_trials_faulted)
/// — what a Monte-Carlo sweep needs without materialising per-node vectors
/// every trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultedRoundSummary {
    /// The round summary under faults (see [`DegradedSummary::summary`]).
    pub summary: RoundSummary,
    /// Nodes that were missing at least one incident message.
    pub insufficient_nodes: usize,
    /// Total missing messages over all nodes.
    pub missing_messages: usize,
    /// Aggregate fault-event counts.
    pub counts: FaultCounts,
}

impl FaultedRoundSummary {
    /// The summary of a trial that ran through the fault-free engine
    /// (transparent plan).
    #[must_use]
    pub fn clean(summary: RoundSummary) -> Self {
        Self {
            summary,
            insufficient_nodes: 0,
            missing_messages: 0,
            counts: FaultCounts::default(),
        }
    }
}

/// The compact summary of one faulted **t-round** trial, as emitted by
/// [`PreparedRpls::run_multiround_trials_faulted`](crate::scheme::PreparedRpls::run_multiround_trials_faulted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultedMultiRoundSummary {
    /// The multiround summary under faults: `accepted` is the clean
    /// verdict AND no message stayed missing after retries;
    /// `decided_round` is the earliest of the clean decision round and the
    /// first round a message went missing (its receiver rejects then);
    /// `total_bits` includes duplicate and retry transmissions and
    /// excludes everything a crashed sender never sent.
    pub summary: MultiRoundSummary,
    /// Nodes that were missing at least one incident message.
    pub insufficient_nodes: usize,
    /// Messages still missing after the retry schedule.
    pub missing_messages: usize,
    /// Aggregate fault-event counts (including retries).
    pub counts: FaultCounts,
}

impl FaultedMultiRoundSummary {
    /// The summary of a trial that ran through the fault-free engine
    /// (transparent plan).
    #[must_use]
    pub fn clean(summary: MultiRoundSummary) -> Self {
        Self {
            summary,
            insufficient_nodes: 0,
            missing_messages: 0,
            counts: FaultCounts::default(),
        }
    }
}

/// A [`FaultSpec`] bound to a fault seed: the pure, replayable schedule of
/// delivery outcomes, crash hazards and retry draws the faulted engine
/// paths consult.
///
/// The plan is **content-keyed**: every decision is a pure function of
/// `(fault seed, trial seed, round, edge-or-node counter)`, derived with
/// the same SplitMix64 mixing the certificate streams use. Two runs with
/// the same `(seed, fault seed)` therefore see the *same* faults on the
/// same messages, regardless of evaluation order or engine path.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    fault_seed: u64,
    /// Cumulative thresholds over the 64-bit word space, in priority order
    /// drop < corrupt < duplicate. Held as `u128` so a rate of exactly 1.0
    /// maps to 2⁶⁴ — strictly above every `u64` word, i.e. "always".
    drop_to: u128,
    corrupt_to: u128,
    duplicate_to: u128,
    crash_to: u128,
}

impl FaultPlan {
    /// Binds `spec` to `fault_seed`.
    ///
    /// Rates are applied in the priority order drop, then corrupt, then
    /// duplicate on one decision word per message; rates summing above 1
    /// clip the later categories (a message can suffer only one fate).
    #[must_use]
    pub fn new(spec: FaultSpec, fault_seed: u64) -> Self {
        let drop_to = threshold(spec.drop_rate);
        let corrupt_to = drop_to + threshold(spec.corrupt_rate);
        let duplicate_to = corrupt_to + threshold(spec.duplicate_rate);
        Self {
            spec,
            fault_seed,
            drop_to,
            corrupt_to,
            duplicate_to,
            crash_to: threshold(spec.crash_rate),
        }
    }

    /// The spec this plan was built from.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The fault seed this plan was built with.
    #[must_use]
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }

    /// Whether the plan never perturbs anything — the branch every faulted
    /// engine path takes to the exact fault-free code.
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.spec.is_transparent()
    }

    /// The retry budget of the bound spec.
    #[must_use]
    pub fn retry_budget(&self) -> usize {
        self.spec.retry_budget
    }

    /// The fate of the message sent in `round` (0-based) of the trial with
    /// seed `trial_seed` over the directed edge identified by the sender's
    /// global port index `src_port`.
    #[must_use]
    pub fn outcome(&self, trial_seed: u64, round: u64, src_port: u64) -> DeliveryOutcome {
        let base = mix_seed(self.fault_seed, trial_seed, TAG_FAULT_MSG);
        let w = u128::from(mix_seed(base, round, src_port));
        if w < self.drop_to {
            DeliveryOutcome::Dropped
        } else if w < self.corrupt_to {
            DeliveryOutcome::Corrupted
        } else if w < self.duplicate_to {
            DeliveryOutcome::Duplicated
        } else {
            DeliveryOutcome::Intact
        }
    }

    /// Whether `node`'s crash hazard fires **in** round `round` (0-based).
    /// Crash-stop is cumulative: the node is down from the first round its
    /// hazard fires; callers tracking multiround state fold this
    /// incrementally (`crashed |= crash_hazard(...)`).
    #[must_use]
    pub fn crash_hazard(&self, trial_seed: u64, node: u64, round: u64) -> bool {
        let base = mix_seed(self.fault_seed, trial_seed, TAG_FAULT_CRASH);
        u128::from(mix_seed(base, node, round)) < self.crash_to
    }

    /// Whether `node` is crashed **by** round `round` inclusive — its
    /// hazard fired in some round `≤ round`. O(round); multiround kernels
    /// should fold [`Self::crash_hazard`] incrementally instead.
    #[must_use]
    pub fn crashed_by(&self, trial_seed: u64, node: u64, round: u64) -> bool {
        (0..=round).any(|r| self.crash_hazard(trial_seed, node, r))
    }

    /// Whether retry `attempt` (0-based) of the round-`round` message on
    /// `src_port` gets through. A retry succeeds when its fresh delivery
    /// draw is neither dropped nor corrupted; duplication is not modelled
    /// on retries (the receiver already ignores copies).
    #[must_use]
    pub fn retry_delivers(&self, trial_seed: u64, round: u64, src_port: u64, attempt: u64) -> bool {
        let base = mix_seed(self.fault_seed, trial_seed, TAG_FAULT_RETRY);
        let state = mix_seed(base, round, src_port);
        u128::from(state_stream_word(state, attempt)) >= self.corrupt_to
    }
}

/// Maps a probability to its cumulative-threshold contribution over the
/// 64-bit word space. Exact at the endpoints: 0.0 → 0 (never), 1.0 → 2⁶⁴
/// (strictly above every word — always).
fn threshold(rate: f64) -> u128 {
    (rate * TWO_64) as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_validate() {
        let s = FaultSpec::default()
            .with_drop(0.5)
            .with_corrupt(0.0)
            .with_duplicate(1.0)
            .with_crash(0.25)
            .with_retry_budget(3);
        assert_eq!(s.drop_rate(), 0.5);
        assert_eq!(s.duplicate_rate(), 1.0);
        assert_eq!(s.retry_budget(), 3);
        assert!(!s.is_transparent());
    }

    #[test]
    #[should_panic(expected = "probability in [0, 1]")]
    fn negative_rate_rejected() {
        let _ = FaultSpec::default().with_drop(-0.1);
    }

    #[test]
    #[should_panic(expected = "probability in [0, 1]")]
    fn nan_rate_rejected() {
        let _ = FaultSpec::default().with_crash(f64::NAN);
    }

    #[test]
    fn transparency_ignores_retry_budget() {
        assert!(FaultSpec::transparent()
            .with_retry_budget(7)
            .is_transparent());
        assert!(FaultPlan::new(FaultSpec::transparent(), 9).is_transparent());
    }

    #[test]
    fn endpoint_rates_are_exact() {
        let never = FaultPlan::new(FaultSpec::transparent(), 1);
        let always_drop = FaultPlan::new(FaultSpec::default().with_drop(1.0), 1);
        let always_crash = FaultPlan::new(FaultSpec::default().with_crash(1.0), 1);
        for i in 0..64u64 {
            assert_eq!(never.outcome(i, 0, i * 31), DeliveryOutcome::Intact);
            assert!(!never.crash_hazard(i, i, 0));
            assert_eq!(always_drop.outcome(i, 0, i * 31), DeliveryOutcome::Dropped);
            assert!(always_crash.crash_hazard(i, i, 0));
            assert!(always_crash.crashed_by(i, i, 3));
        }
    }

    #[test]
    fn outcomes_replay_and_spread() {
        let plan = FaultPlan::new(
            FaultSpec::default()
                .with_drop(0.25)
                .with_corrupt(0.25)
                .with_duplicate(0.25),
            0xFEED,
        );
        let mut counts = [0usize; 4];
        for port in 0..4096u64 {
            let a = plan.outcome(7, 2, port);
            let b = plan.outcome(7, 2, port);
            assert_eq!(a, b, "replay");
            let slot = match a {
                DeliveryOutcome::Dropped => 0,
                DeliveryOutcome::Corrupted => 1,
                DeliveryOutcome::Duplicated => 2,
                DeliveryOutcome::Intact => 3,
            };
            counts[slot] += 1;
        }
        // Each category holds a quarter of the mass; allow wide slack.
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..=1400).contains(&c), "category {i}: {c}");
        }
    }

    #[test]
    fn rates_above_one_clip_later_categories() {
        // drop already covers everything; corrupt and duplicate never fire.
        let plan = FaultPlan::new(
            FaultSpec::default()
                .with_drop(1.0)
                .with_corrupt(0.9)
                .with_duplicate(0.9),
            3,
        );
        for port in 0..256u64 {
            assert_eq!(plan.outcome(1, 0, port), DeliveryOutcome::Dropped);
        }
    }

    #[test]
    fn distinct_keys_decouple_streams() {
        let plan = FaultPlan::new(FaultSpec::default().with_drop(0.5).with_crash(0.5), 42);
        // Message, crash and retry words over the same counters must not be
        // the same stream: check they disagree somewhere.
        let msg: Vec<bool> = (0..64).map(|i| plan.outcome(1, 0, i).delivered()).collect();
        let crash: Vec<bool> = (0..64).map(|i| !plan.crash_hazard(1, i, 0)).collect();
        let retry: Vec<bool> = (0..64).map(|i| plan.retry_delivers(1, 0, i, 0)).collect();
        assert_ne!(msg, crash);
        assert_ne!(msg, retry);
        // And different fault seeds reshuffle the schedule.
        let other = FaultPlan::new(FaultSpec::default().with_drop(0.5).with_crash(0.5), 43);
        let msg2: Vec<bool> = (0..64)
            .map(|i| other.outcome(1, 0, i).delivered())
            .collect();
        assert_ne!(msg, msg2);
    }

    #[test]
    fn crashed_by_is_monotone() {
        let plan = FaultPlan::new(FaultSpec::default().with_crash(0.3), 5);
        for node in 0..32u64 {
            let mut down = false;
            for round in 0..16u64 {
                down |= plan.crash_hazard(9, node, round);
                assert_eq!(plan.crashed_by(9, node, round), down);
            }
        }
    }

    #[test]
    fn verdicts_and_outcome_helpers() {
        assert!(NodeVerdict::Accept.accepts());
        assert!(!NodeVerdict::Reject.accepts());
        assert!(!NodeVerdict::InsufficientInput.accepts());
        assert!(DeliveryOutcome::Intact.delivered());
        assert!(DeliveryOutcome::Duplicated.delivered());
        assert_eq!(DeliveryOutcome::Duplicated.transmissions(), 2);
        assert!(!DeliveryOutcome::Dropped.delivered());
        assert!(!DeliveryOutcome::Corrupted.delivered());
        assert_eq!(DeliveryOutcome::Corrupted.transmissions(), 1);
    }

    #[test]
    fn degraded_summary_aggregates() {
        let summary = RoundSummary {
            accepted: false,
            max_certificate_bits: 8,
            total_certificate_bits: 24,
        };
        let d = DegradedSummary {
            summary,
            verdicts: vec![
                NodeVerdict::Accept,
                NodeVerdict::InsufficientInput,
                NodeVerdict::Reject,
            ],
            missing: vec![0, 2, 0],
            counts: FaultCounts {
                dropped: 1,
                corrupted: 1,
                ..FaultCounts::default()
            },
        };
        assert!(!d.accepted());
        assert_eq!(d.insufficient_nodes(), 1);
        assert_eq!(d.missing_messages(), 2);
        let c = d.compact();
        assert_eq!(c.summary, summary);
        assert_eq!(c.insufficient_nodes, 1);
        assert_eq!(c.missing_messages, 2);
        assert_eq!(c.counts.dropped, 1);
    }

    #[test]
    fn transparent_constructors_are_clean() {
        let summary = RoundSummary {
            accepted: true,
            max_certificate_bits: 4,
            total_certificate_bits: 8,
        };
        let d = DegradedSummary::transparent(summary, &[true, true]);
        assert_eq!(d.verdicts, vec![NodeVerdict::Accept, NodeVerdict::Accept]);
        assert_eq!(d.missing, vec![0, 0]);
        assert_eq!(d.compact(), FaultedRoundSummary::clean(summary));
        let r = DegradedSummary::transparent(summary, &[true, false]);
        assert_eq!(r.verdicts[1], NodeVerdict::Reject);
    }
}
