//! Monte-Carlo acceptance estimation and error boosting (footnote 1).
//!
//! The paper fixes the success probabilities at 2/3 (two-sided) and 1/2
//! (one-sided rejection) and notes that "we can boost the probability of
//! correctness to 1 − δ by repeating the verification procedure
//! O(log(1/δ)) times independently and outputting the majority of
//! outcomes." [`boosted_accepts`] implements exactly that; the experiment
//! E-B measures the promised exponential decay.
//!
//! All estimators run on the engine's batched trial loop
//! ([`engine::run_trials_batched_with`]): each public entry point owns (or
//! borrows, for the `*_with` variants) one [`RoundScratch`], prepares the
//! labeling once — always through [`Rpls::prepare_cached`], against a
//! caller-owned [`PrepCache`] for the `*_cached` variants or a throwaway
//! one otherwise, so sweeps over many labelings amortise preparation —
//! and hands the whole block of per-trial seeds to the prepared scheme. Schemes with a batched
//! [`PreparedRpls::run_trials`] override (notably
//! [`CompiledRpls`](crate::compiler::CompiledRpls)) evaluate trials
//! node-at-a-time with all per-(node, port) setup hoisted out of the inner
//! loop; everything else falls back to the scalar prepared path. Estimates
//! are bit-identical either way. The feature-gated
//! [`acceptance_probability_par`] shards trials across threads with the
//! *same* per-trial seeds as the serial path, so both produce bit-identical
//! estimates.
//!
//! # One estimator
//!
//! The `acceptance_probability{,_with,_cached,_patterned,…}` family grew
//! one name per engine axis; all of them now delegate to a single surface:
//! [`estimate`] / [`estimate_with`] / [`estimate_par`] take a
//! [`RunSpec`] naming the job (rounds, pattern, faults, seed source) plus
//! [`EstimateOpts`] and return a uniform [`Estimate`]. The legacy names
//! remain seed-compatible shims — trial `t` runs seed
//! [`trial_seed`]`(spec.seed(), t)` on every path. Only the boosting
//! family (different seed tags, majority-vote semantics) and
//! [`rounds_to_reject_profile`] (richer per-round output) keep their own
//! loops.

use crate::buffer::RoundScratch;
use crate::engine::{self, mix_seed, MessagePattern, RunSpec, StreamMode, TRIAL_CHUNK};
use crate::fault::{FaultCounts, FaultPlan};
use crate::labeling::Labeling;
use crate::prep::PrepCache;
use crate::scheme::{PreparedRpls, Rpls};
use crate::state::Configuration;

/// The seed-derivation tag of each estimator family, so their streams never
/// collide.
const TAG_ACCEPT: u64 = 0;
const TAG_BOOST: u64 = 1;
const TAG_BOOST_TRIALS: u64 = 2;

/// The per-trial round seed of the acceptance estimators. Public so
/// benches and golden tests can replay individual estimator trials
/// through the engine without duplicating the tag constant.
#[must_use]
pub fn trial_seed(seed: u64, trial: u64) -> u64 {
    mix_seed(seed, trial, TAG_ACCEPT)
}

/// Counts accepting rounds over `trials` trials whose seeds are
/// `seed_of(0..trials)` — every estimator (serial and parallel) funnels
/// its trials through the batched engine here, so schemes with a
/// [`PreparedRpls::run_trials`] override (notably the compiled ones)
/// evaluate whole blocks per node instead of paying per-(node, port,
/// trial) overhead. Seeds are generated chunk-wise into the caller's
/// reusable buffer. Counts are bit-identical to running the scalar
/// prepared path once per seed.
fn count_accepts(
    prepared: &dyn PreparedRpls,
    config: &Configuration,
    trials: usize,
    seed_of: &dyn Fn(u64) -> u64,
    pattern: MessagePattern,
    scratch: &mut RoundScratch,
    seeds_buf: &mut Vec<u64>,
) -> usize {
    let mut accepts = 0usize;
    let mut next = 0usize;
    while next < trials {
        let chunk = TRIAL_CHUNK.min(trials - next);
        seeds_buf.clear();
        seeds_buf.extend((next..next + chunk).map(|t| seed_of(t as u64)));
        next += chunk;
        engine::run_trials_batched_patterned_with(
            prepared,
            config,
            seeds_buf,
            pattern,
            StreamMode::EdgeIndependent,
            scratch,
            &mut |summary| accepts += usize::from(summary.accepted),
        );
    }
    accepts
}

/// Options of a [`estimate`] run — everything about the Monte-Carlo
/// experiment that is *not* part of the job itself (the job is the
/// [`RunSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimateOpts {
    /// Number of independent trials (must be ≥ 1; enforced at execution).
    pub trials: usize,
}

impl EstimateOpts {
    /// Options running `trials` independent trials.
    #[must_use]
    pub fn new(trials: usize) -> Self {
        Self { trials }
    }
}

/// Aggregate outcome of one [`estimate`] run — the uniform result every
/// legacy estimator's return value projects out of. The fault fields stay
/// zero for fault-free specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Estimate {
    /// Trials estimated.
    pub trials: usize,
    /// Trials whose every node voted accept.
    pub accepts: usize,
    /// Trials in which at least one node was missing input (always 0 for
    /// fault-free specs).
    pub degraded_trials: usize,
    /// Total missing messages over all trials (0 for fault-free specs).
    pub missing_messages: usize,
    /// Fault events aggregated over all trials.
    pub counts: FaultCounts,
}

impl Estimate {
    /// The estimated acceptance probability.
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        self.accepts as f64 / self.trials as f64
    }

    /// The fraction of trials that lost at least one message.
    #[must_use]
    pub fn degradation(&self) -> f64 {
        self.degraded_trials as f64 / self.trials as f64
    }
}

/// The chunked trial loop every estimator bottoms out in: runs `trials`
/// trials of `spec` whose per-trial seeds are `seed_of(0..trials)` through
/// [`engine::run_trials`], accumulating an [`Estimate`]. Chunking bounds
/// memory at O([`TRIAL_CHUNK`]) without changing results (trials are
/// independent).
fn estimate_prepared(
    prepared: &dyn PreparedRpls,
    config: &Configuration,
    spec: &RunSpec,
    trials: usize,
    seed_of: &dyn Fn(u64) -> u64,
    scratch: &mut RoundScratch,
    seeds_buf: &mut Vec<u64>,
) -> Estimate {
    let mut out = Estimate {
        trials,
        ..Estimate::default()
    };
    let mut next = 0usize;
    while next < trials {
        let chunk = TRIAL_CHUNK.min(trials - next);
        seeds_buf.clear();
        seeds_buf.extend((next..next + chunk).map(|t| seed_of(t as u64)));
        next += chunk;
        engine::run_trials(spec, prepared, config, seeds_buf, scratch, &mut |r| {
            out.accepts += usize::from(r.accepted);
            if let Some(fault) = r.fault {
                out.degraded_trials += usize::from(fault.insufficient_nodes > 0);
                out.missing_messages += fault.missing_messages;
                out.counts.absorb(fault.counts);
            }
        });
    }
    out
}

/// Estimates the acceptance probability of one [`RunSpec`] job over
/// `opts.trials` independent trials — the single estimator the historical
/// `acceptance_probability{,_with,_cached,_patterned,…}` family collapses
/// into (each legacy name now delegates here with the equivalent spec, and
/// stays seed-compatible: trial `t` runs seed
/// [`trial_seed`]`(spec.seed(), t)` regardless of which surface invoked
/// it).
///
/// The spec's [`SeedSource`](crate::engine::SeedSource) picks private or
/// public (beacon) coins; everything else — rounds, pattern, stream mode,
/// faults — dispatches through [`engine::run_trials`] exactly as the
/// legacy twins did.
///
/// # Panics
///
/// Panics if `opts.trials` is 0 (and, transitively, if `spec.rounds` is 0).
pub fn estimate<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    spec: &RunSpec,
    opts: &EstimateOpts,
) -> Estimate {
    estimate_with(
        scheme,
        config,
        labeling,
        spec,
        opts,
        &mut RoundScratch::new(),
        &mut PrepCache::new(),
    )
}

/// Like [`estimate`] but reuses caller-owned scratch and a [`PrepCache`]
/// across labelings — the layer-4 form the verification service batches
/// tenant jobs through (one resident cache, content-keyed, shared across
/// every submitted labeling). Estimates are bit-identical to [`estimate`]
/// for any cache state; the cache only moves work, never results.
pub fn estimate_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    spec: &RunSpec,
    opts: &EstimateOpts,
    scratch: &mut RoundScratch,
    cache: &mut PrepCache,
) -> Estimate {
    assert!(opts.trials > 0, "need at least one trial");
    let prepared = scheme.prepare_cached(config, labeling, opts.trials, cache);
    let base = spec.seed();
    estimate_prepared(
        &*prepared,
        config,
        spec,
        opts.trials,
        &|t| trial_seed(base, t),
        scratch,
        &mut Vec::new(),
    )
}

/// Estimates `Pr[verifier accepts]` over `trials` independent rounds.
pub fn acceptance_probability<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut scratch = RoundScratch::new();
    acceptance_probability_with(scheme, config, labeling, trials, seed, &mut scratch)
}

/// Like [`acceptance_probability`] but reuses caller-owned scratch, so
/// sweeps over many labelings (e.g. the hill-climbing adversary) never
/// reallocate.
///
/// The labeling is prepared once ([`Rpls::prepare`]) and every trial runs
/// against the prepared scheme; estimates are bit-identical to running
/// [`engine::run_randomized_with`] per trial, only faster.
pub fn acceptance_probability_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
    scratch: &mut RoundScratch,
) -> f64 {
    acceptance_probability_cached(
        scheme,
        config,
        labeling,
        trials,
        seed,
        scratch,
        &mut PrepCache::new(),
    )
}

/// Like [`acceptance_probability_with`] but additionally reuses a
/// caller-owned [`PrepCache`], so a sweep over many labelings (the
/// hill-climbing adversary, a forged-candidate batch) pays preparation
/// only for the labels that changed since the previous estimate — under
/// the Theorem 3.1 compiler that turns per-candidate preparation from
/// O(nodes × label bits) parsing and polynomial building into O(nodes)
/// hash lookups.
///
/// The estimate is **bit-identical** to [`acceptance_probability`] on the
/// same inputs for any cache state (`tests/engine_golden.rs` pins this);
/// the cache only moves work, never results.
#[allow(clippy::too_many_arguments)]
pub fn acceptance_probability_cached<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
    scratch: &mut RoundScratch,
    cache: &mut PrepCache,
) -> f64 {
    estimate_with(
        scheme,
        config,
        labeling,
        &RunSpec::trial(seed),
        &EstimateOpts::new(trials),
        scratch,
        cache,
    )
    .acceptance()
}

/// Estimates `Pr[verifier accepts]` under a [`MessagePattern`] — the
/// message-pattern twin of [`acceptance_probability`]. Per-trial seeds are
/// identical to the per-port estimator's, so
/// [`MessagePattern::PerPort`] (and [`MessagePattern::Unicast`], which
/// only re-accounts bits) reproduce [`acceptance_probability`]
/// bit-for-bit; [`MessagePattern::Broadcast`] and
/// [`MessagePattern::KMessages`] re-key the certificate streams by slot
/// and so estimate the acceptance of genuinely coarser message schedules.
pub fn acceptance_probability_patterned<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
    pattern: MessagePattern,
) -> f64 {
    acceptance_probability_patterned_cached(
        scheme,
        config,
        labeling,
        trials,
        seed,
        pattern,
        &mut RoundScratch::new(),
        &mut PrepCache::new(),
    )
}

/// Like [`acceptance_probability_patterned`] but reuses caller-owned
/// scratch and a [`PrepCache`] across labelings — see
/// [`acceptance_probability_cached`] for the sweep-amortisation contract,
/// which carries over unchanged (the batch plan serves every pattern).
#[allow(clippy::too_many_arguments)]
pub fn acceptance_probability_patterned_cached<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
    pattern: MessagePattern,
    scratch: &mut RoundScratch,
    cache: &mut PrepCache,
) -> f64 {
    estimate_with(
        scheme,
        config,
        labeling,
        &RunSpec::trial(seed).with_pattern(pattern),
        &EstimateOpts::new(trials),
        scratch,
        cache,
    )
    .acceptance()
}

/// Aggregate outcome of a faulted Monte-Carlo acceptance estimate —
/// produced by [`acceptance_under_faults`]. Beyond the acceptance rate it
/// reports how much the fault plan actually degraded the run, so sweeps
/// can separate "rejected because the labeling is wrong" from "rejected
/// because input went missing".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultedAcceptance {
    /// Trials estimated.
    pub trials: usize,
    /// Trials whose every node voted accept.
    pub accepts: usize,
    /// Trials in which at least one node was missing input (and therefore
    /// voted [`NodeVerdict::InsufficientInput`](crate::fault::NodeVerdict)).
    pub degraded_trials: usize,
    /// Total missing messages over all trials.
    pub missing_messages: usize,
    /// Fault events aggregated over all trials.
    pub counts: FaultCounts,
}

impl FaultedAcceptance {
    /// The estimated acceptance probability under the fault plan.
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        self.accepts as f64 / self.trials as f64
    }

    /// The fraction of trials that lost at least one message.
    #[must_use]
    pub fn degradation(&self) -> f64 {
        self.degraded_trials as f64 / self.trials as f64
    }
}

/// Estimates `Pr[verifier accepts]` over `trials` independent rounds run
/// through the faulted engine — the fault-injection twin of
/// [`acceptance_probability`]. Per-trial seeds are **identical** to the
/// clean estimator's, so under a transparent plan the accept count (and
/// hence [`FaultedAcceptance::acceptance`]) is bit-identical to
/// [`acceptance_probability`] on the same inputs.
pub fn acceptance_under_faults<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
    plan: &FaultPlan,
) -> FaultedAcceptance {
    let mut scratch = RoundScratch::new();
    acceptance_under_faults_cached(
        scheme,
        config,
        labeling,
        trials,
        seed,
        plan,
        &mut scratch,
        &mut PrepCache::new(),
    )
}

/// Like [`acceptance_under_faults`] but reuses caller-owned scratch and a
/// [`PrepCache`] across labelings — the faulted member of the layer-4
/// estimator family, used by
/// [`measure::fault_tolerance_profile`](crate::measure::fault_tolerance_profile)
/// to sweep fault rates against one prepared instance.
#[allow(clippy::too_many_arguments)]
pub fn acceptance_under_faults_cached<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
    plan: &FaultPlan,
    scratch: &mut RoundScratch,
    cache: &mut PrepCache,
) -> FaultedAcceptance {
    let est = estimate_with(
        scheme,
        config,
        labeling,
        &RunSpec::trial(seed).with_faults(plan.clone()),
        &EstimateOpts::new(trials),
        scratch,
        cache,
    );
    FaultedAcceptance {
        trials: est.trials,
        accepts: est.accepts,
        degraded_trials: est.degraded_trials,
        missing_messages: est.missing_messages,
        counts: est.counts,
    }
}

/// Parallel twin of [`estimate`]: shards trials across threads, each with
/// its own [`RoundScratch`]. Per-trial seeds are identical to the serial
/// path, so the result is **bit-identical** to [`estimate`] for the same
/// inputs.
///
/// # Coverage
///
/// Every [`RunSpec`] the serial estimator accepts parallelises here, with
/// the same transcripts trial for trial:
///
/// * **multiround** (`spec.with_rounds(t)`) — each worker's shard
///   dispatches through the same `engine::run_trials` →
///   `run_multiround_trials` schedule; per-round streams are keyed by
///   `(trial seed, round)`, independent of which worker runs the trial;
/// * **faulted** (`spec.with_faults(plan)`) — fault decision words are
///   pure functions of `(seed, fault_seed, trial)`, so sharding cannot
///   move a fault; degraded/missing counts merge additively;
/// * **patterns and stream modes** — the spec's pattern/mode is cloned
///   into every worker verbatim;
/// * **cached** — each worker prepares through its own private
///   [`PrepCache`] (the cache is `Rc`-based and cannot cross threads;
///   preparation is a pure function of the labeling, so per-shard caches
///   and any shared-cache serial run produce identical transcripts).
///   `tests/parallel_identity.rs` pins serial ≡ parallel at 2/4/8
///   workers across all of the above. For sweeps over **many**
///   labelings, where a per-call cache would forfeit cross-candidate
///   amortisation, use [`sweep_par`], which keeps one long-lived cache
///   per worker.
///
/// `threads = None` uses the machine's available parallelism.
#[cfg(feature = "parallel")]
pub fn estimate_par<S: Rpls + Sync + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    spec: &RunSpec,
    opts: &EstimateOpts,
    threads: Option<usize>,
) -> Estimate {
    let trials = opts.trials;
    assert!(trials > 0, "need at least one trial");
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, trials);
    if workers == 1 {
        return estimate(scheme, config, labeling, spec, opts);
    }
    let name = scheme.name();
    let base = spec.seed();
    let partials: Vec<Estimate> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut scratch = RoundScratch::new();
                    // Each worker prepares the labeling for itself (the
                    // prepared state is `Rc`-shared and cannot cross
                    // threads); the preparation is a pure function of the
                    // labeling, so per-trial transcripts stay identical to
                    // serial — cached and uncached alike.
                    let prepared = scheme.prepare_cached(
                        config,
                        labeling,
                        trials.div_ceil(workers),
                        &mut PrepCache::new(),
                    );
                    // Strided sharding: worker w takes trials w, w+k, … —
                    // each shard runs as one batch with the same per-trial
                    // seeds the serial path derives.
                    let shard = (trials - w).div_ceil(workers);
                    estimate_prepared(
                        &*prepared,
                        config,
                        &spec,
                        shard,
                        &|i| trial_seed(base, w as u64 + i * workers as u64),
                        &mut scratch,
                        &mut Vec::new(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| {
                // Propagate the worker's panic with enough context to find
                // it (worker index, scheme) instead of the bare "worker"
                // message a plain `expect` would give.
                h.join().unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    panic!(
                        "estimate_par worker {w}/{workers} \
                         for scheme '{name}' panicked: {msg}"
                    )
                })
            })
            .collect()
    });
    let mut out = Estimate {
        trials,
        ..Estimate::default()
    };
    for p in partials {
        out.accepts += p.accepts;
        out.degraded_trials += p.degraded_trials;
        out.missing_messages += p.missing_messages;
        out.counts.absorb(p.counts);
    }
    out
}

/// Parallel twin of [`acceptance_probability`] — a shim over
/// [`estimate_par`] with a one-round, per-port spec; per-trial seeds are
/// identical to the serial path, so the estimate is **bit-identical** to
/// [`acceptance_probability`] for the same inputs.
///
/// `threads = None` uses the machine's available parallelism.
#[cfg(feature = "parallel")]
pub fn acceptance_probability_par<S: Rpls + Sync + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
) -> f64 {
    estimate_par(
        scheme,
        config,
        labeling,
        &RunSpec::trial(seed),
        &EstimateOpts::new(trials),
        threads,
    )
    .acceptance()
}

/// Parallel **sweep**: estimates every labeling in `labelings` under one
/// `spec`, sharding each candidate's trials across a pool of workers that
/// each keep one long-lived [`PrepCache`] for the whole sweep — the
/// parallel twin of calling [`estimate_with`] in a loop with one shared
/// cache.
///
/// This is the "shard one cache per worker" answer to the cache being
/// `Rc`-based (`!Sync`): a cache cannot cross threads, but a cache *owned
/// by* a worker thread amortises preparation across every candidate that
/// worker touches, exactly as the serial sweep's single cache does — an
/// adversary sweep re-prepares only the labels that changed between
/// candidates, in parallel. Worker `w` runs the strided trials
/// `w, w + k, …` of every candidate with the same per-trial seeds the
/// serial path derives, so each returned [`Estimate`] is **bit-identical**
/// to its serial counterpart for any cache state (preparation is a pure
/// function of label content; caches move work, never results —
/// `tests/parallel_identity.rs` pins the shared-cache-vs-per-worker-cache
/// identity at 2/4/8 workers).
///
/// `threads = None` uses the machine's available parallelism.
///
/// # Panics
///
/// Panics if `opts.trials` is 0, or propagates (with worker context) any
/// worker panic.
#[cfg(feature = "parallel")]
pub fn sweep_par<S: Rpls + Sync + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labelings: &[Labeling],
    spec: &RunSpec,
    opts: &EstimateOpts,
    threads: Option<usize>,
) -> Vec<Estimate> {
    let trials = opts.trials;
    assert!(trials > 0, "need at least one trial");
    let workers = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, trials);
    if workers == 1 || labelings.is_empty() {
        let mut scratch = RoundScratch::new();
        let mut cache = PrepCache::new();
        return labelings
            .iter()
            .map(|l| estimate_with(scheme, config, l, spec, opts, &mut scratch, &mut cache))
            .collect();
    }
    let name = scheme.name();
    let base = spec.seed();
    // partials[w][c] = worker w's shard of candidate c.
    let partials: Vec<Vec<Estimate>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut scratch = RoundScratch::new();
                    // One cache per worker, alive across the whole sweep:
                    // candidate c+1 re-prepares only the labels c didn't
                    // share.
                    let mut cache = PrepCache::new();
                    let shard = (trials - w).div_ceil(workers);
                    labelings
                        .iter()
                        .map(|labeling| {
                            let prepared = scheme.prepare_cached(
                                config,
                                labeling,
                                trials.div_ceil(workers),
                                &mut cache,
                            );
                            estimate_prepared(
                                &*prepared,
                                config,
                                &spec,
                                shard,
                                &|i| trial_seed(base, w as u64 + i * workers as u64),
                                &mut scratch,
                                &mut Vec::new(),
                            )
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| {
                h.join().unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    panic!(
                        "sweep_par worker {w}/{workers} \
                         for scheme '{name}' panicked: {msg}"
                    )
                })
            })
            .collect()
    });
    (0..labelings.len())
        .map(|c| {
            let mut out = Estimate {
                trials,
                ..Estimate::default()
            };
            for shard in &partials {
                out.accepts += shard[c].accepts;
                out.degraded_trials += shard[c].degraded_trials;
                out.missing_messages += shard[c].missing_messages;
                out.counts.absorb(shard[c].counts);
            }
            out
        })
        .collect()
}

/// Estimates `Pr[the t-round verifier accepts]` over `trials` independent
/// t-round trials — the multi-round twin of [`acceptance_probability`].
/// Trials use the **same** per-trial seeds as the one-round estimator, so
/// the `rounds = 1` estimate is bit-identical to
/// [`acceptance_probability`] on the same inputs (the schedule is
/// bit-identical to the one-round engine there; `tests/engine_golden.rs`
/// pins both).
///
/// # Panics
///
/// Panics if `rounds` or `trials` is 0.
pub fn multiround_acceptance_probability<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    rounds: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut scratch = RoundScratch::new();
    multiround_acceptance_probability_cached(
        scheme,
        config,
        labeling,
        rounds,
        trials,
        seed,
        &mut scratch,
        &mut PrepCache::new(),
    )
}

/// Like [`multiround_acceptance_probability`] but reuses caller-owned
/// scratch and a [`PrepCache`] across labelings, so multi-round sweeps
/// amortise preparation exactly as the one-round
/// [`acceptance_probability_cached`] does (the PR 2–4 layers — prepared
/// instances, batched trials, shared label parses — all carry over; only
/// the per-`t` slice schedules are per-instance).
///
/// # Panics
///
/// Panics if `rounds` or `trials` is 0.
#[allow(clippy::too_many_arguments)]
pub fn multiround_acceptance_probability_cached<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    rounds: usize,
    trials: usize,
    seed: u64,
    scratch: &mut RoundScratch,
    cache: &mut PrepCache,
) -> f64 {
    estimate_with(
        scheme,
        config,
        labeling,
        &RunSpec::trial(seed).with_rounds(rounds),
        &EstimateOpts::new(trials),
        scratch,
        cache,
    )
    .acceptance()
}

/// Estimates `Pr[the t-round verifier accepts]` under a
/// [`MessagePattern`] — the message-pattern twin of
/// [`multiround_acceptance_probability`], with the same per-trial seeds
/// (so [`MessagePattern::PerPort`] reproduces it bit-for-bit).
///
/// # Panics
///
/// Panics if `rounds` or `trials` is 0.
pub fn multiround_acceptance_probability_patterned<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    rounds: usize,
    trials: usize,
    seed: u64,
    pattern: MessagePattern,
) -> f64 {
    estimate(
        scheme,
        config,
        labeling,
        &RunSpec::trial(seed)
            .with_rounds(rounds)
            .with_pattern(pattern),
        &EstimateOpts::new(trials),
    )
    .acceptance()
}

/// The distribution of verdict-decision rounds over a block of t-round
/// trials: how soon the early-rejecting multi-round verifier settles, per
/// trial. Produced by [`rounds_to_reject_profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectionProfile {
    /// The schedule length `t` the trials ran with.
    pub rounds: usize,
    /// Trials that accepted (their verdict settles at round `rounds` by
    /// definition — the last chunk must arrive before a verifier can say
    /// yes).
    pub accepts: usize,
    /// `rejects_at[r]` counts the rejecting trials whose verdict became
    /// known in round `r + 1` (1-based): parse- and width-level garbage
    /// lands in round 1, a tampered replica in the round whose slice
    /// covers the tampering, an inner-verifier rejection in round
    /// `rounds`. The histogram holds at most 2²⁰ buckets — for hostile
    /// schedules with more rounds than that, later decision rounds are
    /// clamped into the last bucket (see [`rounds_to_reject_profile`]),
    /// so the derived statistics are lower bounds there.
    pub rejects_at: Vec<usize>,
}

impl RejectionProfile {
    /// Total rejecting trials.
    #[must_use]
    pub fn rejects(&self) -> usize {
        self.rejects_at.iter().sum()
    }

    /// Total trials profiled.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.accepts + self.rejects()
    }

    /// The smallest 1-based round by which at least `q` (0 < q ≤ 1) of the
    /// rejecting trials were decided — `quantile_reject_round(0.5)` is the
    /// median rejection round. `None` when no trial rejected.
    #[must_use]
    pub fn quantile_reject_round(&self, q: f64) -> Option<usize> {
        let rejects = self.rejects();
        if rejects == 0 {
            return None;
        }
        let need = (q * rejects as f64).ceil().max(1.0) as usize;
        let mut seen = 0usize;
        for (r, &count) in self.rejects_at.iter().enumerate() {
            seen += count;
            if seen >= need {
                return Some(r + 1);
            }
        }
        Some(self.rounds)
    }

    /// Mean 1-based rejection round over rejecting trials, `None` when no
    /// trial rejected.
    #[must_use]
    pub fn mean_reject_round(&self) -> Option<f64> {
        let rejects = self.rejects();
        if rejects == 0 {
            return None;
        }
        let total: usize = self
            .rejects_at
            .iter()
            .enumerate()
            .map(|(r, &count)| (r + 1) * count)
            .sum();
        Some(total as f64 / rejects as f64)
    }
}

/// Profiles how many rounds the t-round verifier needs before the verdict
/// is known, over `trials` trials with the estimator's per-trial seeds —
/// the rounds-to-reject histogram of the trade-off experiments. Uses the
/// same seeds as [`multiround_acceptance_probability`], so
/// `accepts / trials` equals that estimate exactly.
///
/// The histogram allocates one bucket per round up to 2²⁰; a hostile
/// `rounds` beyond that (the engine accepts any `t`, including
/// `usize::MAX`) clamps later decision rounds into the last bucket rather
/// than allocating per round, so [`RejectionProfile::mean_reject_round`]
/// and friends become lower bounds for such schedules.
///
/// # Panics
///
/// Panics if `rounds` or `trials` is 0.
pub fn rounds_to_reject_profile<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    rounds: usize,
    trials: usize,
    seed: u64,
) -> RejectionProfile {
    assert!(trials > 0, "need at least one trial");
    assert!(rounds > 0, "a schedule needs at least one round");
    let mut scratch = RoundScratch::new();
    let prepared = scheme.prepare_cached(config, labeling, trials, &mut PrepCache::new());
    // Hostile round counts (up to usize::MAX) must not allocate a
    // histogram slot per round: decided rounds past the cap are clamped
    // into the last bucket.
    let cap = rounds.min(1 << 20);
    let mut profile = RejectionProfile {
        rounds,
        accepts: 0,
        rejects_at: vec![0; cap],
    };
    let mut seeds_buf: Vec<u64> = Vec::new();
    let mut next = 0usize;
    while next < trials {
        let chunk = TRIAL_CHUNK.min(trials - next);
        seeds_buf.clear();
        seeds_buf.extend((next..next + chunk).map(|t| trial_seed(seed, t as u64)));
        next += chunk;
        engine::run_multiround_trials_batched_with(
            &*prepared,
            config,
            &seeds_buf,
            rounds,
            StreamMode::EdgeIndependent,
            &mut scratch,
            &mut |summary| {
                if summary.accepted {
                    profile.accepts += 1;
                } else {
                    let bucket = summary.decided_round.clamp(1, cap) - 1;
                    profile.rejects_at[bucket] += 1;
                }
            },
        );
    }
    profile
}

/// One boosted verification: run `repetitions` independent rounds and
/// output the majority verdict (ties count as reject).
///
/// # Panics
///
/// Panics if `repetitions` is 0.
pub fn boosted_accepts<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    repetitions: usize,
    seed: u64,
) -> bool {
    let mut scratch = RoundScratch::new();
    boosted_accepts_with(scheme, config, labeling, repetitions, seed, &mut scratch)
}

/// Like [`boosted_accepts`] but reuses caller-owned scratch.
pub fn boosted_accepts_with<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    repetitions: usize,
    seed: u64,
    scratch: &mut RoundScratch,
) -> bool {
    boosted_accepts_cached(
        scheme,
        config,
        labeling,
        repetitions,
        seed,
        scratch,
        &mut PrepCache::new(),
    )
}

/// Like [`boosted_accepts_with`] but additionally reuses a caller-owned
/// [`PrepCache`] across labelings — see
/// [`acceptance_probability_cached`] for the sweep-amortisation contract.
#[allow(clippy::too_many_arguments)]
pub fn boosted_accepts_cached<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    repetitions: usize,
    seed: u64,
    scratch: &mut RoundScratch,
    cache: &mut PrepCache,
) -> bool {
    let prepared = scheme.prepare_cached(config, labeling, repetitions, cache);
    boosted_accepts_prepared(
        &*prepared,
        config,
        repetitions,
        seed,
        scratch,
        &mut Vec::new(),
    )
}

/// The boosted verdict against an already-prepared scheme.
fn boosted_accepts_prepared(
    prepared: &dyn PreparedRpls,
    config: &Configuration,
    repetitions: usize,
    seed: u64,
    scratch: &mut RoundScratch,
    seeds_buf: &mut Vec<u64>,
) -> bool {
    assert!(repetitions > 0, "need at least one repetition");
    let accepts = count_accepts(
        prepared,
        config,
        repetitions,
        &|r| mix_seed(seed, r, TAG_BOOST),
        MessagePattern::PerPort,
        scratch,
        seeds_buf,
    );
    2 * accepts > repetitions
}

/// Estimates the acceptance probability of the *boosted* verifier.
pub fn boosted_acceptance_probability<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    repetitions: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let mut scratch = RoundScratch::new();
    // One preparation and one seeds buffer cover the whole trials ×
    // repetitions sweep.
    let prepared = scheme.prepare_cached(
        config,
        labeling,
        trials.saturating_mul(repetitions),
        &mut PrepCache::new(),
    );
    let mut seeds_buf = Vec::new();
    let accepts = (0..trials)
        .filter(|&t| {
            boosted_accepts_prepared(
                &*prepared,
                config,
                repetitions,
                mix_seed(seed, t as u64, TAG_BOOST_TRIALS),
                &mut scratch,
                &mut seeds_buf,
            )
        })
        .count();
    accepts as f64 / trials as f64
}

/// A two-sided Wald-style confidence radius for an estimated probability
/// `p_hat` over `trials` samples: `2·sqrt(p̂(1−p̂)/n) + 1/n`. The
/// z-multiplier 2 (rounded up from the exact 95% value 1.96) and the `1/n`
/// continuity pad make the radius deliberately conservative — it is used by
/// tests to assert probabilistic bounds without flaking.
#[must_use]
pub fn confidence_radius(p_hat: f64, trials: usize) -> f64 {
    assert!(trials > 0, "need at least one trial");
    2.0 * (p_hat * (1.0 - p_hat) / trials as f64).sqrt() + 1.0 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{CertView, ErrorSides, RandView};
    use rand::Rng;
    use rpls_bits::BitString;
    use rpls_graph::{generators, NodeId, Port};

    /// Node 0 accepts with probability ~ 1/2 (its first received bit),
    /// everyone else always accepts. Global acceptance ≈ 1/2.
    struct CoinAtNodeZero;

    impl Rpls for CoinAtNodeZero {
        fn name(&self) -> String {
            "coin".into()
        }
        fn error_sides(&self) -> ErrorSides {
            ErrorSides::TwoSided
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, _view: &CertView<'_>, _port: Port, rng: &mut dyn Rng) -> BitString {
            BitString::from_bools([(rng.next_u64() & 1) == 1])
        }
        fn verify(&self, view: &RandView<'_>) -> bool {
            if view.local.node != NodeId::new(0) {
                return true;
            }
            view.received.get(0).bit(0).unwrap_or(false)
        }
    }

    #[test]
    fn acceptance_estimate_near_half() {
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let p = acceptance_probability(&CoinAtNodeZero, &config, &labeling, 2000, 11);
        assert!((p - 0.5).abs() < 0.05, "p = {p}");
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_estimate_is_bit_identical_to_serial() {
        let config = Configuration::plain(generators::cycle(7));
        let labeling = Labeling::empty(7);
        for trials in [1usize, 7, 500] {
            for seed in [0u64, 3, 99] {
                let serial =
                    acceptance_probability(&CoinAtNodeZero, &config, &labeling, trials, seed);
                for threads in [None, Some(1), Some(2), Some(5), Some(64)] {
                    let par = acceptance_probability_par(
                        &CoinAtNodeZero,
                        &config,
                        &labeling,
                        trials,
                        seed,
                        threads,
                    );
                    assert!(
                        serial == par,
                        "trials {trials} seed {seed} threads {threads:?}: {serial} vs {par}"
                    );
                }
            }
        }
    }

    /// Accepts with probability ~3/4 at node 0: two received bits, rejects
    /// only if both are 0... i.e. accept iff bit0 | bit1.
    struct ThreeQuarters;

    impl Rpls for ThreeQuarters {
        fn name(&self) -> String {
            "three-quarters".into()
        }
        fn error_sides(&self) -> ErrorSides {
            ErrorSides::TwoSided
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, _view: &CertView<'_>, _port: Port, rng: &mut dyn Rng) -> BitString {
            BitString::from_bools([(rng.next_u64() & 1) == 1])
        }
        fn verify(&self, view: &RandView<'_>) -> bool {
            if view.local.node != NodeId::new(0) {
                return true;
            }
            view.received.iter().any(|c| c.bit(0).unwrap_or(false))
        }
    }

    #[test]
    fn boosting_amplifies_above_half_probabilities() {
        // Per-round acceptance ≈ 3/4 > 1/2, so majority-of-15 should push
        // the acceptance probability well above 0.9.
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let single = acceptance_probability(&ThreeQuarters, &config, &labeling, 1500, 3);
        assert!((single - 0.75).abs() < 0.06, "single = {single}");
        let boosted =
            boosted_acceptance_probability(&ThreeQuarters, &config, &labeling, 15, 400, 3);
        assert!(boosted > 0.95, "boosted = {boosted}");
    }

    #[test]
    fn boosting_suppresses_below_half_probabilities() {
        // Per-round acceptance ≈ 1/2 won't boost; use the complementary
        // scheme: accept iff both bits set (≈ 1/4 < 1/2) via majority.
        struct OneQuarter;
        impl Rpls for OneQuarter {
            fn name(&self) -> String {
                "one-quarter".into()
            }
            fn error_sides(&self) -> ErrorSides {
                ErrorSides::TwoSided
            }
            fn label(&self, config: &Configuration) -> Labeling {
                Labeling::empty(config.node_count())
            }
            fn certify(&self, _v: &CertView<'_>, _p: Port, rng: &mut dyn Rng) -> BitString {
                BitString::from_bools([(rng.next_u64() & 1) == 1])
            }
            fn verify(&self, view: &RandView<'_>) -> bool {
                if view.local.node != NodeId::new(0) {
                    return true;
                }
                view.received.iter().all(|c| c.bit(0).unwrap_or(false))
            }
        }
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let boosted = boosted_acceptance_probability(&OneQuarter, &config, &labeling, 15, 400, 9);
        assert!(boosted < 0.05, "boosted = {boosted}");
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let config = Configuration::plain(generators::cycle(6));
        let labeling = Labeling::empty(6);
        let fresh = acceptance_probability(&CoinAtNodeZero, &config, &labeling, 300, 5);
        let mut scratch = RoundScratch::new();
        // Run something else first so the scratch arrives dirty.
        let _ =
            acceptance_probability_with(&ThreeQuarters, &config, &labeling, 50, 1, &mut scratch);
        let reused =
            acceptance_probability_with(&CoinAtNodeZero, &config, &labeling, 300, 5, &mut scratch);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn multiround_t1_estimate_is_bit_identical_to_one_round() {
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        for (trials, seed) in [(1usize, 0u64), (500, 7), (2000, 42)] {
            let one = acceptance_probability(&CoinAtNodeZero, &config, &labeling, trials, seed);
            let multi = multiround_acceptance_probability(
                &CoinAtNodeZero,
                &config,
                &labeling,
                1,
                trials,
                seed,
            );
            assert!(
                one == multi,
                "trials {trials} seed {seed}: {one} vs {multi}"
            );
        }
    }

    #[test]
    fn multiround_split_estimate_is_t_invariant_for_default_schemes() {
        // The default certificate-splitting schedule re-times the same
        // one-round trial, so its estimate must not depend on t at all.
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let reference =
            multiround_acceptance_probability(&CoinAtNodeZero, &config, &labeling, 1, 800, 3);
        for rounds in [2usize, 7, 64] {
            let p = multiround_acceptance_probability(
                &CoinAtNodeZero,
                &config,
                &labeling,
                rounds,
                800,
                3,
            );
            assert!(p == reference, "t {rounds}: {p} vs {reference}");
        }
    }

    #[test]
    fn rejection_profile_accounts_every_trial() {
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let trials = 600;
        let profile = rounds_to_reject_profile(&CoinAtNodeZero, &config, &labeling, 4, trials, 11);
        assert_eq!(profile.trials(), trials);
        assert_eq!(profile.rounds, 4);
        // The default splitting schedule only decides at the last round.
        assert_eq!(profile.rejects_at[0..3], [0, 0, 0]);
        assert!(profile.rejects() > 0 && profile.accepts > 0);
        assert_eq!(profile.quantile_reject_round(0.5), Some(4));
        assert_eq!(profile.mean_reject_round(), Some(4.0));
        let p = profile.accepts as f64 / trials as f64;
        let estimate =
            multiround_acceptance_probability(&CoinAtNodeZero, &config, &labeling, 4, trials, 11);
        assert!(p == estimate, "profile accepts must match the estimator");
    }

    #[test]
    fn rejection_profile_of_all_accepting_scheme_has_no_rejects() {
        let config = Configuration::plain(generators::cycle(4));
        let labeling = Labeling::empty(4);
        struct AlwaysYes;
        impl Rpls for AlwaysYes {
            fn name(&self) -> String {
                "yes".into()
            }
            fn label(&self, config: &Configuration) -> Labeling {
                Labeling::empty(config.node_count())
            }
            fn certify(&self, _v: &CertView<'_>, _p: Port, _r: &mut dyn Rng) -> BitString {
                BitString::new()
            }
            fn verify(&self, _view: &RandView<'_>) -> bool {
                true
            }
        }
        let profile = rounds_to_reject_profile(&AlwaysYes, &config, &labeling, 3, 50, 0);
        assert_eq!(profile.accepts, 50);
        assert_eq!(profile.rejects(), 0);
        assert_eq!(profile.quantile_reject_round(0.5), None);
        assert_eq!(profile.mean_reject_round(), None);
    }

    #[test]
    fn estimate_matches_legacy_estimators_bit_for_bit() {
        use crate::fault::FaultSpec;
        let config = Configuration::plain(generators::cycle(6));
        let labeling = Labeling::empty(6);
        let (trials, seed) = (700usize, 13u64);
        let opts = EstimateOpts::new(trials);

        let plain = estimate(
            &CoinAtNodeZero,
            &config,
            &labeling,
            &RunSpec::trial(seed),
            &opts,
        );
        assert_eq!(plain.trials, trials);
        assert_eq!(plain.counts, FaultCounts::default());
        assert!(
            plain.acceptance()
                == acceptance_probability(&CoinAtNodeZero, &config, &labeling, trials, seed)
        );

        let patterned = estimate(
            &CoinAtNodeZero,
            &config,
            &labeling,
            &RunSpec::trial(seed).with_pattern(MessagePattern::Broadcast),
            &opts,
        );
        assert!(
            patterned.acceptance()
                == acceptance_probability_patterned(
                    &CoinAtNodeZero,
                    &config,
                    &labeling,
                    trials,
                    seed,
                    MessagePattern::Broadcast,
                )
        );

        let multi = estimate(
            &CoinAtNodeZero,
            &config,
            &labeling,
            &RunSpec::trial(seed).with_rounds(5),
            &opts,
        );
        assert!(
            multi.acceptance()
                == multiround_acceptance_probability(
                    &CoinAtNodeZero,
                    &config,
                    &labeling,
                    5,
                    trials,
                    seed,
                )
        );

        let plan = FaultPlan::new(FaultSpec::transparent().with_drop(0.2), 5);
        let faulted = estimate(
            &CoinAtNodeZero,
            &config,
            &labeling,
            &RunSpec::trial(seed).with_faults(plan.clone()),
            &opts,
        );
        let legacy =
            acceptance_under_faults(&CoinAtNodeZero, &config, &labeling, trials, seed, &plan);
        assert_eq!(faulted.accepts, legacy.accepts);
        assert_eq!(faulted.degraded_trials, legacy.degraded_trials);
        assert_eq!(faulted.missing_messages, legacy.missing_messages);
        assert_eq!(faulted.counts, legacy.counts);
    }

    #[test]
    fn beacon_estimate_is_trial_estimate_of_derived_seed() {
        let config = Configuration::plain(generators::cycle(6));
        let labeling = Labeling::empty(6);
        let opts = EstimateOpts::new(400);
        let beacon = estimate(
            &CoinAtNodeZero,
            &config,
            &labeling,
            &RunSpec::beacon(99, 0xFACE),
            &opts,
        );
        let trial = estimate(
            &CoinAtNodeZero,
            &config,
            &labeling,
            &RunSpec::trial(crate::rng::beacon_seed(99, 0xFACE)),
            &opts,
        );
        assert_eq!(beacon, trial);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn estimate_par_is_bit_identical_to_serial_estimate() {
        let config = Configuration::plain(generators::cycle(7));
        let labeling = Labeling::empty(7);
        let spec = RunSpec::trial(21).with_rounds(3);
        let opts = EstimateOpts::new(333);
        let serial = estimate(&CoinAtNodeZero, &config, &labeling, &spec, &opts);
        for threads in [None, Some(1), Some(4), Some(13)] {
            let par = estimate_par(&CoinAtNodeZero, &config, &labeling, &spec, &opts, threads);
            assert_eq!(serial, par, "threads {threads:?}");
        }
    }

    #[test]
    fn confidence_radius_shrinks_with_trials() {
        assert!(confidence_radius(0.5, 10_000) < confidence_radius(0.5, 100));
        assert!(confidence_radius(0.0, 100) > 0.0);
    }
}
