//! Monte-Carlo acceptance estimation and error boosting (footnote 1).
//!
//! The paper fixes the success probabilities at 2/3 (two-sided) and 1/2
//! (one-sided rejection) and notes that "we can boost the probability of
//! correctness to 1 − δ by repeating the verification procedure
//! O(log(1/δ)) times independently and outputting the majority of
//! outcomes." [`boosted_accepts`] implements exactly that; the experiment
//! E-B measures the promised exponential decay.

use crate::engine::{self, mix_seed};
use crate::labeling::Labeling;
use crate::scheme::Rpls;
use crate::state::Configuration;

/// Estimates `Pr[verifier accepts]` over `trials` independent rounds.
pub fn acceptance_probability<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let accepts = (0..trials)
        .filter(|&t| {
            engine::run_randomized(scheme, config, labeling, mix_seed(seed, t as u64, 0))
                .outcome
                .accepted()
        })
        .count();
    accepts as f64 / trials as f64
}

/// One boosted verification: run `repetitions` independent rounds and
/// output the majority verdict (ties count as reject).
///
/// # Panics
///
/// Panics if `repetitions` is 0.
pub fn boosted_accepts<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    repetitions: usize,
    seed: u64,
) -> bool {
    assert!(repetitions > 0, "need at least one repetition");
    let accepts = (0..repetitions)
        .filter(|&r| {
            engine::run_randomized(scheme, config, labeling, mix_seed(seed, r as u64, 1))
                .outcome
                .accepted()
        })
        .count();
    2 * accepts > repetitions
}

/// Estimates the acceptance probability of the *boosted* verifier.
pub fn boosted_acceptance_probability<S: Rpls + ?Sized>(
    scheme: &S,
    config: &Configuration,
    labeling: &Labeling,
    repetitions: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let accepts = (0..trials)
        .filter(|&t| {
            boosted_accepts(
                scheme,
                config,
                labeling,
                repetitions,
                mix_seed(seed, t as u64, 2),
            )
        })
        .count();
    accepts as f64 / trials as f64
}

/// A two-sided Wilson-style confidence radius for an estimated probability
/// `p_hat` over `trials` samples at roughly 95% confidence — used by tests
/// to assert probabilistic bounds without flaking.
#[must_use]
pub fn confidence_radius(p_hat: f64, trials: usize) -> f64 {
    assert!(trials > 0, "need at least one trial");
    // 1.96 * sqrt(p(1-p)/n), padded slightly.
    2.0 * (p_hat * (1.0 - p_hat) / trials as f64).sqrt() + 1.0 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{CertView, ErrorSides, RandView};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rpls_bits::BitString;
    use rpls_graph::{generators, NodeId, Port};

    /// Node 0 accepts with probability ~ 1/2 (its first received bit),
    /// everyone else always accepts. Global acceptance ≈ 1/2.
    struct CoinAtNodeZero;

    impl Rpls for CoinAtNodeZero {
        fn name(&self) -> String {
            "coin".into()
        }
        fn error_sides(&self) -> ErrorSides {
            ErrorSides::TwoSided
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, _view: &CertView<'_>, _port: Port, rng: &mut StdRng) -> BitString {
            BitString::from_bools([(rng.next_u64() & 1) == 1])
        }
        fn verify(&self, view: &RandView<'_>) -> bool {
            if view.local.node != NodeId::new(0) {
                return true;
            }
            view.received[0].bit(0).unwrap_or(false)
        }
    }

    #[test]
    fn acceptance_estimate_near_half() {
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let p = acceptance_probability(&CoinAtNodeZero, &config, &labeling, 2000, 11);
        assert!((p - 0.5).abs() < 0.05, "p = {p}");
    }

    /// Accepts with probability ~3/4 at node 0: two received bits, rejects
    /// only if both are 0... i.e. accept iff bit0 | bit1.
    struct ThreeQuarters;

    impl Rpls for ThreeQuarters {
        fn name(&self) -> String {
            "three-quarters".into()
        }
        fn error_sides(&self) -> ErrorSides {
            ErrorSides::TwoSided
        }
        fn label(&self, config: &Configuration) -> Labeling {
            Labeling::empty(config.node_count())
        }
        fn certify(&self, _view: &CertView<'_>, _port: Port, rng: &mut StdRng) -> BitString {
            BitString::from_bools([(rng.next_u64() & 1) == 1])
        }
        fn verify(&self, view: &RandView<'_>) -> bool {
            if view.local.node != NodeId::new(0) {
                return true;
            }
            view.received
                .iter()
                .any(|c| c.bit(0).unwrap_or(false))
        }
    }

    #[test]
    fn boosting_amplifies_above_half_probabilities() {
        // Per-round acceptance ≈ 3/4 > 1/2, so majority-of-15 should push
        // the acceptance probability well above 0.9.
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let single = acceptance_probability(&ThreeQuarters, &config, &labeling, 1500, 3);
        assert!((single - 0.75).abs() < 0.06, "single = {single}");
        let boosted =
            boosted_acceptance_probability(&ThreeQuarters, &config, &labeling, 15, 400, 3);
        assert!(boosted > 0.95, "boosted = {boosted}");
    }

    #[test]
    fn boosting_suppresses_below_half_probabilities() {
        // Per-round acceptance ≈ 1/2 won't boost; use the complementary
        // scheme: accept iff both bits set (≈ 1/4 < 1/2) via majority.
        struct OneQuarter;
        impl Rpls for OneQuarter {
            fn name(&self) -> String {
                "one-quarter".into()
            }
            fn error_sides(&self) -> ErrorSides {
                ErrorSides::TwoSided
            }
            fn label(&self, config: &Configuration) -> Labeling {
                Labeling::empty(config.node_count())
            }
            fn certify(&self, _v: &CertView<'_>, _p: Port, rng: &mut StdRng) -> BitString {
                BitString::from_bools([(rng.next_u64() & 1) == 1])
            }
            fn verify(&self, view: &RandView<'_>) -> bool {
                if view.local.node != NodeId::new(0) {
                    return true;
                }
                view.received
                    .iter()
                    .all(|c| c.bit(0).unwrap_or(false))
            }
        }
        let config = Configuration::plain(generators::cycle(5));
        let labeling = Labeling::empty(5);
        let boosted = boosted_acceptance_probability(&OneQuarter, &config, &labeling, 15, 400, 9);
        assert!(boosted < 0.05, "boosted = {boosted}");
    }

    #[test]
    fn confidence_radius_shrinks_with_trials() {
        assert!(confidence_radius(0.5, 10_000) < confidence_radius(0.5, 100));
        assert!(confidence_radius(0.0, 100) > 0.0);
    }
}
