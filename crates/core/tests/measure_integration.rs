//! Integration tests for verification-complexity measurement across the
//! public core API (Definition 2.1 in executable form).

use rpls_core::measure;
use rpls_core::prelude::*;
use rpls_graph::generators;

/// A tunable scheme whose labels are n bits and whose behaviour is fixed,
/// for exercising the measurement plumbing.
struct WideLabels;

impl Pls for WideLabels {
    fn name(&self) -> String {
        "wide".into()
    }
    fn label(&self, config: &Configuration) -> Labeling {
        Labeling::new(vec![
            rpls_bits::BitString::zeros(config.node_count());
            config.node_count()
        ])
    }
    fn verify(&self, _view: &DetView<'_>) -> bool {
        true
    }
}

#[test]
fn deterministic_complexity_is_max_over_family() {
    let family: Vec<Configuration> = [5usize, 17, 9]
        .iter()
        .map(|&n| Configuration::plain(generators::cycle(n)))
        .collect();
    assert_eq!(measure::deterministic_complexity(&WideLabels, &family), 17);
}

#[test]
fn randomized_complexity_of_compiled_scheme_tracks_kappa() {
    let family: Vec<Configuration> = [8usize, 16, 32]
        .iter()
        .map(|&n| Configuration::plain(generators::cycle(n)))
        .collect();
    let compiled = CompiledRpls::new(WideLabels);
    let measured = measure::randomized_complexity(&compiled, &family, 3, 0);
    // κ = 32 (the largest family member), so the certificate is the
    // predicted size for κ = 32.
    assert_eq!(
        measured,
        CompiledRpls::<WideLabels>::certificate_bits_for_kappa(32)
    );
}

#[test]
fn complexity_row_reporting() {
    let row = measure::ComplexityRow {
        n: 64,
        deterministic_bits: 96,
        randomized_bits: 18,
    };
    assert!(row.compression() > 5.0);
}

#[test]
fn engine_total_bits_accounting() {
    use rpls_core::engine;
    let config = Configuration::plain(generators::cycle(6));
    let compiled = CompiledRpls::new(WideLabels);
    let labels = compiled.label(&config);
    let rec = engine::run_randomized(&compiled, &config, &labels, 1);
    // 6 nodes × degree 2 certificates; all the same size.
    assert_eq!(
        rec.total_certificate_bits(),
        12 * rec.max_certificate_bits()
    );
}

#[test]
fn boosted_verification_is_deterministic_per_seed() {
    use rpls_core::stats;
    let config = Configuration::plain(generators::cycle(5));
    let compiled = CompiledRpls::new(WideLabels);
    let labels = compiled.label(&config);
    let a = stats::boosted_accepts(&compiled, &config, &labels, 5, 42);
    let b = stats::boosted_accepts(&compiled, &config, &labels, 5, 42);
    assert_eq!(a, b);
    assert!(a, "honest labels on a one-sided scheme always accept");
}
