//! Property-based tests for the fingerprinting substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls_bits::BitString;
use rpls_fingerprint::prime::{is_prime, next_prime, protocol_prime};
use rpls_fingerprint::{Barrett, BitPolynomial, EqProtocol, Fp};

proptest! {
    /// Barrett multiply-shift reduction agrees with the naive `u128 %`
    /// reference on random moduli up to 62 bits (primality not required —
    /// Barrett is a pure reduction) and random operands.
    #[test]
    fn barrett_mul_matches_naive_reference(
        m_raw in 2u64..(1 << 62),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let barrett = Barrett::new(m_raw);
        let (a, b) = (a % m_raw, b % m_raw);
        prop_assert_eq!(
            barrett.mul_mod(a, b),
            rpls_fingerprint::prime::mul_mod(a, b, m_raw),
            "a={} b={} m={}", a, b, m_raw
        );
        // The raw reducer must also agree on arbitrary 128-bit inputs
        // (products are just the special case below m²).
        let wide = (u128::from(a) << 64) ^ u128::from(b);
        prop_assert_eq!(
            u128::from(barrett.reduce(wide)),
            wide % u128::from(m_raw)
        );
    }

    /// Barrett square-and-multiply agrees with the naive reference for
    /// random bases and exponents over random 62-bit moduli.
    #[test]
    fn barrett_pow_matches_naive_reference(
        m_raw in 2u64..(1 << 62),
        base in any::<u64>(),
        exp in any::<u64>(),
    ) {
        let barrett = Barrett::new(m_raw);
        prop_assert_eq!(
            barrett.pow_mod(base, exp),
            rpls_fingerprint::prime::pow_mod(base, exp, m_raw),
            "base={} exp={} m={}", base, exp, m_raw
        );
    }
    /// Field axioms over random elements of random small prime fields.
    #[test]
    fn field_axioms(p_seed in 3u64..5000, a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let p = next_prime(p_seed);
        let (fa, fb, fc) = (Fp::new(a, p), Fp::new(b, p), Fp::new(c, p));
        // Commutativity and associativity.
        prop_assert_eq!(fa + fb, fb + fa);
        prop_assert_eq!(fa * fb, fb * fa);
        prop_assert_eq!((fa + fb) + fc, fa + (fb + fc));
        prop_assert_eq!((fa * fb) * fc, fa * (fb * fc));
        // Distributivity.
        prop_assert_eq!(fa * (fb + fc), fa * fb + fa * fc);
        // Inverses.
        prop_assert_eq!(fa - fa, Fp::zero(p));
        if fa.value() != 0 {
            prop_assert_eq!(fa * fa.inverse(), Fp::one(p));
        }
    }

    /// Fermat's little theorem on random field elements.
    #[test]
    fn fermat_little_theorem(p_seed in 3u64..2000, a in 1u64..u64::MAX) {
        let p = next_prime(p_seed);
        let fa = Fp::new(a, p);
        prop_assume!(fa.value() != 0);
        prop_assert_eq!(fa.pow(p - 1), Fp::one(p));
    }

    /// The collision count of two random distinct strings never exceeds the
    /// degree bound λ − 1 — exhaustively over the whole field.
    #[test]
    fn collision_count_respects_degree_bound(
        a in proptest::collection::vec(any::<bool>(), 2..48),
        flips in proptest::collection::vec(any::<usize>(), 1..5)
    ) {
        let lambda = a.len();
        let mut b = a.clone();
        for f in flips {
            let i = f % lambda;
            b[i] = !b[i];
        }
        prop_assume!(a != b);
        let p = protocol_prime(lambda);
        let pa = BitPolynomial::from_bits(&BitString::from_bools(a), p);
        let pb = BitPolynomial::from_bits(&BitString::from_bools(b), p);
        let collisions = (0..p)
            .filter(|&x| pa.eval(Fp::new(x, p)) == pb.eval(Fp::new(x, p)))
            .count();
        prop_assert!(collisions < lambda, "collisions {} >= {}", collisions, lambda);
    }

    /// Protocol completeness at arbitrary lengths and seeds.
    #[test]
    fn protocol_one_sidedness(len in 1usize..200, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let s = BitString::from_bools((0..len).map(|_| rng.random_bool(0.5)));
        let proto = EqProtocol::for_length(len);
        for _ in 0..8 {
            let msg = proto.alice_message(&s, &mut rng);
            prop_assert!(proto.bob_accepts(&s, &msg));
            prop_assert!(msg.point < proto.modulus());
        }
    }

    /// Message packing round-trips for every protocol size.
    #[test]
    fn message_bit_packing(len in 1usize..500, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let s = BitString::from_bools((0..len).map(|_| rng.random_bool(0.5)));
        let proto = EqProtocol::for_length(len);
        let msg = proto.alice_message(&s, &mut rng);
        let packed = msg.to_bits(proto.modulus());
        prop_assert_eq!(packed.len(), proto.message_bits());
        let unpacked = rpls_fingerprint::EqMessage::from_bits(&packed, proto.modulus()).unwrap();
        prop_assert_eq!(unpacked, msg);
    }

    /// next_prime really returns the next prime.
    #[test]
    fn next_prime_is_minimal(n in 2u64..100_000) {
        let p = next_prime(n);
        prop_assert!(p >= n);
        prop_assert!(is_prime(p));
        for q in n..p {
            prop_assert!(!is_prime(q));
        }
    }
}
