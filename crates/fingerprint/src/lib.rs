//! Finite-field polynomial fingerprints and the 2-party equality protocol.
//!
//! This crate implements the communication-complexity substrate behind
//! Theorem 3.1 of *Randomized Proof-Labeling Schemes*: the randomized
//! equality protocol of Lemma A.1. A λ-bit string is interpreted as a
//! polynomial of degree `< λ` over `GF(p)` for a prime `3λ < p < 6λ`; Alice
//! sends `(x, A(x))` for a uniform `x ∈ GF(p)` and Bob accepts iff
//! `B(x) = A(x)`. Equal strings always agree; distinct strings collide with
//! probability at most `(λ−1)/p < 1/3`.
//!
//! The building blocks — [`prime`] testing (deterministic Miller–Rabin for
//! `u64`), the dynamic prime [`field`], and bit-string [`poly`]nomials — are
//! exposed on their own because the Theorem 3.1 compiler in `rpls-core`
//! reuses them to fingerprint labels.
//!
//! # Examples
//!
//! ```
//! use rpls_fingerprint::eq::{EqProtocol, EqMessage};
//! use rpls_bits::BitString;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let a = BitString::from_bools([true, false, true, true]);
//! let b = a.clone();
//! let proto = EqProtocol::for_length(a.len());
//! let mut rng = StdRng::seed_from_u64(1);
//! let msg: EqMessage = proto.alice_message(&a, &mut rng);
//! assert!(proto.bob_accepts(&b, &msg));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eq;
pub mod field;
pub mod poly;
pub mod prime;

pub use eq::{EqEvaluator, EqMessage, EqProtocol, PreparedEq};
pub use field::{Barrett, Fp};
pub use poly::BitPolynomial;
