//! The randomized 2-party equality protocol of Lemma A.1.
//!
//! Alice holds `a`, Bob holds `b`, both λ-bit strings. Alice picks a uniform
//! `x ∈ GF(p)` for the deterministic protocol prime `p ∈ (3λ, 6λ)` and sends
//! the pair `(x, A(x))` — `O(log λ)` bits. Bob accepts iff `B(x) = A(x)`.
//!
//! * **Completeness**: if `a = b` the protocol always accepts (one-sided).
//! * **Soundness**: if `a ≠ b` it accepts with probability `< 1/3`.
//! * **Communication**: `2⌈log₂ p⌉ = O(log λ)` bits, matching the
//!   `Θ(log n)` bound of Lemma 3.2.
//!
//! Independent repetition drives the error to `3^{-t}`; see
//! [`EqProtocol::bob_accepts_repeated`].

use crate::field::Fp;
use crate::poly::BitPolynomial;
use crate::prime::protocol_prime;
use rand::Rng;
use rpls_bits::{bits_for, BitString};
use std::cell::{Cell, OnceCell};

/// Alice's single message: the evaluation point and her polynomial's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EqMessage {
    /// The uniformly chosen evaluation point `x`.
    pub point: u64,
    /// `A(x)`, Alice's fingerprint at that point.
    pub value: u64,
}

impl EqMessage {
    /// Exact size of this message in bits for the field `GF(p)`: two field
    /// elements of `⌈log₂ p⌉` bits each.
    #[must_use]
    pub fn bit_size(p: u64) -> usize {
        2 * bits_for(p - 1) as usize
    }

    /// Packs the message into a [`BitString`] of exactly
    /// [`EqMessage::bit_size`] bits.
    #[must_use]
    pub fn to_bits(self, p: u64) -> BitString {
        let w = bits_for(p - 1);
        let mut out = rpls_bits::BitWriter::new();
        out.write_u64(self.point, w).write_u64(self.value, w);
        out.finish()
    }

    /// Parses a message packed by [`EqMessage::to_bits`].
    ///
    /// # Errors
    ///
    /// Returns a [`rpls_bits::BitsError`] if `bits` is too short.
    pub fn from_bits(bits: &BitString, p: u64) -> Result<Self, rpls_bits::BitsError> {
        Self::from_slice(bits.as_slice(), p)
    }

    /// Parses a message from a borrowed slice (e.g. a certificate viewed
    /// in-place inside the verification engine's arena).
    ///
    /// # Errors
    ///
    /// Returns a [`rpls_bits::BitsError`] if `bits` is too short.
    pub fn from_slice(bits: rpls_bits::BitSlice<'_>, p: u64) -> Result<Self, rpls_bits::BitsError> {
        let w = bits_for(p - 1);
        let mut r = rpls_bits::BitReader::from_slice(bits);
        Ok(Self {
            point: r.read_u64(w)?,
            value: r.read_u64(w)?,
        })
    }

    /// Appends the packed message to `out` without allocating, the
    /// counterpart of [`EqMessage::to_bits`] used by allocation-free
    /// certificate generation.
    pub fn append_to(self, p: u64, out: &mut BitString) {
        let w = bits_for(p - 1);
        out.push_u64(self.point, w);
        out.push_u64(self.value, w);
    }
}

/// The equality protocol for a fixed input length λ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqProtocol {
    lambda: usize,
    modulus: u64,
}

impl EqProtocol {
    /// The protocol for λ-bit inputs, with the paper's prime in `(3λ, 6λ)`.
    #[must_use]
    pub fn for_length(lambda: usize) -> Self {
        Self {
            lambda,
            modulus: protocol_prime(lambda),
        }
    }

    /// The protocol with an explicit prime (for the field-size ablation; the
    /// soundness bound becomes `min(1, (λ−1)/p)`). A modulus at or below λ
    /// is allowed — the resulting protocol is *useless* (error bound 1) but
    /// measurable, which is exactly what the Theorem 3.5 tightness
    /// experiment demonstrates.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not prime.
    #[must_use]
    pub fn with_modulus(lambda: usize, modulus: u64) -> Self {
        assert!(
            crate::prime::is_prime_cached(modulus),
            "modulus {modulus} must be prime"
        );
        Self { lambda, modulus }
    }

    /// Input length λ.
    #[must_use]
    pub fn input_length(&self) -> usize {
        self.lambda
    }

    /// The field prime `p`.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Bits Alice transmits: `2⌈log₂ p⌉`.
    #[must_use]
    pub fn message_bits(&self) -> usize {
        EqMessage::bit_size(self.modulus)
    }

    /// The guaranteed false-accept bound `min(1, (λ−1)/p)` on unequal
    /// inputs.
    #[must_use]
    pub fn soundness_error(&self) -> f64 {
        if self.lambda <= 1 {
            0.0
        } else {
            ((self.lambda as f64 - 1.0) / self.modulus as f64).min(1.0)
        }
    }

    /// Alice's side: fingerprint `a` at a fresh random point.
    ///
    /// # Panics
    ///
    /// Panics if `a` is longer than the protocol's λ.
    pub fn alice_message<R: Rng + ?Sized>(&self, a: &BitString, rng: &mut R) -> EqMessage {
        assert!(a.len() <= self.lambda, "input longer than protocol length");
        let x = Fp::random(self.modulus, rng);
        let value = BitPolynomial::from_bits(a, self.modulus).eval(x);
        EqMessage {
            point: x.value(),
            value: value.value(),
        }
    }

    /// Bob's side: accept iff his polynomial agrees at Alice's point.
    ///
    /// Bob is the *verifier* side of the protocol, so this is total on
    /// adversarial input: a message whose point lies outside the field, or
    /// an input longer than the protocol's λ, is rejected (`false`) rather
    /// than panicking. (The prover side, [`EqProtocol::alice_message`],
    /// keeps its panic — the prover runs on trusted honest data.)
    #[must_use]
    pub fn bob_accepts(&self, b: &BitString, msg: &EqMessage) -> bool {
        if b.len() > self.lambda || msg.point >= self.modulus {
            return false;
        }
        let x = Fp::new(msg.point, self.modulus);
        BitPolynomial::from_bits(b, self.modulus).eval(x).value() == msg.value
    }

    /// Prepares an input for many protocol rounds: the fingerprint
    /// polynomial is parsed once, after which each round costs one random
    /// field element plus one evaluation instead of a polynomial rebuild.
    ///
    /// When `expected_rounds` makes a full evaluation table pay for itself,
    /// the preparation is *allowed* to materialise one — but the table is
    /// built **lazily**, on the first evaluation past a probe-count
    /// threshold (see [`PreparedEq`]), so preparing a polynomial that is
    /// never (or rarely) probed costs nothing beyond the parse. Honest
    /// labelings in the compiled verifier are exactly that case: every
    /// probe is statically satisfied, so no table is ever filled.
    ///
    /// Returns `None` if `input` is longer than the protocol's λ — on the
    /// verifier side that is adversarial data, which must not panic.
    #[must_use]
    pub fn prepare(&self, input: &BitString, expected_rounds: usize) -> Option<PreparedEq> {
        if input.len() > self.lambda {
            return None;
        }
        let poly = BitPolynomial::from_bits(input, self.modulus);
        Some(PreparedEq {
            proto: *self,
            poly,
            table: OnceCell::new(),
            probes: Cell::new(0),
            table_allowed: Cell::new(table_worthwhile(self.modulus, expected_rounds)),
        })
    }

    /// Runs `t` independent repetitions and accepts iff all accept. Error on
    /// unequal inputs drops to `soundness_error()^t`; equal inputs are still
    /// always accepted (the repetition preserves one-sidedness, which is why
    /// footnote 1's majority vote is not needed here).
    pub fn bob_accepts_repeated<R: Rng>(
        &self,
        a: &BitString,
        b: &BitString,
        t: usize,
        rng: &mut R,
    ) -> bool {
        (0..t).all(|_| {
            let msg = self.alice_message(a, rng);
            self.bob_accepts(b, &msg)
        })
    }
}

/// Whether a full evaluation table can pay for itself: the table pays off
/// once the polynomial is evaluated ~p times, and the size cap guards
/// against adversarially declared lengths whose protocol prime (and hence
/// table) would be in the billions.
fn table_worthwhile(modulus: u64, expected_rounds: usize) -> bool {
    const MAX_TABLE: u64 = 1 << 20;
    modulus <= MAX_TABLE && expected_rounds as u64 >= modulus
}

/// One party's input to the equality protocol, prepared once for many
/// rounds (see [`EqProtocol::prepare`]).
///
/// Both sides are transcript-identical to their unprepared counterparts:
/// [`PreparedEq::alice_message`] consumes exactly the randomness
/// [`EqProtocol::alice_message`] consumes (one `u64`) and produces the same
/// message, and [`PreparedEq::bob_accepts`] returns exactly what
/// [`EqProtocol::bob_accepts`] returns for the prepared input.
///
/// # Lazy evaluation tables
///
/// When the preparation was [allowed a table](PreparedEq::table_allowed),
/// the full `[A(0), …, A(p−1)]` expansion is built on the fly: evaluations
/// are counted, and once they pass a quarter of the field size — the point
/// where the `p` Horner evaluations the build costs are provably within 2×
/// of optimal no matter how many more probes follow — the table is filled
/// and every further evaluation becomes one array index. A prepared
/// polynomial that is never probed (an always-rejecting node, a statically
/// satisfied probe the batch plan dropped) therefore costs `O(λ)` parse
/// work, never `O(p)` table fills. Values are identical with and without
/// the table, so *when* it materialises affects time, never transcripts.
#[derive(Debug, Clone)]
pub struct PreparedEq {
    proto: EqProtocol,
    poly: BitPolynomial,
    /// Filled once the probe count crosses the laziness threshold; then
    /// every evaluation is one array index.
    table: OnceCell<Vec<u64>>,
    /// Evaluations served so far by Horner (stops counting once the table
    /// is built). Shared across everyone holding this preparation — under
    /// an `Rc` in a cross-labeling cache, probes from different labelings
    /// all push the same polynomial toward its table.
    probes: Cell<u64>,
    /// Whether this preparation may materialise a table at all: decided at
    /// [`EqProtocol::prepare`] time from the expected round count, the
    /// per-table size cap, and (in the compiler) the aggregate memory
    /// budget — and upgradeable later via [`PreparedEq::permit_table`]
    /// when a shared preparation first created under a small round hint
    /// is reused by a caller expecting many more.
    table_allowed: Cell<bool>,
}

impl PreparedEq {
    /// The protocol this input was prepared for.
    #[must_use]
    pub fn protocol(&self) -> &EqProtocol {
        &self.proto
    }

    /// Whether the full evaluation table has been materialised (it builds
    /// lazily; see the type docs).
    #[must_use]
    pub fn has_table(&self) -> bool {
        self.table.get().is_some()
    }

    /// Whether this preparation is allowed to materialise an evaluation
    /// table once enough probes arrive.
    #[must_use]
    pub fn table_allowed(&self) -> bool {
        self.table_allowed.get()
    }

    /// Grants the table allowance after the fact, for a preparation first
    /// created under a round hint too small to justify one — a shared
    /// cache upgrades its entries this way when a later caller announces
    /// enough rounds. Returns `true` iff the allowance was **newly**
    /// granted (so the caller can account it against an aggregate memory
    /// budget); a preparation already allowed, or whose field is too
    /// large or expected use too small to pay for a table, returns
    /// `false` and is unchanged. Tables never change evaluation values,
    /// so this only ever moves work.
    pub fn permit_table(&self, expected_rounds: usize) -> bool {
        if self.table_allowed.get() || !table_worthwhile(self.proto.modulus, expected_rounds) {
            return false;
        }
        self.table_allowed.set(true);
        true
    }

    /// `A(x)` at the raw residue `x`, which must be `< p`.
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        if let Some(t) = self.table.get() {
            return t[x as usize];
        }
        if self.table_allowed.get() {
            let seen = self.probes.get() + 1;
            self.probes.set(seen);
            // Build once probes reach p/4: at most p/4 Horner evaluations
            // are "wasted" before the p-evaluation build, keeping total
            // work within 2× of the best clairvoyant choice.
            if seen.saturating_mul(4) >= self.proto.modulus {
                return self.table.get_or_init(|| self.poly.evaluation_table())[x as usize];
            }
        }
        self.poly.eval_raw(x)
    }

    /// `[A(xs[0]), …, A(xs[L−1])]` for raw residues `xs[l] < p`, values
    /// bit-identical to `L` calls of [`PreparedEq::eval`].
    ///
    /// One chunk counts as `L` probes toward the lazy table (the batched
    /// engine probes in `u64×8` lanes, so per-probe counting would cost a
    /// `Cell` round-trip per lane for the same materialisation decision).
    /// Before the table exists the chunk is served by the lane Horner
    /// kernel ([`BitPolynomial::eval_raw_lanes`]); after, by `L` gathers.
    #[must_use]
    pub fn eval_lanes<const L: usize>(&self, xs: &[u64; L]) -> [u64; L] {
        if let Some(t) = self.table.get() {
            return xs.map(|x| t[x as usize]);
        }
        if self.table_allowed.get() {
            let seen = self.probes.get() + L as u64;
            self.probes.set(seen);
            if seen.saturating_mul(4) >= self.proto.modulus {
                let t = self.table.get_or_init(|| self.poly.evaluation_table());
                return xs.map(|x| t[x as usize]);
            }
        }
        self.poly.eval_raw_lanes(xs)
    }

    /// A borrowed evaluation view with the table dispatch resolved once
    /// when the table already exists, for callers that probe the same
    /// prepared polynomial many times in a tight loop — the batched trial
    /// engine evaluates one of these per (edge, trial). Before the lazy
    /// table materialises, evaluations fall through to
    /// [`PreparedEq::eval`] (and keep pushing it toward materialising).
    #[must_use]
    pub fn evaluator(&self) -> EqEvaluator<'_> {
        EqEvaluator {
            table: self.table.get().map(Vec::as_slice),
            prep: self,
        }
    }

    /// Alice's side: fingerprint the prepared input at a fresh random
    /// point.
    pub fn alice_message<R: Rng + ?Sized>(&self, rng: &mut R) -> EqMessage {
        let x = Fp::random(self.proto.modulus, rng).value();
        EqMessage {
            point: x,
            value: self.eval(x),
        }
    }

    /// Bob's side: accept iff the prepared polynomial agrees at Alice's
    /// point. Total, like [`EqProtocol::bob_accepts`]: a point outside the
    /// field rejects instead of panicking.
    #[must_use]
    pub fn bob_accepts(&self, msg: &EqMessage) -> bool {
        msg.point < self.proto.modulus && self.eval(msg.point) == msg.value
    }
}

/// A borrowed, loop-hoisted evaluation view of a [`PreparedEq`] (see
/// [`PreparedEq::evaluator`]): the table reference (when one has already
/// materialised) is resolved once instead of per probe.
///
/// Values are identical to [`PreparedEq::eval`] for every `x < p`.
#[derive(Debug, Clone, Copy)]
pub struct EqEvaluator<'a> {
    table: Option<&'a [u64]>,
    prep: &'a PreparedEq,
}

impl EqEvaluator<'_> {
    /// `A(x)` at the raw residue `x`, which must be `< p`.
    #[inline]
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        match self.table {
            Some(t) => t[x as usize],
            // The lazy path: the table may materialise mid-loop, in which
            // case `PreparedEq::eval` serves from it from then on.
            None => self.prep.eval(x),
        }
    }

    /// `[A(xs[0]), …, A(xs[L−1])]` for raw residues `xs[l] < p`, values
    /// bit-identical to `L` calls of [`EqEvaluator::eval`] (see
    /// [`PreparedEq::eval_lanes`]).
    #[inline]
    #[must_use]
    pub fn eval_lanes<const L: usize>(&self, xs: &[u64; L]) -> [u64; L] {
        match self.table {
            Some(t) => xs.map(|x| t[x as usize]),
            None => self.prep.eval_lanes(xs),
        }
    }

    /// The field prime of the underlying protocol.
    #[inline]
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.prep.proto.modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_bits<R: Rng>(len: usize, rng: &mut R) -> BitString {
        BitString::from_bools((0..len).map(|_| rng.random_bool(0.5)))
    }

    #[test]
    fn equal_inputs_always_accept() {
        let mut rng = StdRng::seed_from_u64(2);
        for lambda in [1usize, 2, 8, 64, 500] {
            let proto = EqProtocol::for_length(lambda);
            let a = random_bits(lambda, &mut rng);
            for _ in 0..100 {
                let msg = proto.alice_message(&a, &mut rng);
                assert!(proto.bob_accepts(&a, &msg), "λ = {lambda}");
            }
        }
    }

    #[test]
    fn unequal_inputs_rejected_with_good_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let lambda = 128usize;
        let proto = EqProtocol::for_length(lambda);
        let a = random_bits(lambda, &mut rng);
        let mut b = a.clone();
        // Flip one bit.
        let flipped: BitString = b
            .iter()
            .enumerate()
            .map(|(i, bit)| if i == 17 { !bit } else { bit })
            .collect();
        b = flipped;
        let trials = 3000;
        let accepts = (0..trials)
            .filter(|_| {
                let msg = proto.alice_message(&a, &mut rng);
                proto.bob_accepts(&b, &msg)
            })
            .count();
        let rate = accepts as f64 / trials as f64;
        assert!(
            rate <= proto.soundness_error() + 0.05,
            "false-accept rate {rate} vs bound {}",
            proto.soundness_error()
        );
        assert!(rate < 1.0 / 3.0, "rate {rate} must be below 1/3");
    }

    #[test]
    fn lane_evaluation_matches_scalar_across_table_materialisation() {
        let mut rng = StdRng::seed_from_u64(13);
        let lambda = 48usize;
        let proto = EqProtocol::for_length(lambda);
        let input = random_bits(lambda, &mut rng);
        // One preparation probed scalar, one laned, one table-free: all
        // three must agree at every point even as the allowed ones cross
        // their lazy-table threshold mid-sweep.
        let scalar = proto.prepare(&input, usize::MAX).unwrap();
        let laned = proto.prepare(&input, usize::MAX).unwrap();
        let bare = proto.prepare(&input, 1).unwrap();
        assert!(scalar.table_allowed() && !bare.table_allowed());
        let p = proto.modulus();
        let mut x = 0u64;
        while x < p {
            let xs: [u64; 8] = std::array::from_fn(|l| (x + l as u64) % p);
            let lanes = laned.evaluator().eval_lanes(&xs);
            for (l, &xl) in xs.iter().enumerate() {
                assert_eq!(lanes[l], scalar.eval(xl), "x = {xl}");
                assert_eq!(lanes[l], bare.eval(xl), "x = {xl}");
            }
            x += 8;
        }
        assert!(laned.has_table(), "lane probes must feed the lazy table");
    }

    #[test]
    fn message_bits_are_logarithmic() {
        // Communication grows like 2 log(6λ): doubling λ adds ~2 bits.
        let small = EqProtocol::for_length(64).message_bits();
        let large = EqProtocol::for_length(65536).message_bits();
        assert!(small <= 2 * 9, "64-bit inputs need ≤ 18 message bits");
        assert!(large <= 2 * 19);
        assert!(large - small <= 2 * 10);
    }

    #[test]
    fn message_round_trips_through_bitstring() {
        let proto = EqProtocol::for_length(100);
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_bits(100, &mut rng);
        let msg = proto.alice_message(&a, &mut rng);
        let packed = msg.to_bits(proto.modulus());
        assert_eq!(packed.len(), proto.message_bits());
        let unpacked = EqMessage::from_bits(&packed, proto.modulus()).unwrap();
        assert_eq!(unpacked, msg);
    }

    #[test]
    fn repetition_reduces_error_exponentially() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 32usize;
        let proto = EqProtocol::for_length(lambda);
        let a = random_bits(lambda, &mut rng);
        let b: BitString = a.iter().map(|bit| !bit).collect();
        let trials = 2000;
        let accepts_3 = (0..trials)
            .filter(|_| proto.bob_accepts_repeated(&a, &b, 3, &mut rng))
            .count();
        let bound = proto.soundness_error().powi(3);
        assert!(
            (accepts_3 as f64 / trials as f64) <= bound + 0.02,
            "3 repetitions: rate {} vs bound {bound}",
            accepts_3 as f64 / trials as f64
        );
        // Equal strings still always accepted under repetition.
        assert!(proto.bob_accepts_repeated(&a, &a, 10, &mut rng));
    }

    #[test]
    fn ablation_larger_field_lower_error() {
        let lambda = 64usize;
        let tight = EqProtocol::for_length(lambda);
        let wide = EqProtocol::with_modulus(lambda, crate::prime::next_prime(100 * lambda as u64));
        assert!(wide.soundness_error() < tight.soundness_error() / 10.0);
        assert!(wide.message_bits() > tight.message_bits());
    }

    #[test]
    #[should_panic(expected = "longer than protocol")]
    fn oversized_input_rejected() {
        let proto = EqProtocol::for_length(4);
        let mut rng = StdRng::seed_from_u64(0);
        let a = BitString::zeros(5);
        let _ = proto.alice_message(&a, &mut rng);
    }

    #[test]
    fn bob_rejects_malformed_messages_without_panicking() {
        let proto = EqProtocol::for_length(8);
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_bits(8, &mut rng);
        let honest = proto.alice_message(&a, &mut rng);
        // A point outside the field is adversarial data, not a bug.
        let outside = EqMessage {
            point: proto.modulus() + 3,
            value: honest.value,
        };
        assert!(!proto.bob_accepts(&a, &outside));
        assert!(!proto.prepare(&a, 0).unwrap().bob_accepts(&outside));
        // Likewise an input longer than λ on the verifier side.
        assert!(!proto.bob_accepts(&BitString::zeros(9), &honest));
        assert!(proto.prepare(&BitString::zeros(9), 0).is_none());
    }

    #[test]
    fn lazy_table_builds_at_probe_threshold_with_identical_values() {
        let proto = EqProtocol::for_length(64);
        let mut rng = StdRng::seed_from_u64(21);
        let a = random_bits(64, &mut rng);
        let p = proto.modulus();

        // Not allowed a table: never builds, no matter how many probes.
        let never = proto.prepare(&a, 0).unwrap();
        assert!(!never.table_allowed());
        for x in (0..p).cycle().take(2 * p as usize) {
            let _ = never.eval(x);
        }
        assert!(!never.has_table());

        // Allowed: builds only once probes reach p/4, and values before,
        // at, and after the switch all match the raw Horner reference.
        let lazy = proto.prepare(&a, usize::MAX).unwrap();
        let reference = proto.prepare(&a, 0).unwrap();
        assert!(lazy.table_allowed() && !lazy.has_table());
        let mut probes = 0u64;
        for x in (0..p).cycle().take(p as usize) {
            assert_eq!(lazy.eval(x), reference.eval(x), "x = {x}");
            probes += 1;
            assert_eq!(
                lazy.has_table(),
                probes * 4 >= p,
                "table must appear exactly at the p/4 threshold (probe {probes})"
            );
        }
        assert!(lazy.has_table());
    }

    #[test]
    fn permit_table_upgrades_once_and_only_when_worthwhile() {
        let proto = EqProtocol::for_length(64);
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_bits(64, &mut rng);
        let p = proto.modulus();
        let prep = proto.prepare(&a, 0).unwrap();
        assert!(!prep.table_allowed());
        // Too few expected rounds: no upgrade.
        assert!(!prep.permit_table(p as usize - 1));
        assert!(!prep.table_allowed());
        // Enough rounds: newly granted exactly once.
        assert!(prep.permit_table(p as usize));
        assert!(prep.table_allowed());
        assert!(
            !prep.permit_table(usize::MAX),
            "second grant must report false"
        );
        // The upgraded preparation behaves like one allowed from birth:
        // probes now count toward the lazy threshold and values match.
        let reference = proto.prepare(&a, 0).unwrap();
        for x in (0..p).cycle().take(p as usize) {
            assert_eq!(prep.eval(x), reference.eval(x));
        }
        assert!(prep.has_table());
    }

    #[test]
    fn evaluator_matches_prepared_eval_with_and_without_table() {
        let proto = EqProtocol::for_length(40);
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_bits(40, &mut rng);
        for rounds in [0usize, usize::MAX] {
            let prep = proto.prepare(&a, rounds).unwrap();
            let ev = prep.evaluator();
            assert_eq!(ev.modulus(), proto.modulus());
            for x in 0..proto.modulus() {
                assert_eq!(ev.eval(x), prep.eval(x), "x = {x}, rounds = {rounds}");
            }
        }
    }

    #[test]
    fn prepared_sides_match_unprepared_transcripts() {
        for lambda in [1usize, 8, 64, 300] {
            let proto = EqProtocol::for_length(lambda);
            let mut rng = StdRng::seed_from_u64(lambda as u64);
            let a = random_bits(lambda, &mut rng);
            let b = random_bits(lambda, &mut rng);
            // Force both variants: no table, and full table.
            for rounds in [0usize, usize::MAX] {
                let pa = proto.prepare(&a, rounds).unwrap();
                let pb = proto.prepare(&b, rounds).unwrap();
                assert_eq!(pa.table_allowed(), rounds > 0);
                assert!(!pa.has_table(), "tables build lazily, not at prepare");
                assert_eq!(pa.protocol(), &proto);
                let mut fresh = StdRng::seed_from_u64(42);
                let mut fresh2 = StdRng::seed_from_u64(42);
                for _ in 0..50 {
                    let msg = proto.alice_message(&a, &mut fresh);
                    let prepared_msg = pa.alice_message(&mut fresh2);
                    assert_eq!(msg, prepared_msg, "λ = {lambda}");
                    assert_eq!(
                        proto.bob_accepts(&b, &msg),
                        pb.bob_accepts(&msg),
                        "λ = {lambda}"
                    );
                    assert!(pa.bob_accepts(&msg));
                }
            }
        }
    }
}
