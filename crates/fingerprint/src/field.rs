//! The prime field `GF(p)` with a runtime modulus.
//!
//! The equality protocol picks its prime as a function of the input length,
//! so the modulus cannot be a compile-time constant. [`Fp`] carries the
//! modulus alongside the value; mixing elements of different fields is a
//! programming error and panics.
//!
//! Multiplication is the hottest instruction of the whole verification
//! engine (one per Horner step of every fingerprint probe), so reduction is
//! done by [`Barrett`]'s multiply-shift instead of a generic `u128 %`
//! division: the per-modulus constant `⌊2¹²⁸ / p⌋` is computed once (and
//! memoised per thread), after which a reduction is four 64-bit multiplies
//! and one conditional subtract — bit-identical to the division it
//! replaces.

use crate::prime::is_prime_cached;
use rand::Rng;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Barrett reduction state for one modulus `m` with `2 ≤ m < 2⁶³`: the
/// precomputed factor `⌊2¹²⁸ / m⌋` turns every `x mod m` of a product
/// `x < 2¹²⁶` into two multiplications and one conditional subtraction.
///
/// Results are **exactly** `x mod m` — the quotient estimate
/// `q = ⌊x·factor / 2¹²⁸⌋` is provably within 1 of `⌊x / m⌋`, so a single
/// conditional subtract lands in `[0, m)`. The naive `u128 %` reference
/// ([`crate::prime::mul_mod`] / [`crate::prime::pow_mod`]) stays available
/// for the full `u64` modulus range (Miller–Rabin needs it) and as the
/// oracle the property tests compare against.
///
/// # Examples
///
/// ```
/// use rpls_fingerprint::field::Barrett;
/// let b = Barrett::new(97);
/// assert_eq!(b.mul_mod(77, 50), 77 * 50 % 97);
/// assert_eq!(b.pow_mod(5, 96), 1); // Fermat
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Barrett {
    modulus: u64,
    /// `⌊2¹²⁸ / modulus⌋`. Fits in a `u128` for every modulus ≥ 2.
    factor: u128,
}

/// High 128 bits of the 256-bit product `a · b`, via 64-bit limbs.
#[inline]
fn mul_hi(a: u128, b: u128) -> u128 {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let lo_lo = a_lo * b_lo;
    let hi_lo = a_hi * b_lo;
    let lo_hi = a_lo * b_hi;
    // Carries collected in a 128-bit middle limb: each term is < 2⁶⁴, so
    // the sum cannot overflow.
    let mid = (lo_lo >> 64) + (hi_lo & MASK) + (lo_hi & MASK);
    a_hi * b_hi + (hi_lo >> 64) + (lo_hi >> 64) + (mid >> 64)
}

impl Barrett {
    /// Precomputes the reduction factor for `modulus` (one `u128` division
    /// — amortise it: construct once per modulus, not per operation; see
    /// [`Barrett::cached`]).
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ modulus < 2⁶³` — the range every caller in this
    /// workspace lives in ([`Fp`] enforces it at element construction), and
    /// the range for which the `q ∈ {Q−1, Q}` quotient bound holds with a
    /// single correction step.
    #[must_use]
    pub fn new(modulus: u64) -> Self {
        assert!(
            (2..1u64 << 63).contains(&modulus),
            "Barrett modulus {modulus} must be in [2, 2^63)"
        );
        let m = u128::from(modulus);
        // 2¹²⁸ = u128::MAX + 1, so ⌊2¹²⁸/m⌋ = ⌊u128::MAX/m⌋ + [m | 2¹²⁸].
        let factor = u128::MAX / m + u128::from(u128::MAX % m == m - 1);
        Self { modulus, factor }
    }

    /// Like [`Barrett::new`] but memoising the most recent moduli per
    /// thread — a workload touches a handful of field primes, so element
    /// construction pays an array scan instead of a `u128` division.
    #[must_use]
    pub fn cached(modulus: u64) -> Self {
        use std::cell::Cell;
        thread_local! {
            // A valid factor is never 0, so empty slots cannot match.
            static RECENT: Cell<[(u64, u128); 8]> = const { Cell::new([(0, 0); 8]) };
        }
        RECENT.with(|recent| {
            let mut known = recent.get();
            if let Some(&(m, factor)) = known.iter().find(|&&(m, f)| f != 0 && m == modulus) {
                return Self { modulus: m, factor };
            }
            let fresh = Self::new(modulus);
            known.rotate_right(1);
            known[0] = (fresh.modulus, fresh.factor);
            recent.set(known);
            fresh
        })
    }

    /// The modulus this state reduces by.
    #[must_use]
    pub fn modulus(self) -> u64 {
        self.modulus
    }

    /// `x mod m` for any 128-bit `x`, by multiply-shift.
    #[inline]
    #[must_use]
    pub fn reduce(self, x: u128) -> u64 {
        let q = mul_hi(x, self.factor);
        // q ∈ {⌊x/m⌋ − 1, ⌊x/m⌋}, so the remainder estimate is in [0, 2m).
        let mut r = x - q * u128::from(self.modulus);
        if r >= u128::from(self.modulus) {
            r -= u128::from(self.modulus);
        }
        debug_assert_eq!(r as u64, (x % u128::from(self.modulus)) as u64);
        r as u64
    }

    /// `(a * b) mod m`, bit-identical to [`crate::prime::mul_mod`].
    #[inline]
    #[must_use]
    pub fn mul_mod(self, a: u64, b: u64) -> u64 {
        self.reduce(u128::from(a) * u128::from(b))
    }

    /// `(base ^ exp) mod m` by square-and-multiply, bit-identical to
    /// [`crate::prime::pow_mod`].
    #[must_use]
    pub fn pow_mod(self, mut base: u64, mut exp: u64) -> u64 {
        let mut acc = 1u64;
        base = self.reduce(u128::from(base));
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul_mod(acc, base);
            }
            base = self.mul_mod(base, base);
            exp >>= 1;
        }
        acc
    }
}

/// An element of `GF(p)` for a runtime prime `p`.
///
/// # Examples
///
/// ```
/// use rpls_fingerprint::Fp;
/// let p = 101;
/// let a = Fp::new(77, p);
/// let b = Fp::new(50, p);
/// assert_eq!((a + b).value(), 26);
/// assert_eq!((a * b).value(), 77 * 50 % 101);
/// assert_eq!((a - a).value(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp {
    value: u64,
    /// The field's reduction state; the modulus lives inside it. The
    /// factor is a pure function of the modulus, so derived equality and
    /// hashing over it are consistent with comparing moduli.
    field: Barrett,
}

impl Fp {
    /// Creates the element `value mod p`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not prime (checked in debug and release
    /// alike — field arithmetic silently breaks on composite moduli, which
    /// would invalidate every soundness bound downstream — through a
    /// memoised Miller–Rabin so hot loops pay an array lookup, not a
    /// primality test), or if `modulus ≥ 2⁶³`. The latter is the **field
    /// invariant** every operation relies on: with `p < 2⁶³`, two
    /// residues sum below `2⁶⁴` (so [`Add`] needs no widening) and their
    /// product stays below `2¹²⁶` (so [`Barrett`] reduction is exact).
    /// It is enforced once here, not per operation.
    #[must_use]
    pub fn new(value: u64, modulus: u64) -> Self {
        assert!(is_prime_cached(modulus), "modulus {modulus} must be prime");
        assert!(
            modulus < 1u64 << 63,
            "modulus {modulus} must fit in 63 bits"
        );
        let field = Barrett::cached(modulus);
        Self {
            value: value % modulus,
            field,
        }
    }

    /// The zero of `GF(p)`.
    #[must_use]
    pub fn zero(modulus: u64) -> Self {
        Self::new(0, modulus)
    }

    /// The one of `GF(p)`.
    #[must_use]
    pub fn one(modulus: u64) -> Self {
        Self::new(1, modulus)
    }

    /// A uniform random element of `GF(p)`.
    pub fn random<R: Rng + ?Sized>(modulus: u64, rng: &mut R) -> Self {
        let value = rng.next_u64() % modulus; // bias < 2^-40 for p < 2^24
        Self::new(value, modulus)
    }

    /// The canonical representative in `0..p`.
    #[must_use]
    pub fn value(self) -> u64 {
        self.value
    }

    /// The field's modulus.
    #[must_use]
    pub fn modulus(self) -> u64 {
        self.field.modulus()
    }

    /// `self ^ exp`.
    #[must_use]
    pub fn pow(self, exp: u64) -> Self {
        Self {
            value: self.field.pow_mod(self.value, exp),
            field: self.field,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    #[must_use]
    pub fn inverse(self) -> Self {
        assert!(self.value != 0, "zero has no inverse");
        // Fermat: a^(p-2) = a^{-1} in GF(p).
        self.pow(self.modulus() - 2)
    }

    fn check_same_field(self, other: Self) {
        assert_eq!(
            self.field.modulus(),
            other.field.modulus(),
            "mixing GF({}) and GF({})",
            self.field.modulus(),
            other.field.modulus()
        );
    }
}

impl Add for Fp {
    type Output = Fp;

    fn add(self, rhs: Fp) -> Fp {
        self.check_same_field(rhs);
        // Both residues are < p < 2^63 (enforced once, in `Fp::new`), so
        // the sum is < 2^64 and a single conditional subtract reduces it.
        let mut v = self.value + rhs.value;
        if v >= self.modulus() {
            v -= self.modulus();
        }
        Fp {
            value: v,
            field: self.field,
        }
    }
}

impl Sub for Fp {
    type Output = Fp;

    fn sub(self, rhs: Fp) -> Fp {
        self.check_same_field(rhs);
        let v = if self.value >= rhs.value {
            self.value - rhs.value
        } else {
            self.value + self.modulus() - rhs.value
        };
        Fp {
            value: v,
            field: self.field,
        }
    }
}

impl Mul for Fp {
    type Output = Fp;

    fn mul(self, rhs: Fp) -> Fp {
        self.check_same_field(rhs);
        Fp {
            value: self.field.mul_mod(self.value, rhs.value),
            field: self.field,
        }
    }
}

impl Neg for Fp {
    type Output = Fp;

    fn neg(self) -> Fp {
        Fp::zero(self.modulus()) - self
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (mod {})", self.value, self.modulus())
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const P: u64 = 97;

    #[test]
    fn ring_axioms_hold_exhaustively_mod_13() {
        let p = 13;
        for a in 0..p {
            for b in 0..p {
                let (fa, fb) = (Fp::new(a, p), Fp::new(b, p));
                assert_eq!((fa + fb).value(), (a + b) % p);
                assert_eq!((fa * fb).value(), a * b % p);
                assert_eq!((fa - fb) + fb, fa);
                assert_eq!(fa + (-fa), Fp::zero(p));
            }
        }
    }

    #[test]
    fn inverses_multiply_to_one() {
        for a in 1..P {
            let fa = Fp::new(a, P);
            assert_eq!(fa * fa.inverse(), Fp::one(P), "a = {a}");
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Fp::new(5, P);
        let mut acc = Fp::one(P);
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc = acc * a;
        }
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn composite_modulus_rejected() {
        let _ = Fp::new(1, 91); // 91 = 7 * 13
    }

    #[test]
    #[should_panic(expected = "mixing")]
    fn cross_field_arithmetic_panics() {
        let _ = Fp::new(1, 7) + Fp::new(1, 11);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = Fp::zero(7).inverse();
    }

    #[test]
    fn random_elements_cover_the_field() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = 11;
        let mut seen = [false; 11];
        for _ in 0..500 {
            seen[Fp::random(p, &mut rng).value() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Fp::new(42, P).to_string(), "42");
        assert!(format!("{:?}", Fp::new(42, P)).contains("mod 97"));
    }

    #[test]
    #[should_panic(expected = "fit in 63 bits")]
    fn oversized_modulus_rejected() {
        // The largest u64 prime is ≥ 2^63: the field invariant rejects it
        // at construction, before any operation could overflow.
        let _ = Fp::new(1, 18_446_744_073_709_551_557);
    }

    #[test]
    fn barrett_matches_naive_reduction_across_moduli() {
        // Includes the power-of-two prime 2 (the ⌊2¹²⁸/m⌋ rounding edge
        // case) and composites — Barrett does not require primality.
        let moduli = [
            2u64,
            3,
            4,
            97,
            91,
            (1 << 20) - 3,
            (1 << 32) + 15,
            (1 << 61) - 1,
            (1 << 63) - 1,
            (1 << 63) - 25, // just under the 2^63 ceiling
        ];
        for &m in &moduli {
            let b = Barrett::new(m);
            assert_eq!(b.modulus(), m);
            for &x in &[0u64, 1, 2, m - 1, m / 2, m / 3 + 1] {
                for &y in &[0u64, 1, m - 1, m / 2, m / 7 + 3] {
                    let (x, y) = (x % m, y % m);
                    assert_eq!(
                        b.mul_mod(x, y),
                        crate::prime::mul_mod(x, y, m),
                        "x={x} y={y} m={m}"
                    );
                }
                assert_eq!(
                    b.pow_mod(x, x ^ 0x5A5A),
                    crate::prime::pow_mod(x, x ^ 0x5A5A, m),
                    "x={x} m={m}"
                );
            }
        }
    }

    #[test]
    fn barrett_reduce_handles_full_u128_range() {
        let b = Barrett::new((1 << 63) - 25);
        for &x in &[0u128, 1, u128::MAX, u128::MAX - 1, 1 << 127, (1 << 126) - 1] {
            assert_eq!(u128::from(b.reduce(x)), x % u128::from(b.modulus()));
        }
    }

    #[test]
    fn barrett_cached_survives_eviction_sweeps() {
        let first: Vec<Barrett> = (0..32u64).map(|i| Barrett::cached(97 + 2 * i)).collect();
        for (i, &b) in first.iter().enumerate() {
            let again = Barrett::cached(97 + 2 * i as u64);
            assert_eq!(again, b);
            assert_eq!(again.mul_mod(5, 7), 35 % again.modulus());
        }
    }

    #[test]
    #[should_panic(expected = "must be in [2, 2^63)")]
    fn barrett_rejects_modulus_one() {
        let _ = Barrett::new(1);
    }
}
