//! The prime field `GF(p)` with a runtime modulus.
//!
//! The equality protocol picks its prime as a function of the input length,
//! so the modulus cannot be a compile-time constant. [`Fp`] carries the
//! modulus alongside the value; mixing elements of different fields is a
//! programming error and panics.

use crate::prime::{is_prime_cached, mul_mod, pow_mod};
use rand::Rng;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An element of `GF(p)` for a runtime prime `p`.
///
/// # Examples
///
/// ```
/// use rpls_fingerprint::Fp;
/// let p = 101;
/// let a = Fp::new(77, p);
/// let b = Fp::new(50, p);
/// assert_eq!((a + b).value(), 26);
/// assert_eq!((a * b).value(), 77 * 50 % 101);
/// assert_eq!((a - a).value(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp {
    value: u64,
    modulus: u64,
}

impl Fp {
    /// Creates the element `value mod p`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not prime (checked in debug and release
    /// alike — field arithmetic silently breaks on composite moduli, which
    /// would invalidate every soundness bound downstream — through a
    /// memoised Miller–Rabin so hot loops pay an array lookup, not a
    /// primality test).
    #[must_use]
    pub fn new(value: u64, modulus: u64) -> Self {
        assert!(is_prime_cached(modulus), "modulus {modulus} must be prime");
        Self {
            value: value % modulus,
            modulus,
        }
    }

    /// The zero of `GF(p)`.
    #[must_use]
    pub fn zero(modulus: u64) -> Self {
        Self::new(0, modulus)
    }

    /// The one of `GF(p)`.
    #[must_use]
    pub fn one(modulus: u64) -> Self {
        Self::new(1, modulus)
    }

    /// A uniform random element of `GF(p)`.
    pub fn random<R: Rng + ?Sized>(modulus: u64, rng: &mut R) -> Self {
        let value = rng.next_u64() % modulus; // bias < 2^-40 for p < 2^24
        Self::new(value, modulus)
    }

    /// The canonical representative in `0..p`.
    #[must_use]
    pub fn value(self) -> u64 {
        self.value
    }

    /// The field's modulus.
    #[must_use]
    pub fn modulus(self) -> u64 {
        self.modulus
    }

    /// `self ^ exp`.
    #[must_use]
    pub fn pow(self, exp: u64) -> Self {
        Self {
            value: pow_mod(self.value, exp, self.modulus),
            modulus: self.modulus,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    #[must_use]
    pub fn inverse(self) -> Self {
        assert!(self.value != 0, "zero has no inverse");
        // Fermat: a^(p-2) = a^{-1} in GF(p).
        self.pow(self.modulus - 2)
    }

    fn check_same_field(self, other: Self) {
        assert_eq!(
            self.modulus, other.modulus,
            "mixing GF({}) and GF({})",
            self.modulus, other.modulus
        );
    }
}

impl Add for Fp {
    type Output = Fp;

    fn add(self, rhs: Fp) -> Fp {
        self.check_same_field(rhs);
        let mut v = self.value + rhs.value; // < 2^65 cannot overflow u64? p < 2^63 assumed
        if v >= self.modulus {
            v -= self.modulus;
        }
        Fp {
            value: v,
            modulus: self.modulus,
        }
    }
}

impl Sub for Fp {
    type Output = Fp;

    fn sub(self, rhs: Fp) -> Fp {
        self.check_same_field(rhs);
        let v = if self.value >= rhs.value {
            self.value - rhs.value
        } else {
            self.value + self.modulus - rhs.value
        };
        Fp {
            value: v,
            modulus: self.modulus,
        }
    }
}

impl Mul for Fp {
    type Output = Fp;

    fn mul(self, rhs: Fp) -> Fp {
        self.check_same_field(rhs);
        Fp {
            value: mul_mod(self.value, rhs.value, self.modulus),
            modulus: self.modulus,
        }
    }
}

impl Neg for Fp {
    type Output = Fp;

    fn neg(self) -> Fp {
        Fp::zero(self.modulus) - self
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (mod {})", self.value, self.modulus)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const P: u64 = 97;

    #[test]
    fn ring_axioms_hold_exhaustively_mod_13() {
        let p = 13;
        for a in 0..p {
            for b in 0..p {
                let (fa, fb) = (Fp::new(a, p), Fp::new(b, p));
                assert_eq!((fa + fb).value(), (a + b) % p);
                assert_eq!((fa * fb).value(), a * b % p);
                assert_eq!((fa - fb) + fb, fa);
                assert_eq!(fa + (-fa), Fp::zero(p));
            }
        }
    }

    #[test]
    fn inverses_multiply_to_one() {
        for a in 1..P {
            let fa = Fp::new(a, P);
            assert_eq!(fa * fa.inverse(), Fp::one(P), "a = {a}");
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Fp::new(5, P);
        let mut acc = Fp::one(P);
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc = acc * a;
        }
    }

    #[test]
    #[should_panic(expected = "must be prime")]
    fn composite_modulus_rejected() {
        let _ = Fp::new(1, 91); // 91 = 7 * 13
    }

    #[test]
    #[should_panic(expected = "mixing")]
    fn cross_field_arithmetic_panics() {
        let _ = Fp::new(1, 7) + Fp::new(1, 11);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = Fp::zero(7).inverse();
    }

    #[test]
    fn random_elements_cover_the_field() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = 11;
        let mut seen = [false; 11];
        for _ in 0..500 {
            seen[Fp::random(p, &mut rng).value() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Fp::new(42, P).to_string(), "42");
        assert!(format!("{:?}", Fp::new(42, P)).contains("mod 97"));
    }
}
