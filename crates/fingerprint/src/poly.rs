//! Bit strings as polynomials over `GF(p)`.
//!
//! Lemma A.1 views a λ-bit string `a = a₀a₁…a_{λ−1}` as the polynomial
//! `A(x) = a₀ + a₁x + … + a_{λ−1}x^{λ−1} mod p`. Two distinct strings give
//! distinct polynomials of degree `< λ`, which agree on at most `λ − 1`
//! points of the field — the entire soundness of the protocol.

use crate::field::Fp;
use rpls_bits::BitString;

/// A polynomial over `GF(p)` whose coefficients are the bits of a string
/// (coefficient `i` = bit `i`).
///
/// # Examples
///
/// ```
/// use rpls_fingerprint::{BitPolynomial, Fp};
/// use rpls_bits::BitString;
///
/// // 101 -> A(x) = 1 + x^2
/// let a = BitPolynomial::from_bits(&BitString::from_bools([true, false, true]), 13);
/// assert_eq!(a.eval(Fp::new(3, 13)).value(), (1 + 9) % 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPolynomial {
    /// Bit coefficients, index = degree.
    coeffs: BitString,
    /// Barrett reduction state for the field modulus, precomputed once at
    /// construction so every Horner step is a multiply-shift, not a
    /// division. (The factor is a pure function of the modulus, so the
    /// derived equality stays equality-of-moduli.)
    field: crate::field::Barrett,
}

impl BitPolynomial {
    /// Builds the polynomial with coefficient `i` equal to bit `i` of
    /// `bits`, over `GF(modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not prime, or not below `2⁶³` (the field
    /// invariant of [`Fp`]).
    #[must_use]
    pub fn from_bits(bits: &BitString, modulus: u64) -> Self {
        assert!(
            crate::prime::is_prime_cached(modulus),
            "modulus {modulus} must be prime"
        );
        Self {
            coeffs: bits.clone(),
            field: crate::field::Barrett::cached(modulus),
        }
    }

    /// Degree bound: the number of coefficients λ (the degree is `< λ`).
    #[must_use]
    pub fn coefficient_count(&self) -> usize {
        self.coeffs.len()
    }

    /// The field modulus.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.field.modulus()
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    ///
    /// # Panics
    ///
    /// Panics if `x` lives in a different field.
    #[must_use]
    pub fn eval(&self, x: Fp) -> Fp {
        assert_eq!(
            x.modulus(),
            self.modulus(),
            "evaluation point field mismatch"
        );
        Fp::new(self.eval_raw(x.value()), self.modulus())
    }

    /// Evaluates at the raw residue `x` (which must already be reduced,
    /// `x < p`), returning the raw residue of the result — the
    /// borrowed-state core of [`BitPolynomial::eval`] used by prepared
    /// fingerprint evaluation, where the field element wrappers would cost
    /// a redundant primality-cache lookup per call.
    #[must_use]
    pub fn eval_raw(&self, x: u64) -> u64 {
        debug_assert!(x < self.modulus(), "evaluation point not reduced");
        // Horner from the highest coefficient down, in raw residue
        // arithmetic: one Barrett multiply-shift per coefficient, no
        // per-step element construction and no division.
        let p = self.field.modulus();
        let mut acc: u64 = 0;
        for i in (0..self.coeffs.len()).rev() {
            acc = self.field.mul_mod(acc, x);
            if self.coeffs.bit(i).expect("index in range") {
                acc += 1;
                if acc == p {
                    acc = 0;
                }
            }
        }
        acc
    }

    /// Evaluates the polynomial at `L` points at once, Horner from the
    /// highest coefficient down across all lanes per step.
    ///
    /// Values are bit-identical to `L` calls of [`BitPolynomial::eval_raw`]
    /// — the point of the lane layout is purely mechanical: the scalar
    /// Horner loop is one long multiply-reduce dependency chain, so the
    /// core sits idle waiting on each step; interleaving `L` independent
    /// chains keeps the multiplier busy and hands the compiler a fixed-
    /// width inner loop it can unroll or lift to vector registers
    /// (portable scalar code, no target-feature gates). The batched trial
    /// engine probes in `u64×8` chunks through this path.
    ///
    /// Every lane must already be reduced (`xs[l] < p`).
    #[must_use]
    pub fn eval_raw_lanes<const L: usize>(&self, xs: &[u64; L]) -> [u64; L] {
        debug_assert!(
            xs.iter().all(|&x| x < self.modulus()),
            "evaluation points not reduced"
        );
        let p = self.field.modulus();
        let mut acc = [0u64; L];
        for i in (0..self.coeffs.len()).rev() {
            let bit = self.coeffs.bit(i).expect("index in range");
            for l in 0..L {
                acc[l] = self.field.mul_mod(acc[l], xs[l]);
                if bit {
                    acc[l] += 1;
                    if acc[l] == p {
                        acc[l] = 0;
                    }
                }
            }
        }
        acc
    }

    /// The full evaluation table `[A(0), A(1), …, A(p−1)]`.
    ///
    /// Costs `p` Horner evaluations up front; afterwards each evaluation is
    /// one array index. Worth it exactly when one polynomial will be
    /// evaluated at least ~`p` times — the Monte-Carlo regime the prepared
    /// prover/verifier layer in `rpls-core` lives in. The caller is
    /// responsible for bounding `p` (an adversarially declared input length
    /// can push the protocol prime into the billions).
    #[must_use]
    pub fn evaluation_table(&self) -> Vec<u64> {
        (0..self.modulus()).map(|x| self.eval_raw(x)).collect()
    }

    /// Upper bound on the collision probability of the fingerprint for
    /// strings of this length over this field: `(λ − 1) / p`.
    #[must_use]
    pub fn collision_bound(&self) -> f64 {
        if self.coeffs.is_empty() {
            return 0.0;
        }
        (self.coeffs.len() as f64 - 1.0) / self.modulus() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::protocol_prime;

    fn bits(s: &str) -> BitString {
        BitString::from_bools(s.chars().map(|c| c == '1'))
    }

    #[test]
    fn evaluation_matches_naive_sum() {
        let p = 101;
        let b = bits("1101001");
        let poly = BitPolynomial::from_bits(&b, p);
        for x in 0..p {
            let naive: u64 = b
                .iter()
                .enumerate()
                .filter(|&(_, bit)| bit)
                .map(|(i, _)| crate::prime::pow_mod(x, i as u64, p))
                .sum::<u64>()
                % p;
            assert_eq!(poly.eval(Fp::new(x, p)).value(), naive, "x = {x}");
        }
    }

    #[test]
    fn lane_evaluation_is_bit_identical_to_scalar() {
        let p = protocol_prime(40);
        let poly = BitPolynomial::from_bits(&bits("1101001011101000100101110110100101110100"), p);
        // Sweep misaligned windows so every lane position sees many points.
        for start in 0..32u64 {
            let xs: [u64; 8] = std::array::from_fn(|l| (start + 7 * l as u64) % p);
            let lanes = poly.eval_raw_lanes(&xs);
            for (l, &x) in xs.iter().enumerate() {
                assert_eq!(lanes[l], poly.eval_raw(x), "lane {l}, x = {x}");
            }
        }
        // Narrow lane widths share the same code path.
        let xs4: [u64; 4] = [0, 1, p - 1, p / 2];
        assert_eq!(
            poly.eval_raw_lanes(&xs4),
            [
                poly.eval_raw(0),
                poly.eval_raw(1),
                poly.eval_raw(p - 1),
                poly.eval_raw(p / 2)
            ]
        );
    }

    #[test]
    fn zero_polynomial_evaluates_to_zero() {
        let poly = BitPolynomial::from_bits(&BitString::zeros(10), 31);
        for x in 0..31 {
            assert_eq!(poly.eval(Fp::new(x, 31)).value(), 0);
        }
    }

    #[test]
    fn distinct_strings_agree_on_few_points() {
        // The algebraic core of Lemma A.1: count agreement points and check
        // the (λ-1)/p bound exactly.
        let lambda = 16usize;
        let p = protocol_prime(lambda);
        let a = bits("1010101010101010");
        let b = bits("1010101010101011");
        let pa = BitPolynomial::from_bits(&a, p);
        let pb = BitPolynomial::from_bits(&b, p);
        let collisions = (0..p)
            .filter(|&x| pa.eval(Fp::new(x, p)) == pb.eval(Fp::new(x, p)))
            .count();
        assert!(
            collisions < lambda,
            "collisions {collisions} exceed degree bound"
        );
        let bound = pa.collision_bound();
        assert!(bound < 1.0 / 3.0, "bound {bound} must be < 1/3");
    }

    #[test]
    fn equal_strings_agree_everywhere() {
        let p = protocol_prime(8);
        let a = bits("11001010");
        let pa = BitPolynomial::from_bits(&a, p);
        let pb = BitPolynomial::from_bits(&a.clone(), p);
        for x in 0..p {
            assert_eq!(pa.eval(Fp::new(x, p)), pb.eval(Fp::new(x, p)));
        }
    }

    #[test]
    fn evaluation_table_matches_pointwise_eval() {
        let p = protocol_prime(24);
        let poly = BitPolynomial::from_bits(&bits("110100101110100010010111"), p);
        let table = poly.evaluation_table();
        assert_eq!(table.len() as u64, p);
        for x in 0..p {
            assert_eq!(table[x as usize], poly.eval_raw(x), "x = {x}");
            assert_eq!(table[x as usize], poly.eval(Fp::new(x, p)).value());
        }
    }

    #[test]
    fn empty_string_has_zero_collision_bound() {
        let poly = BitPolynomial::from_bits(&BitString::new(), 7);
        assert_eq!(poly.collision_bound(), 0.0);
        assert_eq!(poly.eval(Fp::new(3, 7)).value(), 0);
    }
}
