//! Bit strings as polynomials over `GF(p)`.
//!
//! Lemma A.1 views a λ-bit string `a = a₀a₁…a_{λ−1}` as the polynomial
//! `A(x) = a₀ + a₁x + … + a_{λ−1}x^{λ−1} mod p`. Two distinct strings give
//! distinct polynomials of degree `< λ`, which agree on at most `λ − 1`
//! points of the field — the entire soundness of the protocol.

use crate::field::Fp;
use rpls_bits::BitString;

/// A polynomial over `GF(p)` whose coefficients are the bits of a string
/// (coefficient `i` = bit `i`).
///
/// # Examples
///
/// ```
/// use rpls_fingerprint::{BitPolynomial, Fp};
/// use rpls_bits::BitString;
///
/// // 101 -> A(x) = 1 + x^2
/// let a = BitPolynomial::from_bits(&BitString::from_bools([true, false, true]), 13);
/// assert_eq!(a.eval(Fp::new(3, 13)).value(), (1 + 9) % 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPolynomial {
    /// Bit coefficients, index = degree.
    coeffs: BitString,
    /// Barrett reduction state for the field modulus, precomputed once at
    /// construction so every Horner step is a multiply-shift, not a
    /// division. (The factor is a pure function of the modulus, so the
    /// derived equality stays equality-of-moduli.)
    field: crate::field::Barrett,
}

impl BitPolynomial {
    /// Builds the polynomial with coefficient `i` equal to bit `i` of
    /// `bits`, over `GF(modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not prime, or not below `2⁶³` (the field
    /// invariant of [`Fp`]).
    #[must_use]
    pub fn from_bits(bits: &BitString, modulus: u64) -> Self {
        assert!(
            crate::prime::is_prime_cached(modulus),
            "modulus {modulus} must be prime"
        );
        Self {
            coeffs: bits.clone(),
            field: crate::field::Barrett::cached(modulus),
        }
    }

    /// Degree bound: the number of coefficients λ (the degree is `< λ`).
    #[must_use]
    pub fn coefficient_count(&self) -> usize {
        self.coeffs.len()
    }

    /// The field modulus.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.field.modulus()
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    ///
    /// # Panics
    ///
    /// Panics if `x` lives in a different field.
    #[must_use]
    pub fn eval(&self, x: Fp) -> Fp {
        assert_eq!(
            x.modulus(),
            self.modulus(),
            "evaluation point field mismatch"
        );
        Fp::new(self.eval_raw(x.value()), self.modulus())
    }

    /// Evaluates at the raw residue `x` (which must already be reduced,
    /// `x < p`), returning the raw residue of the result — the
    /// borrowed-state core of [`BitPolynomial::eval`] used by prepared
    /// fingerprint evaluation, where the field element wrappers would cost
    /// a redundant primality-cache lookup per call.
    #[must_use]
    pub fn eval_raw(&self, x: u64) -> u64 {
        debug_assert!(x < self.modulus(), "evaluation point not reduced");
        // Horner from the highest coefficient down, in raw residue
        // arithmetic: one Barrett multiply-shift per coefficient, no
        // per-step element construction and no division.
        let p = self.field.modulus();
        let mut acc: u64 = 0;
        for i in (0..self.coeffs.len()).rev() {
            acc = self.field.mul_mod(acc, x);
            if self.coeffs.bit(i).expect("index in range") {
                acc += 1;
                if acc == p {
                    acc = 0;
                }
            }
        }
        acc
    }

    /// The full evaluation table `[A(0), A(1), …, A(p−1)]`.
    ///
    /// Costs `p` Horner evaluations up front; afterwards each evaluation is
    /// one array index. Worth it exactly when one polynomial will be
    /// evaluated at least ~`p` times — the Monte-Carlo regime the prepared
    /// prover/verifier layer in `rpls-core` lives in. The caller is
    /// responsible for bounding `p` (an adversarially declared input length
    /// can push the protocol prime into the billions).
    #[must_use]
    pub fn evaluation_table(&self) -> Vec<u64> {
        (0..self.modulus()).map(|x| self.eval_raw(x)).collect()
    }

    /// Upper bound on the collision probability of the fingerprint for
    /// strings of this length over this field: `(λ − 1) / p`.
    #[must_use]
    pub fn collision_bound(&self) -> f64 {
        if self.coeffs.is_empty() {
            return 0.0;
        }
        (self.coeffs.len() as f64 - 1.0) / self.modulus() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::protocol_prime;

    fn bits(s: &str) -> BitString {
        BitString::from_bools(s.chars().map(|c| c == '1'))
    }

    #[test]
    fn evaluation_matches_naive_sum() {
        let p = 101;
        let b = bits("1101001");
        let poly = BitPolynomial::from_bits(&b, p);
        for x in 0..p {
            let naive: u64 = b
                .iter()
                .enumerate()
                .filter(|&(_, bit)| bit)
                .map(|(i, _)| crate::prime::pow_mod(x, i as u64, p))
                .sum::<u64>()
                % p;
            assert_eq!(poly.eval(Fp::new(x, p)).value(), naive, "x = {x}");
        }
    }

    #[test]
    fn zero_polynomial_evaluates_to_zero() {
        let poly = BitPolynomial::from_bits(&BitString::zeros(10), 31);
        for x in 0..31 {
            assert_eq!(poly.eval(Fp::new(x, 31)).value(), 0);
        }
    }

    #[test]
    fn distinct_strings_agree_on_few_points() {
        // The algebraic core of Lemma A.1: count agreement points and check
        // the (λ-1)/p bound exactly.
        let lambda = 16usize;
        let p = protocol_prime(lambda);
        let a = bits("1010101010101010");
        let b = bits("1010101010101011");
        let pa = BitPolynomial::from_bits(&a, p);
        let pb = BitPolynomial::from_bits(&b, p);
        let collisions = (0..p)
            .filter(|&x| pa.eval(Fp::new(x, p)) == pb.eval(Fp::new(x, p)))
            .count();
        assert!(
            collisions < lambda,
            "collisions {collisions} exceed degree bound"
        );
        let bound = pa.collision_bound();
        assert!(bound < 1.0 / 3.0, "bound {bound} must be < 1/3");
    }

    #[test]
    fn equal_strings_agree_everywhere() {
        let p = protocol_prime(8);
        let a = bits("11001010");
        let pa = BitPolynomial::from_bits(&a, p);
        let pb = BitPolynomial::from_bits(&a.clone(), p);
        for x in 0..p {
            assert_eq!(pa.eval(Fp::new(x, p)), pb.eval(Fp::new(x, p)));
        }
    }

    #[test]
    fn evaluation_table_matches_pointwise_eval() {
        let p = protocol_prime(24);
        let poly = BitPolynomial::from_bits(&bits("110100101110100010010111"), p);
        let table = poly.evaluation_table();
        assert_eq!(table.len() as u64, p);
        for x in 0..p {
            assert_eq!(table[x as usize], poly.eval_raw(x), "x = {x}");
            assert_eq!(table[x as usize], poly.eval(Fp::new(x, p)).value());
        }
    }

    #[test]
    fn empty_string_has_zero_collision_bound() {
        let poly = BitPolynomial::from_bits(&BitString::new(), 7);
        assert_eq!(poly.collision_bound(), 0.0);
        assert_eq!(poly.eval(Fp::new(3, 7)).value(), 0);
    }
}
