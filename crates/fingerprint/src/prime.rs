//! Primality testing and prime selection.
//!
//! Deterministic Miller–Rabin for all 64-bit integers (using the known
//! sufficient witness set), plus the paper's specific need: a prime in the
//! open interval `(3λ, 6λ)`, which exists for every `λ ≥ 1` by Bertrand's
//! postulate applied to `3λ`.

/// Deterministic Miller–Rabin primality test, valid for all `u64` inputs.
///
/// # Examples
///
/// ```
/// use rpls_fingerprint::prime::is_prime;
/// assert!(is_prime(2));
/// assert!(is_prime(1_000_000_007));
/// assert!(!is_prime(1));
/// assert!(!is_prime(561)); // Carmichael number
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    // n is odd and > 37; write n-1 = d * 2^s.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    // This witness set is sufficient for all n < 2^64.
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Like [`is_prime`] but memoising the most recent primes seen — the field
/// layer validates its modulus on every element construction, and a
/// workload only ever touches a handful of moduli, so this turns millions
/// of Miller–Rabin runs into array lookups. Negative answers are never
/// cached (composites should stay loud and are never hot).
#[must_use]
pub fn is_prime_cached(n: u64) -> bool {
    use std::cell::Cell;
    thread_local! {
        // 0 is composite, so empty slots can never false-positive.
        static RECENT: Cell<[u64; 8]> = const { Cell::new([0; 8]) };
    }
    RECENT.with(|recent| {
        let mut known = recent.get();
        if known.contains(&n) {
            return true;
        }
        if is_prime(n) {
            known.rotate_right(1);
            known[0] = n;
            recent.set(known);
            true
        } else {
            false
        }
    })
}

/// `(a * b) mod m` without overflow — the naive `u128 %` **reference**
/// implementation, valid for every `u64` modulus.
///
/// Hot loops use [`crate::field::Barrett`] instead, which replaces the
/// 128-bit division with a precomputed multiply-shift for moduli below
/// `2⁶³`; this function is what Miller–Rabin (whose moduli span the full
/// `u64` range) runs on, and the oracle the Barrett property tests compare
/// against.
#[must_use]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// `(base ^ exp) mod m` by square-and-multiply, on the naive [`mul_mod`]
/// reference (see there for when to prefer [`crate::field::Barrett`]).
#[must_use]
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// The smallest prime `≥ n`.
///
/// # Panics
///
/// Panics if no prime fits in `u64` at or above `n` (cannot happen for
/// `n ≤ 2^64 − 59`).
#[must_use]
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    loop {
        if is_prime(n) {
            return n;
        }
        n = n.checked_add(2).expect("prime below u64::MAX");
    }
}

/// The prime the paper's equality protocol uses for λ-bit strings: the
/// smallest prime in the open interval `(3λ, 6λ)` — deterministic, so both
/// parties (and every node of a compiled scheme) agree on it without
/// communication.
///
/// For tiny `λ` where the interval is empty of primes before widening, the
/// interval is interpreted with a floor: `λ` is clamped to at least 2, which
/// keeps the guarantee `p > 3λ ≥ 3·(string length)` needed for the `< 1/3`
/// collision bound.
///
/// # Examples
///
/// ```
/// use rpls_fingerprint::prime::protocol_prime;
/// let p = protocol_prime(100);
/// assert!(300 < p && p < 600);
/// ```
#[must_use]
pub fn protocol_prime(lambda: usize) -> u64 {
    use std::cell::Cell;
    // The verification engine calls this once per certificate generated and
    // once per certificate checked, always with the handful of λ values the
    // workload's label sizes induce — memoise the most recent ones per
    // thread. The cache is a small rotating array, not a map: adversarial
    // labels can claim arbitrarily many distinct κ values, and an unbounded
    // memo would let a verifier's memory grow without limit.
    thread_local! {
        // A prime is never 0, so `p == 0` marks an empty slot.
        static RECENT: Cell<[(usize, u64); 8]> = const { Cell::new([(0, 0); 8]) };
    }
    RECENT.with(|recent| {
        let mut known = recent.get();
        if let Some(&(_, p)) = known.iter().find(|&&(l, p)| p != 0 && l == lambda) {
            return p;
        }
        let l = lambda.max(2) as u64;
        let p = next_prime(3 * l + 1);
        debug_assert!(p < 6 * l, "Bertrand guarantees a prime in (3λ, 6λ)");
        known.rotate_right(1);
        known[0] = (lambda, p);
        recent.set(known);
        p
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43];
        for p in primes {
            assert!(is_prime(p), "{p}");
        }
        for c in [0u64, 1, 4, 6, 8, 9, 15, 21, 25, 27, 33, 35, 49] {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime 2^61-1
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime(u64::MAX));
    }

    #[test]
    fn sieve_agreement_up_to_10000() {
        // Cross-check Miller–Rabin against a straightforward sieve.
        let n = 10_000usize;
        let mut sieve = vec![true; n + 1];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..=n {
            if sieve[i] {
                for j in (i * i..=n).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        for (i, &expected) in sieve.iter().enumerate() {
            assert_eq!(is_prime(i as u64), expected, "n = {i}");
        }
    }

    #[test]
    fn next_prime_finds_gaps() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(97), 97);
    }

    #[test]
    fn protocol_prime_in_interval() {
        for lambda in 1..=2000usize {
            let p = protocol_prime(lambda);
            let l = lambda.max(2) as u64;
            assert!(3 * l < p && p < 6 * l, "λ={lambda} gave p={p}");
            assert!(is_prime(p));
        }
    }

    #[test]
    fn protocol_prime_memo_survives_eviction_sweeps() {
        // Touch far more distinct λ values than the rotating cache holds
        // (the adversarial many-κ pattern), then re-ask for earlier ones:
        // answers must stay correct, evicted or not.
        let first: Vec<u64> = (1..=64usize).map(protocol_prime).collect();
        for big in (1000..1400).step_by(7) {
            let _ = protocol_prime(big);
        }
        for (i, &p) in first.iter().enumerate() {
            assert_eq!(protocol_prime(i + 1), p, "λ = {}", i + 1);
        }
    }

    #[test]
    fn pow_mod_matches_naive() {
        for m in [7u64, 13, 97] {
            for b in 0..m {
                let mut acc = 1u64;
                for e in 0..10u64 {
                    assert_eq!(pow_mod(b, e, m), acc, "b={b} e={e} m={m}");
                    acc = acc * b % m;
                }
            }
        }
    }
}
