//! The [`BitReader`] cursor for unpacking fixed-width fields.

use crate::{BitSlice, BitString, BitsError};

/// Reads fixed-width fields back out of a [`BitString`], in the order they
/// were written by a [`BitWriter`](crate::BitWriter).
///
/// # Examples
///
/// ```
/// use rpls_bits::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_u64(42, 6).write_bool(true);
/// let s = w.finish();
///
/// let mut r = BitReader::new(&s);
/// assert_eq!(r.read_u64(6).unwrap(), 42);
/// assert!(r.read_bool().unwrap());
/// assert!(r.is_exhausted());
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    src: BitSlice<'a>,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `src`.
    #[must_use]
    pub fn new(src: &'a BitString) -> Self {
        Self {
            src: src.as_slice(),
            pos: 0,
        }
    }

    /// Creates a reader over a borrowed slice (e.g. a certificate viewed
    /// in-place inside the engine's arena).
    #[must_use]
    pub fn from_slice(src: BitSlice<'a>) -> Self {
        Self { src, pos: 0 }
    }

    /// Number of bits not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.src.len().saturating_sub(self.pos)
    }

    /// Whether every bit has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::OutOfInput`] at end of input.
    pub fn read_bool(&mut self) -> Result<bool, BitsError> {
        match self.src.bit(self.pos) {
            Some(b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(BitsError::OutOfInput {
                requested: 1,
                available: 0,
            }),
        }
    }

    /// Reads a big-endian unsigned integer of exactly `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::InvalidWidth`] if `width` is not in `1..=64`, or
    /// [`BitsError::OutOfInput`] if fewer than `width` bits remain.
    pub fn read_u64(&mut self, width: u32) -> Result<u64, BitsError> {
        if width == 0 || width > 64 {
            return Err(BitsError::InvalidWidth(width));
        }
        if (width as usize) > self.remaining() {
            return Err(BitsError::OutOfInput {
                requested: width as usize,
                available: self.remaining(),
            });
        }
        let bytes = self.src.as_bytes();
        let mut acc: u64 = 0;
        let mut taken: u32 = 0;
        // Consume up to a byte per step instead of a bit per step.
        while taken < width {
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = (width - taken).min(avail);
            let byte = bytes[self.pos / 8];
            let chunk = (byte >> (avail - take)) & (((1u16 << take) - 1) as u8);
            acc = (acc << take) | u64::from(chunk);
            self.pos += take as usize;
            taken += take;
        }
        Ok(acc)
    }

    /// Reads `len` bits into a fresh [`BitString`].
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::OutOfInput`] if fewer than `len` bits remain.
    pub fn read_bits(&mut self, len: usize) -> Result<BitString, BitsError> {
        if len > self.remaining() {
            return Err(BitsError::OutOfInput {
                requested: len,
                available: self.remaining(),
            });
        }
        let mut out = BitString::with_capacity(len);
        let mut remaining = len;
        // Word-sized chunks, then the tail.
        while remaining >= 64 {
            let word = self.read_u64(64).expect("bounds checked above");
            out.push_u64(word, 64);
            remaining -= 64;
        }
        if remaining > 0 {
            let word = self
                .read_u64(remaining as u32)
                .expect("bounds checked above");
            out.push_u64(word, remaining as u32);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn round_trips_mixed_fields() {
        let mut w = BitWriter::new();
        w.write_u64(7, 3)
            .write_bool(false)
            .write_u64(1234, 11)
            .write_u64(0, 1);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        assert_eq!(r.read_u64(3).unwrap(), 7);
        assert!(!r.read_bool().unwrap());
        assert_eq!(r.read_u64(11).unwrap(), 1234);
        assert_eq!(r.read_u64(1).unwrap(), 0);
        assert!(r.is_exhausted());
    }

    #[test]
    fn out_of_input_reports_counts() {
        let s = BitString::zeros(3);
        let mut r = BitReader::new(&s);
        let err = r.read_u64(5).unwrap_err();
        assert_eq!(
            err,
            BitsError::OutOfInput {
                requested: 5,
                available: 3
            }
        );
        // Nothing consumed by the failed read.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn read_bits_extracts_substring() {
        let s = BitString::from_bools([true, false, true, true]);
        let mut r = BitReader::new(&s);
        let first = r.read_bits(2).unwrap();
        assert_eq!(first, BitString::from_bools([true, false]));
        let rest = r.read_bits(2).unwrap();
        assert_eq!(rest, BitString::from_bools([true, true]));
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn invalid_width_rejected() {
        let s = BitString::zeros(80);
        let mut r = BitReader::new(&s);
        assert!(matches!(r.read_u64(0), Err(BitsError::InvalidWidth(0))));
        assert!(matches!(r.read_u64(65), Err(BitsError::InvalidWidth(65))));
        // 64 is fine.
        assert_eq!(r.read_u64(64).unwrap(), 0);
    }
}
