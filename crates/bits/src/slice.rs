//! The [`BitSlice`] type: a borrowed, exact-length view of bits.
//!
//! A `BitSlice` is to [`BitString`] what `&str` is to `String`: a cheap,
//! copyable view used wherever certificates are read out of a shared arena
//! (the engine's `CertificateBuffer`) without materialising owned strings.

use crate::BitString;
use std::fmt;

/// A borrowed sequence of bits with exact length accounting.
///
/// Bits are stored MSB-first within each backing byte. Invariants (upheld by
/// every constructor in this workspace): the byte slice has exactly
/// `len.div_ceil(8)` bytes and the padding bits of the final partial byte
/// are zero, so equality and ordering can compare raw bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitSlice<'a> {
    bytes: &'a [u8],
    len: usize,
}

impl<'a> BitSlice<'a> {
    /// Wraps a canonical byte slice holding exactly `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly `len.div_ceil(8)` bytes long.
    #[must_use]
    pub fn new(bytes: &'a [u8], len: usize) -> Self {
        assert_eq!(
            bytes.len(),
            len.div_ceil(8),
            "byte slice does not match bit length {len}"
        );
        Self { bytes, len }
    }

    /// The empty slice.
    #[must_use]
    pub fn empty() -> Self {
        Self { bytes: &[], len: 0 }
    }

    /// Length in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice contains no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing bytes (final byte zero-padded).
    #[must_use]
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Returns bit `index` (MSB-first), or `None` if out of range.
    #[must_use]
    pub fn bit(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some(self.bytes[index / 8] & (0x80 >> (index % 8)) != 0)
    }

    /// Iterates over the bits MSB-first.
    pub fn iter(&self) -> SliceIter<'a> {
        SliceIter { s: *self, pos: 0 }
    }

    /// Interprets up to the first 64 bits as a big-endian unsigned integer.
    #[must_use]
    pub fn leading_u64(&self) -> u64 {
        let mut acc: u64 = 0;
        for i in 0..self.len.min(64) {
            acc = (acc << 1) | u64::from(self.bit(i).unwrap_or(false));
        }
        acc
    }

    /// Copies the slice into an owned [`BitString`].
    #[must_use]
    pub fn to_bitstring(&self) -> BitString {
        BitString::from_bytes(self.bytes, self.len)
    }
}

impl Default for BitSlice<'_> {
    fn default() -> Self {
        Self::empty()
    }
}

impl PartialEq<BitString> for BitSlice<'_> {
    fn eq(&self, other: &BitString) -> bool {
        *self == other.as_slice()
    }
}

impl PartialEq<BitSlice<'_>> for BitString {
    fn eq(&self, other: &BitSlice<'_>) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for BitSlice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSlice[{}]<", self.len)?;
        for (i, b) in self.iter().enumerate() {
            if i == 64 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{}", u8::from(b))?;
        }
        write!(f, ">")
    }
}

impl fmt::Display for BitSlice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for BitSlice<'a> {
    type Item = bool;
    type IntoIter = SliceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the bits of a [`BitSlice`], MSB-first.
#[derive(Debug, Clone)]
pub struct SliceIter<'a> {
    s: BitSlice<'a>,
    pos: usize,
}

impl Iterator for SliceIter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.s.bit(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.s.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SliceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_views_match_owner() {
        let s = BitString::from_bools([true, false, true, true, false]);
        let v = s.as_slice();
        assert_eq!(v.len(), 5);
        assert_eq!(v.bit(0), Some(true));
        assert_eq!(v.bit(1), Some(false));
        assert_eq!(v.bit(5), None);
        assert_eq!(v.iter().collect::<Vec<_>>(), s.iter().collect::<Vec<_>>());
        assert_eq!(v.leading_u64(), s.leading_u64());
        assert_eq!(v.to_bitstring(), s);
    }

    #[test]
    fn cross_equality_with_bitstring() {
        let s = BitString::from_bools([true, true, false]);
        let t = BitString::from_bools([true, true, false]);
        assert_eq!(s.as_slice(), t);
        assert_eq!(t, s.as_slice());
        assert_eq!(s.as_slice(), t.as_slice());
        let u = BitString::from_bools([true, true, true]);
        assert_ne!(s.as_slice(), u.as_slice());
        // Same prefix, different length.
        let w = BitString::from_bools([true, true]);
        assert_ne!(s.as_slice(), w.as_slice());
    }

    #[test]
    fn empty_and_default() {
        assert!(BitSlice::empty().is_empty());
        assert_eq!(BitSlice::default().len(), 0);
        assert_eq!(BitSlice::empty().to_bitstring(), BitString::new());
    }

    #[test]
    #[should_panic(expected = "does not match bit length")]
    fn mismatched_byte_count_rejected() {
        let _ = BitSlice::new(&[0, 0], 3);
    }

    #[test]
    fn display_matches_bitstring() {
        let s = BitString::from_bools([true, false, true]);
        assert_eq!(s.as_slice().to_string(), "101");
        assert!(format!("{:?}", s.as_slice()).contains("BitSlice[3]"));
    }
}
