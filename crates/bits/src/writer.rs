//! The [`BitWriter`] cursor for packing fixed-width fields.

use crate::{BitString, BitsError};

/// Incrementally builds a [`BitString`] out of fixed-width integer fields,
/// booleans and embedded bit strings.
///
/// The writer is infallible for the common paths ([`write_u64`] panics only
/// on programmer error — widths outside `1..=64` or values that do not fit);
/// use [`try_write_u64`] when the width or value comes from untrusted input.
///
/// [`write_u64`]: BitWriter::write_u64
/// [`try_write_u64`]: BitWriter::try_write_u64
///
/// # Examples
///
/// ```
/// use rpls_bits::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_u64(3, 4);
/// w.write_bool(false);
/// let s = w.finish();
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.to_string(), "00110");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    out: BitString,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Appends a single bit.
    pub fn write_bool(&mut self, bit: bool) -> &mut Self {
        self.out.push(bit);
        self
    }

    /// Appends `value` as a big-endian field of exactly `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64` or `value` needs more than
    /// `width` bits. Use [`BitWriter::try_write_u64`] for a fallible variant.
    pub fn write_u64(&mut self, value: u64, width: u32) -> &mut Self {
        self.try_write_u64(value, width)
            .expect("write_u64: invalid width or value");
        self
    }

    /// Appends `value` as a big-endian field of exactly `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`BitsError::InvalidWidth`] if `width` is not in `1..=64`, or
    /// [`BitsError::ValueTooWide`] if `value` needs more than `width` bits.
    pub fn try_write_u64(&mut self, value: u64, width: u32) -> Result<&mut Self, BitsError> {
        if width == 0 || width > 64 {
            return Err(BitsError::InvalidWidth(width));
        }
        if width < 64 && value >> width != 0 {
            return Err(BitsError::ValueTooWide { value, width });
        }
        self.out.push_u64(value, width);
        Ok(self)
    }

    /// Appends every bit of `bits`.
    pub fn write_bits(&mut self, bits: &BitString) -> &mut Self {
        self.out.extend_bits(bits);
        self
    }

    /// Appends the bytes MSB-first (8 bits per byte).
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.out
            .extend_from_slice(crate::BitSlice::new(bytes, bytes.len() * 8));
        self
    }

    /// Consumes the writer, returning the accumulated bit string.
    #[must_use]
    pub fn finish(self) -> BitString {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_pack_big_endian() {
        let mut w = BitWriter::new();
        w.write_u64(0b101, 3).write_u64(0b01, 2);
        assert_eq!(w.finish().to_string(), "10101");
    }

    #[test]
    fn invalid_width_rejected() {
        let mut w = BitWriter::new();
        assert_eq!(
            w.try_write_u64(0, 0).unwrap_err(),
            BitsError::InvalidWidth(0)
        );
        assert_eq!(
            w.try_write_u64(0, 65).unwrap_err(),
            BitsError::InvalidWidth(65)
        );
    }

    #[test]
    fn oversized_value_rejected() {
        let mut w = BitWriter::new();
        assert_eq!(
            w.try_write_u64(4, 2).unwrap_err(),
            BitsError::ValueTooWide { value: 4, width: 2 }
        );
        // Boundary: exactly fits.
        assert!(w.try_write_u64(3, 2).is_ok());
    }

    #[test]
    fn full_width_values_accepted() {
        let mut w = BitWriter::new();
        w.write_u64(u64::MAX, 64);
        let s = w.finish();
        assert_eq!(s.len(), 64);
        assert!(s.iter().all(|b| b));
    }

    #[test]
    fn write_bytes_is_eight_bits_each() {
        let mut w = BitWriter::new();
        w.write_bytes(&[0xA5, 0x01]);
        let s = w.finish();
        assert_eq!(s.len(), 16);
        assert_eq!(s.to_string(), "1010010100000001");
    }
}
