//! Bit-exact strings for proof-labeling schemes.
//!
//! The complexity measure of a proof-labeling scheme is the *size in bits* of
//! the labels (deterministic schemes) or of the randomized certificates
//! (randomized schemes). Rounding everything to whole bytes would distort the
//! very quantity the paper studies — Θ(log n) vs Θ(log log n) gaps live in a
//! handful of bits at practical sizes — so this crate provides a [`BitString`]
//! that tracks its length exactly, plus [`BitWriter`]/[`BitReader`] cursors
//! for packing and unpacking fixed-width fields.
//!
//! # Examples
//!
//! ```
//! use rpls_bits::{BitString, BitWriter, BitReader};
//!
//! let mut w = BitWriter::new();
//! w.write_u64(5, 7);          // value 5 in 7 bits
//! w.write_bool(true);
//! let bits: BitString = w.finish();
//! assert_eq!(bits.len(), 8);
//!
//! let mut r = BitReader::new(&bits);
//! assert_eq!(r.read_u64(7).unwrap(), 5);
//! assert_eq!(r.read_bool().unwrap(), true);
//! assert!(r.is_exhausted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reader;
mod slice;
mod string;
mod writer;

pub use reader::BitReader;
pub use slice::{BitSlice, SliceIter};
pub use string::BitString;
pub use writer::BitWriter;

use std::error::Error;
use std::fmt;

/// Error returned when a [`BitReader`] runs past the end of its input or a
/// fixed-width field cannot hold the requested value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitsError {
    /// A read requested more bits than remain in the input.
    OutOfInput {
        /// Bits requested by the failing read.
        requested: usize,
        /// Bits that were still available.
        available: usize,
    },
    /// A value does not fit in the requested field width.
    ValueTooWide {
        /// The value that failed to fit.
        value: u64,
        /// The field width in bits.
        width: u32,
    },
    /// A field width outside `1..=64` was requested for an integer.
    InvalidWidth(u32),
}

impl fmt::Display for BitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitsError::OutOfInput {
                requested,
                available,
            } => write!(
                f,
                "read of {requested} bits exceeds remaining input of {available} bits"
            ),
            BitsError::ValueTooWide { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            BitsError::InvalidWidth(w) => write!(f, "invalid integer field width {w}"),
        }
    }
}

impl Error for BitsError {}

/// Number of bits needed to represent `value` (at least 1, so that the value
/// 0 still occupies one bit when stored).
///
/// # Examples
///
/// ```
/// assert_eq!(rpls_bits::bits_for(0), 1);
/// assert_eq!(rpls_bits::bits_for(1), 1);
/// assert_eq!(rpls_bits::bits_for(5), 3);
/// assert_eq!(rpls_bits::bits_for(255), 8);
/// ```
#[must_use]
pub fn bits_for(value: u64) -> u32 {
    if value == 0 {
        1
    } else {
        64 - value.leading_zeros()
    }
}

/// Number of bits needed to index any of `universe` distinct values, i.e.
/// `⌈log₂ universe⌉`, with the convention that a universe of size 0 or 1
/// needs one bit.
///
/// This is the width used throughout the schemes for node identifiers
/// (`id_width(n)` bits per identifier in an `n`-node network).
///
/// # Examples
///
/// ```
/// assert_eq!(rpls_bits::id_width(1), 1);
/// assert_eq!(rpls_bits::id_width(2), 1);
/// assert_eq!(rpls_bits::id_width(5), 3);
/// assert_eq!(rpls_bits::id_width(1024), 10);
/// ```
#[must_use]
pub fn id_width(universe: u64) -> u32 {
    if universe <= 2 {
        1
    } else {
        bits_for(universe - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn id_width_is_ceil_log2() {
        assert_eq!(id_width(0), 1);
        assert_eq!(id_width(1), 1);
        assert_eq!(id_width(2), 1);
        assert_eq!(id_width(3), 2);
        assert_eq!(id_width(4), 2);
        assert_eq!(id_width(5), 3);
        assert_eq!(id_width(256), 8);
        assert_eq!(id_width(257), 9);
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = BitsError::OutOfInput {
            requested: 8,
            available: 3,
        };
        assert!(!e.to_string().is_empty());
        let e = BitsError::ValueTooWide { value: 9, width: 3 };
        assert!(e.to_string().contains('9'));
        let e = BitsError::InvalidWidth(65);
        assert!(e.to_string().contains("65"));
    }
}
