//! The [`BitString`] type: an owned, exact-length sequence of bits.

use crate::BitSlice;
use std::fmt;

/// An owned sequence of bits with exact length accounting.
///
/// Bits are stored MSB-first within each backing byte; the final partial byte
/// (if any) is zero-padded, and all operations respect the logical length.
///
/// # Examples
///
/// ```
/// use rpls_bits::BitString;
///
/// let bits = BitString::from_bools([true, false, true]);
/// assert_eq!(bits.len(), 3);
/// assert_eq!(bits.bit(0), Some(true));
/// assert_eq!(bits.bit(1), Some(false));
/// assert_eq!(bits.bit(3), None);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitString {
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// Creates an empty bit string.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit string of `len` zero bits.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = rpls_bits::BitString::zeros(10);
    /// assert_eq!(z.len(), 10);
    /// assert!(z.iter().all(|b| !b));
    /// ```
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            bytes: vec![0u8; len.div_ceil(8)],
            len,
        }
    }

    /// Creates an empty bit string with room for `bits` bits before the
    /// backing storage reallocates.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Removes all bits, keeping the allocated capacity. The workhorse of
    /// the engine's reusable round scratch.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.len = 0;
    }

    /// Builds a bit string from an iterator of booleans, packing a byte at
    /// a time rather than pushing bit-by-bit.
    #[must_use]
    pub fn from_bools<I: IntoIterator<Item = bool>>(bools: I) -> Self {
        let iter = bools.into_iter();
        let (lo, _) = iter.size_hint();
        let mut out = Self::with_capacity(lo);
        let mut acc: u8 = 0;
        let mut filled: u32 = 0;
        for b in iter {
            acc = (acc << 1) | u8::from(b);
            filled += 1;
            if filled == 8 {
                out.bytes.push(acc);
                out.len += 8;
                acc = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            out.bytes.push(acc << (8 - filled));
            out.len += filled as usize;
        }
        out
    }

    /// Builds a bit string from raw bytes, keeping exactly `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > bytes.len() * 8`.
    #[must_use]
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            len <= bytes.len() * 8,
            "len {len} exceeds capacity of {} bytes",
            bytes.len()
        );
        let mut bytes = bytes[..len.div_ceil(8)].to_vec();
        // Zero the padding so equality/hash are canonical.
        if !len.is_multiple_of(8) {
            let mask = 0xffu8 << (8 - (len % 8));
            if let Some(last) = bytes.last_mut() {
                *last &= mask;
            }
        }
        Self { bytes, len }
    }

    /// Length in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string contains no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing bytes (final byte zero-padded).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns bit `index` (MSB-first), or `None` if out of range.
    #[must_use]
    pub fn bit(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        let byte = self.bytes[index / 8];
        Some(byte & (0x80 >> (index % 8)) != 0)
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let idx = self.len;
            self.bytes[idx / 8] |= 0x80 >> (idx % 8);
        }
        self.len += 1;
    }

    /// Appends all bits of `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rpls_bits::BitString;
    /// let mut a = BitString::from_bools([true]);
    /// let b = BitString::from_bools([false, true]);
    /// a.extend_bits(&b);
    /// assert_eq!(a, BitString::from_bools([true, false, true]));
    /// ```
    pub fn extend_bits(&mut self, other: &BitString) {
        self.extend_from_slice(other.as_slice());
    }

    /// Appends all bits of `other`, a byte at a time. Alias of
    /// [`BitString::extend_bits`] restricted to owned strings; used by the
    /// certificate arena.
    pub fn extend_from_bitstring(&mut self, other: &BitString) {
        self.extend_from_slice(other.as_slice());
    }

    /// Appends all bits of a borrowed slice, a byte at a time.
    pub fn extend_from_slice(&mut self, other: BitSlice<'_>) {
        if other.is_empty() {
            return;
        }
        self.bytes.reserve(other.len().div_ceil(8));
        let shift = (self.len % 8) as u32;
        if shift == 0 {
            // Byte-aligned: bulk copy, then trim the length.
            self.bytes.extend_from_slice(other.as_bytes());
            self.len += other.len();
            self.bytes.truncate(self.len.div_ceil(8));
        } else {
            // Stitch each source byte across the boundary of the partial
            // last byte.
            for &b in other.as_bytes() {
                let last = self.bytes.last_mut().expect("non-empty on misalign");
                *last |= b >> shift;
                self.bytes.push(b << (8 - shift));
            }
            self.len += other.len();
            self.bytes.truncate(self.len.div_ceil(8));
        }
        self.mask_tail();
    }

    /// Appends `value` as a big-endian field of exactly `width` bits,
    /// writing whole bytes where possible.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64` or `value` needs more bits.
    pub fn push_u64(&mut self, value: u64, width: u32) {
        assert!((1..=64).contains(&width), "invalid field width {width}");
        assert!(
            width == 64 || value >> width == 0,
            "value {value} does not fit in {width} bits"
        );
        let mut remaining = width;
        // Fill the partial last byte bit-by-bit, then copy whole bytes.
        while remaining > 0 && !self.len.is_multiple_of(8) {
            remaining -= 1;
            self.push((value >> remaining) & 1 == 1);
        }
        while remaining >= 8 {
            remaining -= 8;
            self.bytes.push(((value >> remaining) & 0xFF) as u8);
            self.len += 8;
        }
        if remaining > 0 {
            self.bytes.push(((value << (8 - remaining)) & 0xFF) as u8);
            self.len += remaining as usize;
        }
    }

    /// Zeroes the padding bits of the final partial byte so equality and
    /// hashing stay canonical after bulk writes.
    fn mask_tail(&mut self) {
        if !self.len.is_multiple_of(8) {
            if let Some(last) = self.bytes.last_mut() {
                *last &= 0xFFu8 << (8 - (self.len % 8));
            }
        }
    }

    /// A borrowed view of the whole string.
    #[must_use]
    pub fn as_slice(&self) -> BitSlice<'_> {
        BitSlice::new(&self.bytes, self.len)
    }

    /// Concatenates the given bit strings into one.
    #[must_use]
    pub fn concat<'a, I: IntoIterator<Item = &'a BitString>>(parts: I) -> Self {
        let mut out = Self::new();
        for p in parts {
            out.extend_bits(p);
        }
        out
    }

    /// Returns the prefix containing at most `len` bits.
    ///
    /// Truncation models a bandwidth budget: a scheme whose labels are cut to
    /// `len` bits carries only the information that fits, which is exactly
    /// the situation the lower-bound arguments exploit.
    #[must_use]
    pub fn truncated(&self, len: usize) -> Self {
        if len >= self.len {
            return self.clone();
        }
        Self::from_bytes(&self.bytes, len)
    }

    /// Iterates over the bits MSB-first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { s: self, pos: 0 }
    }

    /// Interprets up to the first 64 bits as a big-endian unsigned integer.
    /// Useful as a cheap canonical key for pigeonhole bucketing of short
    /// strings.
    #[must_use]
    pub fn leading_u64(&self) -> u64 {
        let mut acc: u64 = 0;
        for i in 0..self.len.min(64) {
            acc = (acc << 1) | u64::from(self.bit(i).unwrap_or(false));
        }
        acc
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString[{}]<", self.len)?;
        for (i, b) in self.iter().enumerate() {
            if i == 64 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{}", u8::from(b))?;
        }
        write!(f, ">")
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bools(iter)
    }
}

impl Extend<bool> for BitString {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a BitString {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the bits of a [`BitString`], MSB-first.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    s: &'a BitString,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.s.bit(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.s.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let s = BitString::from_bools(pattern);
        assert_eq!(s.len(), pattern.len());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.bit(i), Some(b), "bit {i}");
        }
        assert_eq!(s.bit(pattern.len()), None);
    }

    #[test]
    fn from_bytes_zeroes_padding() {
        let a = BitString::from_bytes(&[0b1010_1111], 4);
        let b = BitString::from_bytes(&[0b1010_0000], 4);
        assert_eq!(a, b, "padding bits must not affect equality");
        assert_eq!(a.as_bytes(), &[0b1010_0000]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let s = BitString::from_bools([true, true, false, true, false]);
        let t = s.truncated(3);
        assert_eq!(t, BitString::from_bools([true, true, false]));
        assert_eq!(s.truncated(99), s);
        assert_eq!(s.truncated(0), BitString::new());
    }

    #[test]
    fn concat_matches_manual_extend() {
        let a = BitString::from_bools([true, false]);
        let b = BitString::from_bools([false, false, true]);
        let c = BitString::concat([&a, &b]);
        assert_eq!(c.len(), 5);
        assert_eq!(c, BitString::from_bools([true, false, false, false, true]));
    }

    #[test]
    fn leading_u64_is_big_endian() {
        let s = BitString::from_bools([true, false, true]); // 0b101
        assert_eq!(s.leading_u64(), 5);
        assert_eq!(BitString::new().leading_u64(), 0);
    }

    #[test]
    fn display_and_debug() {
        let s = BitString::from_bools([true, false, true]);
        assert_eq!(s.to_string(), "101");
        assert!(format!("{s:?}").contains("BitString[3]"));
    }

    #[test]
    fn zeros_are_all_false() {
        let z = BitString::zeros(17);
        assert_eq!(z.len(), 17);
        assert_eq!(z.iter().filter(|&b| b).count(), 0);
    }

    #[test]
    fn iterator_exact_size() {
        let s = BitString::zeros(9);
        let it = s.iter();
        assert_eq!(it.len(), 9);
        assert_eq!(s.iter().count(), 9);
    }
}
