//! Property-based tests for the bit-string substrate.

use proptest::prelude::*;
use rpls_bits::{bits_for, id_width, BitReader, BitString, BitWriter};

proptest! {
    #[test]
    fn from_bytes_respects_length(bytes in proptest::collection::vec(any::<u8>(), 0..32), extra in 0usize..8) {
        let max = bytes.len() * 8;
        let len = max.saturating_sub(extra);
        let s = BitString::from_bytes(&bytes, len);
        prop_assert_eq!(s.len(), len);
        for i in 0..len {
            let expected = bytes[i / 8] & (0x80 >> (i % 8)) != 0;
            prop_assert_eq!(s.bit(i), Some(expected));
        }
    }

    #[test]
    fn concat_length_is_sum(a in proptest::collection::vec(any::<bool>(), 0..64),
                            b in proptest::collection::vec(any::<bool>(), 0..64)) {
        let sa = BitString::from_bools(a.clone());
        let sb = BitString::from_bools(b.clone());
        let c = BitString::concat([&sa, &sb]);
        prop_assert_eq!(c.len(), a.len() + b.len());
        let mut expect = a;
        expect.extend(b);
        prop_assert_eq!(c.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn equality_is_content_equality(a in proptest::collection::vec(any::<bool>(), 0..64)) {
        let s1 = BitString::from_bools(a.clone());
        let mut s2 = BitString::new();
        for bit in &a {
            s2.push(*bit);
        }
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn writer_reader_with_bools_interleaved(
        items in proptest::collection::vec((any::<bool>(), any::<u32>(), 1u32..32), 0..16)
    ) {
        let mut w = BitWriter::new();
        for (b, v, width) in &items {
            w.write_bool(*b);
            w.write_u64(u64::from(*v) & ((1u64 << width) - 1), *width);
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for (b, v, width) in &items {
            prop_assert_eq!(r.read_bool().unwrap(), *b);
            prop_assert_eq!(r.read_u64(*width).unwrap(), u64::from(*v) & ((1u64 << width) - 1));
        }
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn bits_for_is_monotone_and_tight(v in any::<u64>()) {
        let w = bits_for(v);
        prop_assert!((1..=64).contains(&w));
        if v > 0 {
            // v fits in w bits but not w-1.
            if w < 64 {
                prop_assert!(v < (1u64 << w));
            }
            if w > 1 {
                prop_assert!(v >= (1u64 << (w - 1)));
            }
        }
    }

    #[test]
    fn id_width_indexes_universe(n in 1u64..1_000_000) {
        let w = id_width(n);
        // Every value in 0..n fits in w bits.
        if w < 64 {
            prop_assert!(n - 1 < (1u64 << w));
        }
    }

    #[test]
    fn leading_u64_matches_manual(a in proptest::collection::vec(any::<bool>(), 0..64)) {
        let s = BitString::from_bools(a.clone());
        let mut manual: u64 = 0;
        for b in &a {
            manual = (manual << 1) | u64::from(*b);
        }
        prop_assert_eq!(s.leading_u64(), manual);
    }

    #[test]
    fn ordering_is_total_and_consistent(
        a in proptest::collection::vec(any::<bool>(), 0..32),
        b in proptest::collection::vec(any::<bool>(), 0..32)
    ) {
        let sa = BitString::from_bools(a);
        let sb = BitString::from_bools(b);
        // Ord agrees with Eq.
        prop_assert_eq!(sa == sb, sa.cmp(&sb) == std::cmp::Ordering::Equal);
    }
}
