//! Golden tests pinning the exact structure of the paper's constructions.
//!
//! The lower-bound proofs depend on precise edge sets and port numberings;
//! these tests freeze them so refactors cannot silently change a family.

use rpls_graph::{generators, NodeId, Port};

#[test]
fn golden_path_6() {
    let g = generators::path(6);
    assert_eq!(
        g.sorted_edge_list(),
        vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
    );
    // Successor-first port convention at interior nodes.
    for i in 1..5 {
        let v = NodeId::new(i);
        assert_eq!(
            g.neighbor_by_port(v, Port::from_rank(0)).unwrap().node,
            NodeId::new(i + 1)
        );
        assert_eq!(
            g.neighbor_by_port(v, Port::from_rank(1)).unwrap().node,
            NodeId::new(i - 1)
        );
    }
}

#[test]
fn golden_wheel_8() {
    // Figure 2(a) at n = 8: rim 0..7 plus chords {0,2}..{0,6}.
    let g = generators::wheel(8);
    assert_eq!(
        g.sorted_edge_list(),
        vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (0, 7),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
        ]
    );
    // Rim ports stay consistent even at the hub.
    assert_eq!(
        g.neighbor_by_port(NodeId::new(0), Port::from_rank(0))
            .unwrap()
            .node,
        NodeId::new(1)
    );
    assert_eq!(
        g.neighbor_by_port(NodeId::new(0), Port::from_rank(1))
            .unwrap()
            .node,
        NodeId::new(7)
    );
}

#[test]
fn golden_wheel_with_tail_10_6() {
    // Theorem 5.4's graph at n = 10, c = 6: 6-cycle, chords {0,2},{0,3},
    // {0,4} (j = 5 = c−1 skipped), spokes {0,6}..{0,9}.
    let g = generators::wheel_with_tail(10, 6);
    assert_eq!(
        g.sorted_edge_list(),
        vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5), // cycle edge {5, 0}
            (0, 6),
            (0, 7),
            (0, 8),
            (0, 9),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
        ]
    );
    assert_eq!(g.degree(NodeId::new(5)), 2, "v_{{c-1}} has no chord");
    assert_eq!(g.degree(NodeId::new(9)), 1, "tail nodes are pendant");
}

#[test]
fn golden_chain_2x6() {
    // Figure 5 at two 6-cycles: bridge from node 1 to node 6 + 3 = 9.
    let g = generators::chain_of_cycles(2, 6);
    assert_eq!(
        g.sorted_edge_list(),
        vec![
            (0, 1),
            (0, 5),
            (1, 2),
            (1, 9),
            (2, 3),
            (3, 4),
            (4, 5),
            (6, 7),
            (6, 11),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 11),
        ]
    );
}

#[test]
fn golden_symmetry_gadget_101() {
    // Figure 3 at z = 101 (λ = 3): u = 0..2, w = 3..5, t = 6..8.
    let g = generators::symmetry_gadget(&[true, false, true]);
    assert_eq!(
        g.sorted_edge_list(),
        vec![
            (0, 1),
            (0, 3), // w0 — u0 (bit 1)
            (0, 6), // anchor e0 = {t0, u0}
            (1, 2),
            (2, 5), // w2 — u2 (bit 1)
            (4, 7), // w1 — t1 (bit 0)
            (6, 7),
            (6, 8),
            (7, 8), // triangle
        ]
    );
}

#[test]
fn golden_symmetry_layout_indices() {
    let layout = generators::SymmetryLayout { lambda: 4 };
    assert_eq!(layout.u(0), NodeId::new(0));
    assert_eq!(layout.u(3), NodeId::new(3));
    assert_eq!(layout.w(0), NodeId::new(4));
    assert_eq!(layout.t(2), NodeId::new(10));
    assert_eq!(layout.node_count(), 11);
}

#[test]
fn golden_grid_2x3() {
    let g = generators::grid(2, 3);
    assert_eq!(
        g.sorted_edge_list(),
        vec![(0, 1), (0, 3), (1, 2), (1, 4), (2, 5), (3, 4), (4, 5)]
    );
}

#[test]
fn golden_balanced_tree_depth_3() {
    let g = generators::balanced_binary_tree(3);
    assert_eq!(
        g.sorted_edge_list(),
        vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]
    );
}
