//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls_graph::crossing::{cross_copies, IndependentCopies};
use rpls_graph::subgraph::Subgraph;
use rpls_graph::{connectivity, cycles, flow, generators, isomorphism, traversal, NodeId};

proptest! {
    /// Generators produce the node/edge counts they promise.
    #[test]
    fn generator_counts(n in 3usize..40) {
        prop_assert_eq!(generators::path(n).edge_count(), n - 1);
        prop_assert_eq!(generators::cycle(n).edge_count(), n);
        prop_assert_eq!(generators::complete(n).edge_count(), n * (n - 1) / 2);
        prop_assert_eq!(generators::star(n).node_count(), n + 1);
    }

    /// Every edge's two endpoint views agree (port symmetry invariant).
    #[test]
    fn port_views_are_symmetric(n in 2usize..30, p in 0.0f64..0.6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                let back = g.neighbor_by_port(nb.node, nb.remote_port).unwrap();
                prop_assert_eq!(back.node, v);
                prop_assert_eq!(back.edge, nb.edge);
                prop_assert_eq!(back.remote_port, nb.port);
            }
        }
    }

    /// Articulation points by definition: removing a reported articulation
    /// point disconnects the graph; removing a non-articulation node does
    /// not (checked on small random graphs).
    #[test]
    fn articulation_points_match_definition(n in 4usize..16, p in 0.1f64..0.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let arts: std::collections::HashSet<NodeId> =
            connectivity::articulation_points(&g).into_iter().collect();
        for v in g.nodes() {
            // Remove v and count components among the rest.
            let mut b = rpls_graph::GraphBuilder::new(n);
            for (_, rec) in g.edges() {
                if rec.u != v && rec.v != v {
                    b.add_edge(rec.u, rec.v).unwrap();
                }
            }
            let h = b.finish().unwrap();
            let comps = connectivity::components(&h)
                .into_iter()
                .filter(|c| !(c.len() == 1 && c[0] == v))
                .count();
            prop_assert_eq!(comps > 1, arts.contains(&v), "node {}", v);
        }
    }

    /// Menger on random graphs: max edge-disjoint path count equals the
    /// unit max-flow, and vertex-disjoint count is at most it.
    #[test]
    fn menger_consistency(n in 4usize..16, p in 0.2f64..0.7, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let (s, t) = (NodeId::new(0), NodeId::new(n - 1));
        let edge_paths = flow::edge_disjoint_paths(&g, s, t);
        prop_assert_eq!(edge_paths.len(), flow::max_flow_unit(&g, s, t));
        let vertex_paths = flow::vertex_disjoint_paths(&g, s, t);
        prop_assert_eq!(vertex_paths.len(), flow::vertex_connectivity_st(&g, s, t));
        prop_assert!(vertex_paths.len() <= edge_paths.len());
    }

    /// Girth never exceeds the longest cycle.
    #[test]
    fn girth_bounds_longest_cycle(n in 4usize..14, p in 0.2f64..0.6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        match (cycles::girth(&g), cycles::longest_cycle(&g)) {
            (Some(gi), Some(lo)) => prop_assert!(gi <= lo),
            (None, None) => {}
            other => prop_assert!(false, "mismatch {:?}", other),
        }
    }

    /// Crossing twice with the same pair restores the original edge set.
    #[test]
    fn double_crossing_is_identity(n in 12usize..60, pick in any::<u64>()) {
        let g = generators::path(n);
        let r = n / 3 - 1;
        prop_assume!(r >= 2);
        let i = (pick % r as u64) as usize;
        let j = ((pick / 7) % r as u64) as usize;
        prop_assume!(i != j);
        let edges: Vec<(NodeId, NodeId)> = (1..n / 3)
            .map(|t| (NodeId::new(3 * t), NodeId::new(3 * t + 1)))
            .collect();
        let fam = IndependentCopies::single_edges(&g, &edges).unwrap();
        let once = cross_copies(&g, &fam, i, j).unwrap();
        // Re-cross the two new edges back.
        let (a1, b1) = edges[i];
        let (_, b2) = edges[j];
        let sigma = fam.sigma_between(i, j);
        let e = once.edge_between(a1, sigma.apply(b1)).unwrap();
        let h = Subgraph::from_edges(&once, [e]);
        let back = rpls_graph::crossing::PortIsomorphism::from_pairs([
            (a1, sigma.apply(a1)),
            (sigma.apply(b1), b1),
        ]).unwrap();
        let twice = rpls_graph::crossing::cross(&once, &back, &h).unwrap();
        prop_assert_eq!(twice.sorted_edge_list(), g.sorted_edge_list());
        let _ = b2;
    }

    /// A graph is always isomorphic to itself under node relabeling by
    /// reversal (paths and cycles are symmetric families).
    #[test]
    fn reversal_isomorphism(n in 3usize..12) {
        let p1 = generators::path(n);
        // Build the reversed path explicitly.
        let mut b = rpls_graph::GraphBuilder::new(n);
        for i in (1..n).rev() {
            b.add_edge(i, i - 1).unwrap();
        }
        let p2 = b.finish().unwrap();
        prop_assert!(isomorphism::are_isomorphic(&p1, &p2));
    }

    /// DFS parents form a tree: following parents from any node reaches
    /// the root in at most n steps.
    #[test]
    fn dfs_parent_chains_terminate(n in 2usize..30, p in 0.05f64..0.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, p, &mut rng);
        let t = traversal::dfs(&g, NodeId::new(0));
        for v in g.nodes() {
            let mut cur = v;
            let mut steps = 0;
            while let Some(p) = t.parent[cur.index()] {
                cur = p;
                steps += 1;
                prop_assert!(steps <= n, "parent cycle at {}", v);
            }
            prop_assert_eq!(cur, NodeId::new(0));
        }
    }

    /// Symmetry gadget sizes and bridge positions are as specified.
    #[test]
    fn gadget_shape(bits in proptest::collection::vec(any::<bool>(), 1..8)) {
        let g = generators::symmetry_gadget(&bits);
        prop_assert_eq!(g.node_count(), 2 * bits.len() + 3);
        let pair = generators::symmetry_pair(&bits, &bits);
        prop_assert_eq!(pair.node_count(), 2 * (2 * bits.len() + 3));
        prop_assert!(isomorphism::is_symmetric(&pair));
    }
}
