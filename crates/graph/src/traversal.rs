//! Breadth-first and depth-first traversals.
//!
//! The DFS here computes exactly the quantities the biconnectivity scheme of
//! Appendix E labels nodes with: preorder numbers, subtree intervals
//! (`span`), parents, depths, and lowpoints (the smallest preorder number
//! reachable from a subtree via a single back edge).

use crate::{Graph, NodeId};

/// Result of a breadth-first search from a root.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Root the search started from.
    pub root: NodeId,
    /// `dist[v]` is the hop distance from the root, or `None` if unreachable.
    pub dist: Vec<Option<usize>>,
    /// `parent[v]` is the BFS parent, `None` for the root and unreachable
    /// nodes.
    pub parent: Vec<Option<NodeId>>,
}

impl BfsTree {
    /// Number of nodes reached (including the root).
    #[must_use]
    pub fn reached_count(&self) -> usize {
        self.dist.iter().filter(|d| d.is_some()).count()
    }
}

/// Runs a breadth-first search over `g` from `root`.
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, traversal, NodeId};
/// let g = generators::path(5);
/// let bfs = traversal::bfs(&g, NodeId::new(0));
/// assert_eq!(bfs.dist[4], Some(4));
/// ```
#[must_use]
pub fn bfs(g: &Graph, root: NodeId) -> BfsTree {
    let n = g.node_count();
    let mut dist = vec![None; n];
    let mut parent = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    dist[root.index()] = Some(0);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        for nb in g.neighbors(v) {
            if dist[nb.node.index()].is_none() {
                dist[nb.node.index()] = Some(d + 1);
                parent[nb.node.index()] = Some(v);
                queue.push_back(nb.node);
            }
        }
    }
    BfsTree { root, dist, parent }
}

/// Result of a depth-first search from a root, with the ancillary values used
/// by Tarjan-style algorithms and by the Appendix E proof labels.
#[derive(Debug, Clone)]
pub struct DfsTree {
    /// Root the search started from.
    pub root: NodeId,
    /// `preorder[v]` is the DFS preorder number (root gets 0), or `None` if
    /// unreachable.
    pub preorder: Vec<Option<usize>>,
    /// `parent[v]` is the DFS tree parent.
    pub parent: Vec<Option<NodeId>>,
    /// `depth[v]` is the DFS tree depth (root 0).
    pub depth: Vec<Option<usize>>,
    /// `span[v] = (lo, hi)` is the half-open interval of preorder numbers of
    /// the subtree rooted at `v` (so `lo == preorder[v]` and the subtree has
    /// `hi - lo` nodes).
    pub span: Vec<Option<(usize, usize)>>,
    /// `lowpt[v]` is the smallest preorder number among nodes reachable from
    /// the subtree of `v` by following tree edges down and at most one back
    /// edge — Tarjan's LOWPT, the quantity verified by predicate P7.
    pub lowpt: Vec<Option<usize>>,
    /// Nodes in preorder (for iterating the tree top-down).
    pub order: Vec<NodeId>,
}

impl DfsTree {
    /// Whether `anc` is an ancestor of `desc` in the DFS tree (a node is an
    /// ancestor of itself).
    #[must_use]
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        match (self.span[anc.index()], self.preorder[desc.index()]) {
            (Some((lo, hi)), Some(p)) => lo <= p && p < hi,
            _ => false,
        }
    }

    /// The children of `v` in the DFS tree.
    #[must_use]
    pub fn children(&self, v: NodeId) -> Vec<NodeId> {
        self.order
            .iter()
            .copied()
            .filter(|&w| self.parent[w.index()] == Some(v))
            .collect()
    }
}

/// Runs an iterative depth-first search over `g` from `root`, visiting
/// neighbors in port order (so the traversal is deterministic).
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, traversal, NodeId};
/// let g = generators::cycle(4);
/// let dfs = traversal::dfs(&g, NodeId::new(0));
/// assert_eq!(dfs.preorder[0], Some(0));
/// assert_eq!(dfs.span[0], Some((0, 4)));
/// ```
#[must_use]
pub fn dfs(g: &Graph, root: NodeId) -> DfsTree {
    let n = g.node_count();
    let mut preorder = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth = vec![None; n];
    let mut span = vec![None; n];
    let mut lowpt = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut counter = 0usize;

    // Stack frames: (node, next neighbor rank to try).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    preorder[root.index()] = Some(counter);
    lowpt[root.index()] = Some(counter);
    depth[root.index()] = Some(0);
    order.push(root);
    counter += 1;
    stack.push((root, 0));

    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        let nb = g.neighbors(v).nth(*next);
        match nb {
            Some(nb) => {
                *next += 1;
                let w = nb.node;
                if preorder[w.index()].is_none() {
                    preorder[w.index()] = Some(counter);
                    lowpt[w.index()] = Some(counter);
                    parent[w.index()] = Some(v);
                    depth[w.index()] = Some(depth[v.index()].expect("parent visited") + 1);
                    order.push(w);
                    counter += 1;
                    stack.push((w, 0));
                } else if parent[v.index()] != Some(w) {
                    // Back (or forward) edge: update lowpoint with the
                    // endpoint's preorder number.
                    let pw = preorder[w.index()].expect("visited");
                    let lv = lowpt[v.index()].expect("visited");
                    lowpt[v.index()] = Some(lv.min(pw));
                }
            }
            None => {
                // Finished v: close its span and propagate lowpt to parent.
                let lo = preorder[v.index()].expect("visited");
                span[v.index()] = Some((lo, counter));
                stack.pop();
                if let Some(p) = parent[v.index()] {
                    let lp = lowpt[p.index()].expect("visited");
                    let lv = lowpt[v.index()].expect("visited");
                    lowpt[p.index()] = Some(lp.min(lv));
                }
            }
        }
    }

    DfsTree {
        root,
        preorder,
        parent,
        depth,
        span,
        lowpt,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(6);
        let t = bfs(&g, NodeId::new(2));
        assert_eq!(t.dist[0], Some(2));
        assert_eq!(t.dist[5], Some(3));
        assert_eq!(t.parent[3], Some(NodeId::new(2)));
        assert_eq!(t.reached_count(), 6);
    }

    #[test]
    fn dfs_preorder_covers_all_nodes_once() {
        let g = generators::cycle(7);
        let t = dfs(&g, NodeId::new(0));
        let mut seen: Vec<usize> = t.preorder.iter().map(|p| p.unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
        assert_eq!(t.order.len(), 7);
    }

    #[test]
    fn dfs_spans_nest_properly() {
        let g = generators::balanced_binary_tree(3); // 7 nodes
        let t = dfs(&g, NodeId::new(0));
        for v in g.nodes() {
            let (lo, hi) = t.span[v.index()].unwrap();
            assert_eq!(lo, t.preorder[v.index()].unwrap());
            if let Some(p) = t.parent[v.index()] {
                let (plo, phi) = t.span[p.index()].unwrap();
                assert!(plo < lo && hi <= phi, "child span nests in parent");
            }
        }
        // Root spans everything.
        assert_eq!(t.span[0], Some((0, 7)));
    }

    #[test]
    fn dfs_lowpt_on_cycle_reaches_root() {
        // On a cycle, every node's subtree sees the root via the closing
        // back edge, so all lowpoints are 0.
        let g = generators::cycle(5);
        let t = dfs(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(t.lowpt[v.index()], Some(0), "lowpt of {v}");
        }
    }

    #[test]
    fn dfs_lowpt_on_tree_is_own_preorder() {
        // No back edges in a tree: lowpt(v) = preorder(v).
        let g = generators::balanced_binary_tree(3);
        let t = dfs(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(t.lowpt[v.index()], t.preorder[v.index()]);
        }
    }

    #[test]
    fn ancestor_test_matches_parent_chain() {
        let g = generators::path(5);
        let t = dfs(&g, NodeId::new(0));
        assert!(t.is_ancestor(NodeId::new(0), NodeId::new(4)));
        assert!(t.is_ancestor(NodeId::new(2), NodeId::new(2)));
        assert!(!t.is_ancestor(NodeId::new(4), NodeId::new(0)));
    }

    #[test]
    fn children_listed_in_preorder() {
        let g = generators::star(4); // center 0 with 4 leaves
        let t = dfs(&g, NodeId::new(0));
        let kids = t.children(NodeId::new(0));
        assert_eq!(kids.len(), 4);
    }
}
