//! Minimum spanning trees: Kruskal, Borůvka with merge history, and the
//! MST predicate of Theorem 5.1.
//!
//! Ties are broken by edge index, making the ordering on edges total and the
//! minimum spanning tree *unique with respect to that order*. The Borůvka
//! run records, per phase, each node's fragment and each fragment's chosen
//! minimum-weight outgoing edge — exactly the structure the
//! Korman–Kutten–Peleg-style MST proof labels certify level by level.

use crate::unionfind::UnionFind;
use crate::{EdgeId, Graph, GraphError};
use std::collections::BTreeMap;

/// Total order key for edges: weight first, then index (the tie-breaker that
/// makes the MST unique).
fn key(g: &Graph, eid: EdgeId) -> (u64, usize) {
    (g.edge(eid).weight.expect("weighted graph"), eid.index())
}

fn require_weighted_connected(g: &Graph) -> Result<(), GraphError> {
    if !g.is_weighted() {
        return Err(GraphError::MissingWeights);
    }
    if !crate::connectivity::is_connected(g) {
        return Err(GraphError::NotConnected);
    }
    Ok(())
}

/// Kruskal's algorithm. Returns the MST edge set (with the index
/// tie-breaking order, this set is unique).
///
/// # Errors
///
/// Returns [`GraphError::MissingWeights`] on unweighted input and
/// [`GraphError::NotConnected`] on disconnected input.
pub fn kruskal(g: &Graph) -> Result<Vec<EdgeId>, GraphError> {
    require_weighted_connected(g)?;
    let mut order: Vec<EdgeId> = g.edges().map(|(eid, _)| eid).collect();
    order.sort_by_key(|&eid| key(g, eid));
    let mut uf = UnionFind::new(g.node_count());
    let mut tree = Vec::with_capacity(g.node_count().saturating_sub(1));
    for eid in order {
        let rec = g.edge(eid);
        if uf.union(rec.u.index(), rec.v.index()) {
            tree.push(eid);
        }
    }
    tree.sort_unstable();
    Ok(tree)
}

/// Prim's algorithm from node 0. Returns an MST edge set; under the index
/// tie-breaker the *weight* always matches [`kruskal`]'s (the edge sets may
/// differ when weights tie).
///
/// # Errors
///
/// Same conditions as [`kruskal`].
pub fn prim(g: &Graph) -> Result<Vec<EdgeId>, GraphError> {
    require_weighted_connected(g)?;
    let n = g.node_count();
    let mut in_tree = vec![false; n];
    in_tree[0] = true;
    let mut tree = Vec::with_capacity(n.saturating_sub(1));
    // Binary heap of (Reverse(key), edge) frontier entries.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(Reverse<(u64, usize)>, EdgeId)> = BinaryHeap::new();
    let push_edges = |v: usize, heap: &mut BinaryHeap<(Reverse<(u64, usize)>, EdgeId)>| {
        for nb in g.neighbors(crate::NodeId::new(v)) {
            heap.push((Reverse(key(g, nb.edge)), nb.edge));
        }
    };
    push_edges(0, &mut heap);
    while tree.len() + 1 < n {
        let (_, eid) = heap.pop().expect("connected graph keeps a frontier");
        let rec = g.edge(eid);
        let (u, v) = (rec.u.index(), rec.v.index());
        let fresh = match (in_tree[u], in_tree[v]) {
            (true, false) => v,
            (false, true) => u,
            _ => continue,
        };
        in_tree[fresh] = true;
        tree.push(eid);
        push_edges(fresh, &mut heap);
    }
    tree.sort_unstable();
    Ok(tree)
}

/// Total weight of the minimum spanning tree.
///
/// # Errors
///
/// Same conditions as [`kruskal`].
pub fn mst_weight(g: &Graph) -> Result<u128, GraphError> {
    let tree = kruskal(g)?;
    Ok(tree
        .iter()
        .map(|&eid| u128::from(g.edge(eid).weight.expect("weighted")))
        .sum())
}

/// Whether `edges` forms a spanning tree of `g`: `n − 1` distinct edges,
/// connected, covering all nodes.
#[must_use]
pub fn is_spanning_tree(g: &Graph, edges: &[EdgeId]) -> bool {
    let n = g.node_count();
    if edges.len() + 1 != n {
        return false;
    }
    let mut uf = UnionFind::new(n);
    for &eid in edges {
        if eid.index() >= g.edge_count() {
            return false;
        }
        let rec = g.edge(eid);
        if !uf.union(rec.u.index(), rec.v.index()) {
            return false; // duplicate or cycle
        }
    }
    uf.set_count() == 1
}

/// The MST predicate: `edges` is a spanning tree whose total weight equals
/// the minimum over all spanning trees.
///
/// # Errors
///
/// Same conditions as [`kruskal`].
pub fn is_mst(g: &Graph, edges: &[EdgeId]) -> Result<bool, GraphError> {
    require_weighted_connected(g)?;
    if !is_spanning_tree(g, edges) {
        return Ok(false);
    }
    let w: u128 = edges
        .iter()
        .map(|&eid| u128::from(g.edge(eid).weight.expect("weighted")))
        .sum();
    Ok(w == mst_weight(g)?)
}

/// One Borůvka phase: the fragment partition entering the phase and the
/// minimum-weight outgoing edge each fragment selected.
#[derive(Debug, Clone)]
pub struct BoruvkaLevel {
    /// `fragment_of[v]` is the canonical id (minimum node index) of `v`'s
    /// fragment at the start of this phase.
    pub fragment_of: Vec<u32>,
    /// The minimum-weight outgoing edge chosen by each fragment, keyed by
    /// fragment id.
    pub mwoe: BTreeMap<u32, EdgeId>,
}

/// Full record of a Borůvka execution.
#[derive(Debug, Clone)]
pub struct BoruvkaHistory {
    /// The phases, in order; at most `⌈log₂ n⌉` of them.
    pub levels: Vec<BoruvkaLevel>,
    /// The union of all selected edges — the MST (sorted by index).
    pub tree_edges: Vec<EdgeId>,
}

impl BoruvkaHistory {
    /// Number of phases.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.levels.len()
    }
}

/// Runs Borůvka's algorithm, recording each phase. With the index
/// tie-breaker the selected edges can never close a cycle, and the result
/// equals [`kruskal`]'s tree.
///
/// # Errors
///
/// Same conditions as [`kruskal`].
pub fn boruvka(g: &Graph) -> Result<BoruvkaHistory, GraphError> {
    require_weighted_connected(g)?;
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    let mut levels = Vec::new();
    let mut tree: Vec<EdgeId> = Vec::new();
    while uf.set_count() > 1 {
        // Canonical fragment ids: minimum node index per fragment.
        let mut canon: Vec<u32> = (0..n as u32).collect();
        for v in 0..n {
            let root = uf.find(v);
            canon[root] = canon[root].min(v as u32);
        }
        let fragment_of: Vec<u32> = (0..n).map(|v| canon[uf.find(v)]).collect();

        // Minimum outgoing edge per fragment.
        let mut mwoe: BTreeMap<u32, EdgeId> = BTreeMap::new();
        for (eid, rec) in g.edges() {
            let (fu, fv) = (fragment_of[rec.u.index()], fragment_of[rec.v.index()]);
            if fu == fv {
                continue;
            }
            for f in [fu, fv] {
                match mwoe.get(&f) {
                    Some(&best) if key(g, best) <= key(g, eid) => {}
                    _ => {
                        mwoe.insert(f, eid);
                    }
                }
            }
        }
        levels.push(BoruvkaLevel {
            fragment_of,
            mwoe: mwoe.clone(),
        });
        for &eid in mwoe.values() {
            let rec = g.edge(eid);
            if uf.union(rec.u.index(), rec.v.index()) {
                tree.push(eid);
            }
        }
    }
    tree.sort_unstable();
    tree.dedup();
    Ok(BoruvkaHistory {
        levels,
        tree_edges: tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kruskal_on_weighted_cycle_drops_heaviest() {
        let g = generators::cycle(5).with_weights(&[1, 2, 3, 4, 5]);
        let tree = kruskal(&g).unwrap();
        assert_eq!(tree.len(), 4);
        assert!(!tree.contains(&EdgeId::new(4))); // weight-5 edge dropped
        assert!(is_mst(&g, &tree).unwrap());
    }

    #[test]
    fn kruskal_requires_weights_and_connectivity() {
        assert_eq!(
            kruskal(&generators::cycle(4)).unwrap_err(),
            GraphError::MissingWeights
        );
        let mut b = crate::GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1).unwrap();
        b.add_weighted_edge(2, 3, 1).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(kruskal(&g).unwrap_err(), GraphError::NotConnected);
    }

    #[test]
    fn boruvka_matches_kruskal_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let g = generators::gnp_connected(18, 0.25, &mut rng);
            let w = generators::random_weights(&g, 16, &mut rng); // many ties
            let g = g.with_weights(&w);
            let k = kruskal(&g).unwrap();
            let b = boruvka(&g).unwrap();
            assert_eq!(k, b.tree_edges, "trial {trial}");
            assert!(is_mst(&g, &b.tree_edges).unwrap());
        }
    }

    #[test]
    fn prim_matches_kruskal_weight_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..15 {
            let g = generators::gnp_connected(16, 0.3, &mut rng);
            let w = generators::random_weights(&g, 8, &mut rng); // heavy ties
            let g = g.with_weights(&w);
            let p = prim(&g).unwrap();
            assert!(is_spanning_tree(&g, &p), "trial {trial}");
            assert!(is_mst(&g, &p).unwrap(), "trial {trial}");
        }
    }

    #[test]
    fn prim_equals_kruskal_with_distinct_weights() {
        let mut rng = StdRng::seed_from_u64(78);
        let g = generators::gnp_connected(20, 0.25, &mut rng);
        let w = generators::distinct_weights(&g, &mut rng);
        let g = g.with_weights(&w);
        assert_eq!(prim(&g).unwrap(), kruskal(&g).unwrap());
    }

    #[test]
    fn boruvka_phase_count_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::gnp_connected(64, 0.1, &mut rng);
        let w = generators::distinct_weights(&g, &mut rng);
        let h = boruvka(&g.with_weights(&w)).unwrap();
        assert!(h.phase_count() <= 6, "phases = {}", h.phase_count());
        assert!(h.phase_count() >= 1);
    }

    #[test]
    fn boruvka_first_level_fragments_are_singletons() {
        let g = generators::cycle(6).with_weights(&[3, 1, 4, 1, 5, 9]);
        let h = boruvka(&g).unwrap();
        let lvl0 = &h.levels[0];
        for (v, &f) in lvl0.fragment_of.iter().enumerate() {
            assert_eq!(f as usize, v);
        }
    }

    #[test]
    fn spanning_tree_checks() {
        let g = generators::cycle(5).with_uniform_weights(1);
        let tree = kruskal(&g).unwrap();
        assert!(is_spanning_tree(&g, &tree));
        // Too few edges.
        assert!(!is_spanning_tree(&g, &tree[..3]));
        // Any 4 of the 5 cycle edges form a spanning path; all 5 close a
        // cycle and are rejected.
        let all: Vec<EdgeId> = g.edges().map(|(e, _)| e).collect();
        assert!(is_spanning_tree(&g, &all[..4]));
        assert!(!is_spanning_tree(&g, &all));
    }

    #[test]
    fn non_minimal_tree_rejected_by_predicate() {
        // Path weights force a unique MST: the heaviest cycle edge is out.
        let g = generators::cycle(4).with_weights(&[1, 1, 1, 10]);
        let good = kruskal(&g).unwrap();
        assert!(is_mst(&g, &good).unwrap());
        // Swap in the heavy edge: still a spanning tree, but not minimal.
        let bad: Vec<EdgeId> = vec![EdgeId::new(0), EdgeId::new(1), EdgeId::new(3)];
        assert!(is_spanning_tree(&g, &bad));
        assert!(!is_mst(&g, &bad).unwrap());
    }

    #[test]
    fn uniform_weights_any_tree_is_minimal() {
        let g = generators::complete(5).with_uniform_weights(7);
        let star_tree: Vec<EdgeId> = g
            .edges()
            .filter(|(_, r)| r.u.index() == 0 || r.v.index() == 0)
            .map(|(e, _)| e)
            .collect();
        assert!(is_mst(&g, &star_tree).unwrap());
    }
}
