//! Port-numbered network graphs for proof-labeling schemes.
//!
//! This crate is the network substrate of the reproduction of *Randomized
//! Proof-Labeling Schemes* (Baruch, Fraigniaud, Patt-Shamir, PODC 2015). It
//! models networks exactly as §2.1 of the paper does: connected simple graphs
//! whose edges carry a *port number* at each endpoint (edge `e` incident to
//! `v` is the `i`-th edge of `v`, and the two endpoints may disagree on the
//! number). On top of the representation it provides:
//!
//! * [`generators`] — every graph family the paper's proofs use (paths,
//!   cycles, the Figure 2 wheel, the Figure 3/4 symmetry gadgets, the
//!   Figure 5 chain of cycles, …) plus standard random families;
//! * [`traversal`], [`connectivity`], [`mst`], [`cycles`], [`flow`],
//!   [`isomorphism`] — the graph algorithms the concrete schemes of §5 rely
//!   on (DFS with lowpoints, articulation points, Borůvka with merge
//!   history, exact longest-cycle search, max-flow, isomorphism testing);
//! * [`crossing`] — the *crossing* operator of Definition 4.2 together with
//!   the pairwise-independence checks of Definition 4.1, the engine of every
//!   lower bound in §4 and §5.
//!
//! # Examples
//!
//! ```
//! use rpls_graph::generators;
//!
//! let g = generators::cycle(6);
//! assert_eq!(g.node_count(), 6);
//! assert_eq!(g.edge_count(), 6);
//! assert_eq!(g.degree(rpls_graph::NodeId::new(0)), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod ids;

pub mod connectivity;
pub mod crossing;
pub mod cycles;
pub mod flow;
pub mod generators;
pub mod isomorphism;
pub mod mst;
pub mod subgraph;
pub mod traversal;
pub mod unionfind;

pub use error::GraphError;
pub use graph::{EdgeRecord, Graph, GraphBuilder, Neighbor};
pub use ids::{EdgeId, NodeId, Port};
