//! The port-numbered graph representation and its builder.

use crate::{EdgeId, GraphError, NodeId, Port};
use std::fmt;

/// One undirected edge, with the port number it occupies at each endpoint
/// and an optional weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRecord {
    /// First endpoint (the one passed first at construction).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Port number of this edge at `u`.
    pub port_at_u: Port,
    /// Port number of this edge at `v`.
    pub port_at_v: Port,
    /// Optional edge weight (present on weighted configurations such as MST
    /// instances).
    pub weight: Option<u64>,
}

impl EdgeRecord {
    /// The endpoint opposite to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    #[must_use]
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            panic!("{node} is not an endpoint of this edge");
        }
    }

    /// The port number of this edge at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    #[must_use]
    pub fn port_at(&self, node: NodeId) -> Port {
        if node == self.u {
            self.port_at_u
        } else if node == self.v {
            self.port_at_v
        } else {
            panic!("{node} is not an endpoint of this edge");
        }
    }

    /// Whether `node` is one of the two endpoints.
    #[must_use]
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.u || node == self.v
    }
}

/// A neighbor as seen from a particular node, carrying everything a local
/// verifier is allowed to use: which port leads there, which port the edge
/// occupies on the far side, and the edge weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Neighbor {
    /// The neighboring node.
    pub node: NodeId,
    /// The connecting edge.
    pub edge: EdgeId,
    /// Port of the edge at the local node.
    pub port: Port,
    /// Port of the edge at `node` (the far endpoint). A certificate sent by
    /// the neighbor along this edge is the one it generated for this port.
    pub remote_port: Port,
    /// Edge weight, if the graph is weighted.
    pub weight: Option<u64>,
}

/// A connected, simple, undirected, port-numbered graph (the network model
/// of §2.1 of the paper).
///
/// Construct one through [`GraphBuilder`] or the ready-made families in
/// [`generators`](crate::generators).
///
/// # Examples
///
/// ```
/// use rpls_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.finish()?;
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// # Ok::<(), rpls_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// Adjacency lists ordered by port rank: `adjacency[v][p]` is the edge at
    /// port rank `p` of node `v`.
    adjacency: Vec<Vec<EdgeId>>,
    edges: Vec<EdgeRecord>,
}

impl Graph {
    /// Number of nodes `n`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges `m`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterates over all node indices `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edge records with their indices.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeRecord)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), e))
    }

    /// The record of edge `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    #[must_use]
    pub fn edge(&self, edge: EdgeId) -> &EdgeRecord {
        &self.edges[edge.index()]
    }

    /// The neighbors of `node` in port order (port 1 first).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = Neighbor> + '_ {
        self.adjacency[node.index()]
            .iter()
            .enumerate()
            .map(move |(rank, &eid)| self.neighbor_entry(node, Port::from_rank(rank), eid))
    }

    /// The neighbor reached from `node` through `port`, or `None` if the
    /// port rank is at least `deg(node)`.
    #[must_use]
    pub fn neighbor_by_port(&self, node: NodeId, port: Port) -> Option<Neighbor> {
        let eid = *self.adjacency[node.index()].get(port.rank())?;
        Some(self.neighbor_entry(node, port, eid))
    }

    fn neighbor_entry(&self, node: NodeId, port: Port, eid: EdgeId) -> Neighbor {
        let rec = &self.edges[eid.index()];
        let other = rec.other(node);
        Neighbor {
            node: other,
            edge: eid,
            port,
            remote_port: rec.port_at(other),
            weight: rec.weight,
        }
    }

    /// The edge between `u` and `v`, if any.
    #[must_use]
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adjacency[u.index()]
            .iter()
            .copied()
            .find(|&eid| self.edges[eid.index()].other(u) == v)
    }

    /// Whether `u` and `v` are adjacent.
    #[must_use]
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Whether every edge carries a weight.
    #[must_use]
    pub fn is_weighted(&self) -> bool {
        !self.edges.is_empty() && self.edges.iter().all(|e| e.weight.is_some())
    }

    /// Sum of all edge weights.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingWeights`] if any edge lacks a weight.
    pub fn total_weight(&self) -> Result<u128, GraphError> {
        self.edges
            .iter()
            .map(|e| e.weight.map(u128::from).ok_or(GraphError::MissingWeights))
            .sum()
    }

    /// Returns a copy of this graph with the given weights, indexed by
    /// [`EdgeId`].
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.edge_count()`.
    #[must_use]
    pub fn with_weights(&self, weights: &[u64]) -> Graph {
        assert_eq!(
            weights.len(),
            self.edge_count(),
            "one weight per edge required"
        );
        let mut g = self.clone();
        for (rec, &w) in g.edges.iter_mut().zip(weights) {
            rec.weight = Some(w);
        }
        g
    }

    /// Returns a copy of this graph with every edge weight set to `w`.
    #[must_use]
    pub fn with_uniform_weights(&self, w: u64) -> Graph {
        self.with_weights(&vec![w; self.edge_count()])
    }

    /// The sorted list of `(u, v)` endpoint pairs (u < v), a convenient
    /// canonical form for structural comparisons in tests.
    #[must_use]
    pub fn sorted_edge_list(&self) -> Vec<(usize, usize)> {
        let mut list: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|e| {
                let (a, b) = (e.u.index(), e.v.index());
                (a.min(b), a.max(b))
            })
            .collect();
        list.sort_unstable();
        list
    }

    /// Rebuilds this graph from its own edge list via a [`GraphBuilder`],
    /// preserving ports. Used internally by operations that need to
    /// re-validate structural invariants after editing.
    pub(crate) fn from_edge_records(
        node_count: usize,
        records: Vec<EdgeRecord>,
    ) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(node_count);
        for rec in records {
            b.add_edge_full(
                rec.u,
                rec.v,
                Some((rec.port_at_u, rec.port_at_v)),
                rec.weight,
            )?;
        }
        b.finish()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.node_count(),
            self.edge_count(),
            self.sorted_edge_list()
        )
    }
}

/// Incremental construction of a [`Graph`] with validation.
///
/// Ports default to insertion order at each endpoint; pass explicit ports via
/// [`GraphBuilder::add_edge_with_ports`] when reproducing a crossing, which
/// must preserve the original numbering.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<EdgeRecord>,
    next_port: Vec<u32>,
    /// Adjacency presence for duplicate detection.
    seen: std::collections::HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `node_count` nodes and no edges.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            edges: Vec::new(),
            next_port: vec![0; node_count],
            seen: std::collections::HashSet::new(),
        }
    }

    /// Number of nodes the final graph will have.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the edge `{u, v}` with automatically assigned ports (insertion
    /// order at each endpoint) and no weight.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops or duplicate
    /// edges.
    pub fn add_edge(
        &mut self,
        u: impl Into<NodeId>,
        v: impl Into<NodeId>,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge_full(u.into(), v.into(), None, None)
    }

    /// Adds the edge `{u, v}` with a weight.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`].
    pub fn add_weighted_edge(
        &mut self,
        u: impl Into<NodeId>,
        v: impl Into<NodeId>,
        weight: u64,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge_full(u.into(), v.into(), None, Some(weight))
    }

    /// Adds the edge `{u, v}` with explicit port numbers at both endpoints.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`]; port collisions are
    /// detected at [`GraphBuilder::finish`].
    pub fn add_edge_with_ports(
        &mut self,
        u: impl Into<NodeId>,
        v: impl Into<NodeId>,
        port_at_u: Port,
        port_at_v: Port,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge_full(u.into(), v.into(), Some((port_at_u, port_at_v)), None)
    }

    /// Adds an edge with full control: optional explicit ports and an
    /// optional weight. This is the primitive the other `add_*` methods and
    /// the configuration decoders build on.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`].
    pub fn add_edge_full(
        &mut self,
        u: NodeId,
        v: NodeId,
        ports: Option<(Port, Port)>,
        weight: Option<u64>,
    ) -> Result<EdgeId, GraphError> {
        for node in [u, v] {
            if node.index() >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    node_count: self.node_count,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = (
            u.index().min(v.index()) as u32,
            u.index().max(v.index()) as u32,
        );
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let (port_at_u, port_at_v) = match ports {
            Some(p) => p,
            None => {
                let pu = Port::from_rank(self.next_port[u.index()] as usize);
                let pv = Port::from_rank(self.next_port[v.index()] as usize);
                (pu, pv)
            }
        };
        self.next_port[u.index()] = self.next_port[u.index()].max(port_at_u.rank() as u32 + 1);
        self.next_port[v.index()] = self.next_port[v.index()].max(port_at_v.rank() as u32 + 1);
        let id = EdgeId::new(self.edges.len());
        self.edges.push(EdgeRecord {
            u,
            v,
            port_at_u,
            port_at_v,
            weight,
        });
        Ok(id)
    }

    /// Validates port assignments and produces the graph.
    ///
    /// Each node's ports must be exactly `{1, …, deg(v)}` (no gaps, no
    /// collisions), as the model requires.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAnIsomorphism`]-style validation failures as
    /// [`GraphError::DuplicateEdge`] is already caught on insertion; port
    /// collisions surface as [`GraphError::NotIndependent`] is *not* used
    /// here — instead an invalid port layout yields
    /// [`GraphError::NodeOutOfRange`]-free dedicated panic-free error via
    /// `NotAnIsomorphism { reason }`.
    pub fn finish(self) -> Result<Graph, GraphError> {
        // Degrees in one pass over the edge list — the per-node
        // `edges.iter().filter(touches)` scan this replaces was O(n·m),
        // which dominated construction from ~10⁴ nodes up and made
        // million-node sparse graphs effectively unbuildable.
        let mut degree = vec![0usize; self.node_count];
        for e in &self.edges {
            degree[e.u.index()] += 1;
            degree[e.v.index()] += 1;
        }
        let mut adjacency: Vec<Vec<Option<EdgeId>>> =
            degree.into_iter().map(|deg| vec![None; deg]).collect();
        for (i, rec) in self.edges.iter().enumerate() {
            for (node, port) in [(rec.u, rec.port_at_u), (rec.v, rec.port_at_v)] {
                let slots = &mut adjacency[node.index()];
                if port.rank() >= slots.len() {
                    return Err(GraphError::NotAnIsomorphism {
                        reason: format!("{node} has degree {} but edge uses {port}", slots.len()),
                    });
                }
                if slots[port.rank()].is_some() {
                    return Err(GraphError::NotAnIsomorphism {
                        reason: format!("{node} has two edges on {port}"),
                    });
                }
                slots[port.rank()] = Some(EdgeId::new(i));
            }
        }
        let adjacency = adjacency
            .into_iter()
            .map(|slots| {
                slots
                    .into_iter()
                    .map(|s| s.expect("all slots filled"))
                    .collect()
            })
            .collect();
        Ok(Graph {
            adjacency,
            edges: self.edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 0).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_assigns_ports_in_insertion_order() {
        let g = triangle();
        let v1 = NodeId::new(1);
        let ports: Vec<usize> = g.neighbors(v1).map(|nb| nb.port.number()).collect();
        assert_eq!(ports, vec![1, 2]);
        // v1's port 1 leads to v0 (the first inserted edge touching v1).
        assert_eq!(
            g.neighbor_by_port(v1, Port::from_number(1)).unwrap().node,
            NodeId::new(0)
        );
    }

    #[test]
    fn remote_port_is_symmetric_view() {
        let g = triangle();
        let v0 = NodeId::new(0);
        for nb in g.neighbors(v0) {
            let back = g
                .neighbor_by_port(nb.node, nb.remote_port)
                .expect("remote port exists");
            assert_eq!(back.node, v0, "remote port must point back");
            assert_eq!(back.edge, nb.edge);
        }
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(0, 0).unwrap_err(),
            GraphError::SelfLoop(NodeId::new(0))
        );
        b.add_edge(0, 1).unwrap();
        assert_eq!(
            b.add_edge(1, 0).unwrap_err(),
            GraphError::DuplicateEdge(NodeId::new(1), NodeId::new(0))
        );
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_port_collisions() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_with_ports(0, 1, Port::from_rank(0), Port::from_rank(0))
            .unwrap();
        b.add_edge_with_ports(0, 2, Port::from_rank(0), Port::from_rank(0))
            .unwrap();
        assert!(matches!(
            b.finish(),
            Err(GraphError::NotAnIsomorphism { .. })
        ));
    }

    #[test]
    fn rejects_port_gaps() {
        let mut b = GraphBuilder::new(2);
        // Degree-1 node with port number 2: invalid.
        b.add_edge_with_ports(0, 1, Port::from_rank(1), Port::from_rank(0))
            .unwrap();
        assert!(matches!(
            b.finish(),
            Err(GraphError::NotAnIsomorphism { .. })
        ));
    }

    #[test]
    fn weights_round_trip() {
        let g = triangle().with_weights(&[5, 7, 11]);
        assert!(g.is_weighted());
        assert_eq!(g.total_weight().unwrap(), 23);
        let uw = triangle();
        assert!(!uw.is_weighted());
        assert_eq!(uw.total_weight().unwrap_err(), GraphError::MissingWeights);
    }

    #[test]
    fn edge_between_finds_edges() {
        let g = triangle();
        assert!(g.edge_between(NodeId::new(0), NodeId::new(2)).is_some());
        assert!(g.are_adjacent(NodeId::new(1), NodeId::new(2)));
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.finish().unwrap();
        assert!(!g.are_adjacent(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn from_edge_records_preserves_ports() {
        let g = triangle();
        let records: Vec<EdgeRecord> = g.edges().map(|(_, r)| *r).collect();
        let g2 = Graph::from_edge_records(3, records).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn sorted_edge_list_is_canonical() {
        let g = triangle();
        assert_eq!(g.sorted_edge_list(), vec![(0, 1), (0, 2), (1, 2)]);
    }
}
