//! Graph families: the standard ones plus every construction in the paper.
//!
//! Port-number conventions matter for the crossing lower bounds, so the path
//! and cycle families here are *consistently ordered* exactly as the proofs
//! of Theorems 5.1–5.6 require: at every node the edge towards its successor
//! (`v_{i+1}`) occupies the first port and the edge towards its predecessor
//! the second.
//!
//! Paper-specific families:
//!
//! * [`wheel`] — Figure 2(a): a cycle with chords from `v0` to every other
//!   node (used for the vertex-biconnectivity lower bound, Theorem 5.2);
//! * [`wheel_with_tail`] — the Theorem 5.4 variant: a `c`-node cycle plus
//!   edges from `v0` to all remaining nodes;
//! * [`chain_of_cycles`] — Figure 5: disjoint `c`-cycles chained by bridge
//!   edges (Theorem 5.6);
//! * [`symmetry_gadget`] / [`symmetry_pair`] — Figures 3 and 4: the graphs
//!   `G(z)` and `G(z, z')` encoding bit strings for the reduction from
//!   2-party equality (Lemma C.1).

use crate::{Graph, GraphBuilder, NodeId, Port};
use rand::{Rng, RngExt};

/// A path `u_0 — u_1 — … — u_{n-1}` with consistently ordered ports
/// (successor first).
///
/// # Panics
///
/// Panics if `n < 1`.
#[must_use]
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path needs at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        // Successor edge is port rank 0 at i (unless i is the last node),
        // predecessor edge is rank 1 at i+1 (rank 0 if i+1 is the endpoint).
        let at_succ = if i + 1 == n - 1 {
            Port::from_rank(0)
        } else {
            Port::from_rank(1)
        };
        b.add_edge_with_ports(i, i + 1, Port::from_rank(0), at_succ)
            .expect("path edges are simple");
    }
    b.finish().expect("path ports are contiguous")
}

/// A cycle `v_0 — v_1 — … — v_{n-1} — v_0` with consistently ordered ports:
/// at every node, port 1 leads to the successor and port 2 to the
/// predecessor.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.add_edge_with_ports(i, j, Port::from_rank(0), Port::from_rank(1))
            .expect("cycle edges are simple");
    }
    b.finish().expect("cycle ports are contiguous")
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n < 1`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    assert!(n >= 1, "complete graph needs at least one node");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u, v).expect("distinct pairs");
        }
    }
    b.finish().expect("auto ports are contiguous")
}

/// A star: center node `0` joined to `leaves` leaf nodes `1..=leaves`.
///
/// # Panics
///
/// Panics if `leaves < 1`.
#[must_use]
pub fn star(leaves: usize) -> Graph {
    assert!(leaves >= 1, "star needs at least one leaf");
    let mut b = GraphBuilder::new(leaves + 1);
    for leaf in 1..=leaves {
        b.add_edge(0, leaf).expect("distinct pairs");
    }
    b.finish().expect("auto ports are contiguous")
}

/// A complete binary tree of the given `depth` (`2^depth − 1` nodes, node
/// `i` has children `2i+1` and `2i+2`).
///
/// # Panics
///
/// Panics if `depth` is 0 or at least 32.
#[must_use]
pub fn balanced_binary_tree(depth: u32) -> Graph {
    assert!((1..32).contains(&depth), "depth must be in 1..32");
    let n = (1usize << depth) - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                b.add_edge(i, child).expect("tree edges are simple");
            }
        }
    }
    b.finish().expect("auto ports are contiguous")
}

/// A `rows × cols` grid graph (node `(r, c)` has index `r * cols + c`).
///
/// # Panics
///
/// Panics if either dimension is 0.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                b.add_edge(i, i + 1).expect("grid edges are simple");
            }
            if r + 1 < rows {
                b.add_edge(i, i + cols).expect("grid edges are simple");
            }
        }
    }
    b.finish().expect("auto ports are contiguous")
}

/// A uniformly random labelled tree on `n` nodes (each node `i ≥ 1` attaches
/// to a uniform random earlier node — a random recursive tree).
///
/// # Panics
///
/// Panics if `n < 1`.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "tree needs at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        b.add_edge(parent, i).expect("tree edges are simple");
    }
    b.finish().expect("auto ports are contiguous")
}

/// A connected Erdős–Rényi-style graph: a random spanning tree plus every
/// remaining pair independently with probability `p`.
///
/// # Panics
///
/// Panics if `n < 1` or `p` is not in `[0, 1]`.
pub fn gnp_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n >= 1, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    let mut present = std::collections::HashSet::new();
    for i in 1..n {
        let parent = rng.random_range(0..i);
        b.add_edge(parent, i).expect("tree edges are simple");
        present.insert((parent.min(i), parent.max(i)));
    }
    for u in 0..n {
        for v in u + 1..n {
            if !present.contains(&(u, v)) && rng.random_bool(p) {
                b.add_edge(u, v).expect("new pair");
            }
        }
    }
    b.finish().expect("auto ports are contiguous")
}

/// A connected random **sparse** graph on `n` nodes: a random recursive
/// tree plus `extra` additional uniform random edges (rejection-sampled
/// past self-loops and duplicates), so `m = n − 1 + extra`.
///
/// Unlike [`gnp_connected`] — which enumerates all `n(n−1)/2` pairs and is
/// unusable past a few thousand nodes — this runs in `O(n + extra)` and is
/// the scale family for million-node runs: constant average degree, tree-
/// like local structure, linear memory.
///
/// # Panics
///
/// Panics if `n < 1`, or if `extra` exceeds the number of non-tree pairs
/// (for `n ≥ 3`; tiny graphs simply stop when the graph is complete).
pub fn random_sparse<R: Rng>(n: usize, extra: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "graph needs at least one node");
    let pairs = n * n.saturating_sub(1) / 2;
    assert!(
        n.saturating_sub(1) + extra <= pairs,
        "extra {extra} edges cannot fit in a simple graph on {n} nodes"
    );
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        b.add_edge(parent, i).expect("tree edges are simple");
    }
    let mut added = 0usize;
    while added < extra {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && b.add_edge(u, v).is_ok() {
            added += 1;
        }
    }
    b.finish().expect("auto ports are contiguous")
}

/// A connected **power-law** graph on `n` nodes by preferential attachment
/// (Barabási–Albert style): node `i` attaches to up to `m` distinct earlier
/// nodes, each chosen with probability proportional to its current degree
/// by sampling uniformly from the running edge-endpoint list. A handful of
/// high-degree hubs emerge — the realistic "heavy traffic" topology whose
/// hub nodes exercise the degree-bucketed dense path.
///
/// Runs in `O(n·m)` time and memory. Attachment targets that collide with
/// an already-chosen target for the same node are retried a few times, then
/// skipped, so early low-degree nodes never loop forever; `i ≤ m` nodes
/// attach to all predecessors.
///
/// # Panics
///
/// Panics if `n < 1` or `m < 1`.
pub fn power_law<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "graph needs at least one node");
    assert!(m >= 1, "each node needs at least one attachment");
    let mut b = GraphBuilder::new(n);
    // Every edge contributes both endpoints; a uniform draw from this list
    // is a degree-proportional draw over nodes.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m.min(4));
    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    for i in 1..n {
        chosen.clear();
        let want = m.min(i);
        let mut attempts = 0usize;
        while chosen.len() < want && attempts < 8 * m + 16 {
            attempts += 1;
            let target = if endpoints.is_empty() {
                rng.random_range(0..i)
            } else {
                endpoints[rng.random_range(0..endpoints.len())] as usize
            };
            if target < i && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        if chosen.is_empty() {
            // Degenerate fallback keeps the graph connected whatever the
            // retry budget did: attach uniformly.
            chosen.push(rng.random_range(0..i));
        }
        for &target in &chosen {
            b.add_edge(target, i)
                .expect("targets are distinct earlier nodes");
            endpoints.push(target as u32);
            endpoints.push(i as u32);
        }
    }
    b.finish().expect("auto ports are contiguous")
}

/// Figure 2(a): an `n`-node cycle with consistently ordered ports plus
/// chords `{v_0, v_j}` for `j = 2, …, n−2`.
///
/// This graph is vertex-biconnected; crossing two independent cycle edges
/// produces Figure 2(b), where `v_0` becomes an articulation point — the
/// engine of the Theorem 5.2 lower bound.
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least four nodes");
    let mut b = GraphBuilder::new(n);
    // Cycle edges with the consistent numbering (successor = port 1).
    for i in 0..n {
        let j = (i + 1) % n;
        b.add_edge_with_ports(i, j, Port::from_rank(0), Port::from_rank(1))
            .expect("cycle edges are simple");
    }
    // Chords from v0, taking the next free ports on both sides.
    for (k, j) in (2..=n - 2).enumerate() {
        b.add_edge_with_ports(0, j, Port::from_rank(2 + k), Port::from_rank(2))
            .expect("chords are simple");
    }
    b.finish().expect("wheel ports are contiguous")
}

/// The Theorem 5.4 graph: a `c`-node cycle `v_0 … v_{c-1}` plus edges
/// `{v_0, v_j}` for every `j = 2, …, n−1` with `j ≠ c−1` (both chords inside
/// the cycle and pendant spokes to the `n − c` nodes outside it).
///
/// Satisfies `cycle-at-least-c` and contains `⌊c/3⌋ − 1` pairwise
/// independent cycle edges whose crossing splits the long cycle.
///
/// # Panics
///
/// Panics if `c < 4` or `n < c`.
#[must_use]
pub fn wheel_with_tail(n: usize, c: usize) -> Graph {
    assert!(c >= 4, "cycle part needs at least four nodes");
    assert!(n >= c, "need n >= c");
    let mut b = GraphBuilder::new(n);
    for i in 0..c {
        let j = (i + 1) % c;
        b.add_edge_with_ports(i, j, Port::from_rank(0), Port::from_rank(1))
            .expect("cycle edges are simple");
    }
    let mut next_port_v0 = 2usize;
    for j in 2..n {
        if j == c - 1 {
            continue;
        }
        // Inside the cycle the far endpoint already has ports 0 and 1;
        // outside it this is the node's first edge.
        let far_rank = if j < c { 2 } else { 0 };
        b.add_edge_with_ports(
            0,
            j,
            Port::from_rank(next_port_v0),
            Port::from_rank(far_rank),
        )
        .expect("spokes are simple");
        next_port_v0 += 1;
    }
    b.finish().expect("ports are contiguous")
}

/// Figure 5: a chain of `count` cycles with `cycle_len` nodes each,
/// consecutive cycles joined by a single bridge edge.
///
/// Every simple cycle has length exactly `cycle_len`, so the graph satisfies
/// `cycle-at-most-c` for `c = cycle_len`; crossing two cycle edges from
/// different links merges them into one long cycle (Figure 5(b)), flipping
/// the predicate — the Theorem 5.6 construction.
///
/// The bridge joins node `1` of one cycle to node `⌈len/2⌉` of the next, so
/// bridges never collide with each other on a node.
///
/// # Panics
///
/// Panics if `cycle_len < 4` or `count < 1`.
#[must_use]
pub fn chain_of_cycles(count: usize, cycle_len: usize) -> Graph {
    assert!(cycle_len >= 4, "cycles need at least four nodes");
    assert!(count >= 1, "need at least one cycle");
    let n = count * cycle_len;
    let mut b = GraphBuilder::new(n);
    for k in 0..count {
        let base = k * cycle_len;
        for i in 0..cycle_len {
            let j = (i + 1) % cycle_len;
            b.add_edge_with_ports(base + i, base + j, Port::from_rank(0), Port::from_rank(1))
                .expect("cycle edges are simple");
        }
    }
    for k in 0..count.saturating_sub(1) {
        let from = k * cycle_len + 1;
        let to = (k + 1) * cycle_len + cycle_len / 2;
        b.add_edge_with_ports(from, to, Port::from_rank(2), Port::from_rank(2))
            .expect("bridges are simple");
    }
    b.finish().expect("ports are contiguous")
}

/// Node layout of the Figure 3 symmetry gadget `G(z)`; see
/// [`symmetry_gadget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymmetryLayout {
    /// Number of encoded bits λ.
    pub lambda: usize,
}

impl SymmetryLayout {
    /// Index of path node `u_i`.
    #[must_use]
    pub fn u(&self, i: usize) -> NodeId {
        assert!(i < self.lambda);
        NodeId::new(i)
    }

    /// Index of pendant node `w_i`.
    #[must_use]
    pub fn w(&self, i: usize) -> NodeId {
        assert!(i < self.lambda);
        NodeId::new(self.lambda + i)
    }

    /// Index of triangle node `t_j` (`j ∈ {0, 1, 2}`).
    #[must_use]
    pub fn t(&self, j: usize) -> NodeId {
        assert!(j < 3);
        NodeId::new(2 * self.lambda + j)
    }

    /// Total number of nodes `ν = 2λ + 3`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        2 * self.lambda + 3
    }
}

fn add_gadget_edges(b: &mut GraphBuilder, z: &[bool], offset: usize) {
    let lambda = z.len();
    let u = |i: usize| offset + i;
    let w = |i: usize| offset + lambda + i;
    let t = |j: usize| offset + 2 * lambda + j;
    // Path on U.
    for i in 0..lambda - 1 {
        b.add_edge(u(i), u(i + 1)).expect("path edges are simple");
    }
    // Triangle on T.
    for (a, c) in [(0, 1), (1, 2), (2, 0)] {
        b.add_edge(t(a), t(c)).expect("triangle edges are simple");
    }
    // Anchor edge e0 = {t0, u0}.
    b.add_edge(t(0), u(0)).expect("anchor edge is simple");
    // Pendants encode the bit string.
    for (i, &bit) in z.iter().enumerate() {
        if bit {
            b.add_edge(w(i), u(i)).expect("pendant edges are simple");
        } else {
            b.add_edge(w(i), t(1)).expect("pendant edges are simple");
        }
    }
}

/// Figure 3: the graph `G(z)` encoding the bit string `z` (λ = `z.len()`
/// bits, `2λ + 3` nodes).
///
/// `G(z)` and `G(z')` are isomorphic if and only if `z = z'` (Claim C.2),
/// which is what makes [`symmetry_pair`] a reduction from 2-party equality.
///
/// # Panics
///
/// Panics if `z` is empty.
#[must_use]
pub fn symmetry_gadget(z: &[bool]) -> Graph {
    assert!(!z.is_empty(), "need at least one bit");
    let layout = SymmetryLayout { lambda: z.len() };
    let mut b = GraphBuilder::new(layout.node_count());
    add_gadget_edges(&mut b, z, 0);
    b.finish().expect("auto ports are contiguous")
}

/// Figure 4: the graph `G(z, z')` — two gadgets joined by the single edge
/// `{u⁰_{λ-1}, u¹_{λ-1}}`.
///
/// By Claim C.2 this graph is *symmetric* (removing one edge leaves two
/// isomorphic components) if and only if `z = z'`.
///
/// # Panics
///
/// Panics if the strings are empty or of different lengths.
#[must_use]
pub fn symmetry_pair(z: &[bool], z2: &[bool]) -> Graph {
    assert!(!z.is_empty(), "need at least one bit");
    assert_eq!(z.len(), z2.len(), "strings must have equal length");
    let lambda = z.len();
    let half = 2 * lambda + 3;
    let mut b = GraphBuilder::new(2 * half);
    add_gadget_edges(&mut b, z, 0);
    add_gadget_edges(&mut b, z2, half);
    b.add_edge(lambda - 1, half + lambda - 1)
        .expect("joining edge is simple");
    b.finish().expect("auto ports are contiguous")
}

/// The [`EdgeId`](crate::EdgeId) of the joining edge in [`symmetry_pair`]
/// (the edge whose removal must split the graph into the two gadgets).
#[must_use]
pub fn symmetry_pair_bridge(g: &Graph, lambda: usize) -> crate::EdgeId {
    let half = 2 * lambda + 3;
    g.edge_between(NodeId::new(lambda - 1), NodeId::new(half + lambda - 1))
        .expect("symmetry pair contains its joining edge")
}

/// Random distinct weights `1..=m` (a permutation), guaranteeing the MST is
/// unique.
pub fn distinct_weights<R: Rng>(g: &Graph, rng: &mut R) -> Vec<u64> {
    let m = g.edge_count();
    let mut w: Vec<u64> = (1..=m as u64).collect();
    // Fisher–Yates.
    for i in (1..m).rev() {
        let j = rng.random_range(0..=i);
        w.swap(i, j);
    }
    w
}

/// Independent uniform weights in `1..=max_weight`.
pub fn random_weights<R: Rng>(g: &Graph, max_weight: u64, rng: &mut R) -> Vec<u64> {
    (0..g.edge_count())
        .map(|_| rng.random_range(1..=max_weight))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_structure() {
        let g = path(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(2)), 2);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn path_ports_are_successor_first() {
        let g = path(5);
        // Interior node 2: port 1 -> node 3 (successor), port 2 -> node 1.
        let v = NodeId::new(2);
        assert_eq!(
            g.neighbor_by_port(v, Port::from_rank(0)).unwrap().node,
            NodeId::new(3)
        );
        assert_eq!(
            g.neighbor_by_port(v, Port::from_rank(1)).unwrap().node,
            NodeId::new(1)
        );
    }

    #[test]
    fn cycle_ports_are_consistent() {
        let g = cycle(6);
        for i in 0..6 {
            let v = NodeId::new(i);
            assert_eq!(
                g.neighbor_by_port(v, Port::from_rank(0)).unwrap().node,
                NodeId::new((i + 1) % 6),
                "successor of v{i}"
            );
            assert_eq!(
                g.neighbor_by_port(v, Port::from_rank(1)).unwrap().node,
                NodeId::new((i + 5) % 6),
                "predecessor of v{i}"
            );
        }
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn tree_families_are_acyclic() {
        let g = balanced_binary_tree(4);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(connectivity::is_connected(&g));

        let mut rng = StdRng::seed_from_u64(7);
        let t = random_tree(20, &mut rng);
        assert_eq!(t.edge_count(), 19);
        assert!(connectivity::is_connected(&t));
    }

    #[test]
    fn gnp_is_connected_and_at_least_tree() {
        let mut rng = StdRng::seed_from_u64(11);
        for &p in &[0.0, 0.1, 0.5] {
            let g = gnp_connected(15, p, &mut rng);
            assert!(connectivity::is_connected(&g), "p={p}");
            assert!(g.edge_count() >= 14);
        }
    }

    #[test]
    fn random_sparse_is_connected_with_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(n, extra) in &[(1usize, 0usize), (3, 1), (50, 0), (200, 80)] {
            let g = random_sparse(n, extra, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n - 1 + extra, "n={n} extra={extra}");
            assert!(connectivity::is_connected(&g), "n={n} extra={extra}");
        }
    }

    #[test]
    fn power_law_is_connected_and_skewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 400;
        let g = power_law(n, 2, &mut rng);
        assert_eq!(g.node_count(), n);
        assert!(connectivity::is_connected(&g));
        // Preferential attachment concentrates degree: the hub must beat
        // the mean by a wide margin.
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let mean = 2.0 * g.edge_count() as f64 / n as f64;
        assert!(
            max_deg as f64 > 3.0 * mean,
            "max degree {max_deg} should exceed 3x mean {mean:.1}"
        );
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn wheel_matches_figure_2() {
        let n = 8;
        let g = wheel(n);
        assert_eq!(g.edge_count(), n + (n - 3)); // cycle + chords 2..=n-2
        assert_eq!(g.degree(NodeId::new(0)), 2 + (n - 3));
        assert_eq!(g.degree(NodeId::new(1)), 2); // v1 has no chord
        assert_eq!(g.degree(NodeId::new(n - 1)), 2); // v_{n-1} has no chord
        assert_eq!(g.degree(NodeId::new(2)), 3);
        assert!(connectivity::is_biconnected(&g));
    }

    #[test]
    fn wheel_with_tail_has_long_cycle_and_spokes() {
        let (n, c) = (12, 8);
        let g = wheel_with_tail(n, c);
        assert!(connectivity::is_connected(&g));
        // v_{c-1} has no chord; tail nodes hang off v0.
        assert_eq!(g.degree(NodeId::new(c - 1)), 2);
        for j in c..n {
            assert_eq!(g.degree(NodeId::new(j)), 1, "tail node v{j}");
        }
        // Edge count: c cycle edges + (n - 3) spokes (j = 2..n-1 minus c-1).
        assert_eq!(g.edge_count(), c + n - 3);
    }

    #[test]
    fn chain_of_cycles_matches_figure_5() {
        let g = chain_of_cycles(3, 6);
        assert_eq!(g.node_count(), 18);
        assert_eq!(g.edge_count(), 3 * 6 + 2);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn symmetry_gadget_structure() {
        let z = [true, false, false, true, true]; // "10011" as in Figure 3
        let g = symmetry_gadget(&z);
        let layout = SymmetryLayout { lambda: z.len() };
        assert_eq!(g.node_count(), 13);
        // λ-1 path + 3 triangle + 1 anchor + λ pendant edges.
        assert_eq!(g.edge_count(), (z.len() - 1) + 3 + 1 + z.len());
        assert!(connectivity::is_connected(&g));
        // w_0 attaches to u_0 (bit 1); w_1 attaches to t_1 (bit 0).
        assert!(g.are_adjacent(layout.w(0), layout.u(0)));
        assert!(g.are_adjacent(layout.w(1), layout.t(1)));
    }

    #[test]
    fn symmetry_pair_is_two_gadgets_plus_bridge() {
        let z = [true, false, true];
        let g = symmetry_pair(&z, &z);
        assert_eq!(g.node_count(), 2 * 9);
        let bridge = symmetry_pair_bridge(&g, z.len());
        let rec = g.edge(bridge);
        assert_eq!(rec.u, NodeId::new(2));
        assert_eq!(rec.v, NodeId::new(9 + 2));
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn distinct_weights_are_a_permutation() {
        let g = complete(5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = distinct_weights(&g, &mut rng);
        w.sort_unstable();
        assert_eq!(w, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn random_weights_respect_bounds() {
        let g = cycle(10);
        let mut rng = StdRng::seed_from_u64(3);
        let w = random_weights(&g, 64, &mut rng);
        assert!(w.iter().all(|&x| (1..=64).contains(&x)));
    }
}
