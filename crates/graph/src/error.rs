//! Error type for graph construction and manipulation.

use crate::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Error raised by graph construction, validation or the crossing operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `{v, v}` was requested; the model forbids them.
    SelfLoop(NodeId),
    /// A duplicate edge `{u, v}` was requested; the model forbids multi-edges.
    DuplicateEdge(NodeId, NodeId),
    /// An edge index referred outside `0..m`.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges in the graph.
        edge_count: usize,
    },
    /// The requested operation needs a connected graph.
    NotConnected,
    /// Two subgraphs passed to a crossing were not independent
    /// (Definition 4.1: disjoint node sets and no connecting edges).
    NotIndependent {
        /// Human-readable reason (which condition failed and where).
        reason: String,
    },
    /// A mapping passed as an isomorphism is not a valid port-preserving
    /// isomorphism between the two subgraphs.
    NotAnIsomorphism {
        /// Human-readable reason.
        reason: String,
    },
    /// Weights were required (e.g. by an MST routine) but absent.
    MissingWeights,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for {node_count} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge between {u} and {v} is not allowed")
            }
            GraphError::EdgeOutOfRange { edge, edge_count } => {
                write!(f, "edge {edge} out of range for {edge_count} edges")
            }
            GraphError::NotConnected => write!(f, "graph is not connected"),
            GraphError::NotIndependent { reason } => {
                write!(f, "subgraphs are not independent: {reason}")
            }
            GraphError::NotAnIsomorphism { reason } => {
                write!(f, "mapping is not a port-preserving isomorphism: {reason}")
            }
            GraphError::MissingWeights => write!(f, "graph has no edge weights"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offenders() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId::new(7),
            node_count: 5,
        };
        let s = e.to_string();
        assert!(s.contains("v7") && s.contains('5'));

        assert!(GraphError::SelfLoop(NodeId::new(1))
            .to_string()
            .contains("v1"));
        assert!(GraphError::NotConnected.to_string().contains("connected"));
    }
}
