//! The crossing operator of Definition 4.2 and the independent-copies
//! machinery behind Theorems 4.4, 4.7 and Propositions 4.3, 4.6, 4.8.
//!
//! Given two independent isomorphic subgraphs `H₁`, `H₂` of `G` and a
//! port-preserving isomorphism `σ : V(H₁) → V(H₂)`, the crossing `σ⋈(G)`
//! replaces every pair of edges `{u, v} ∈ E(H₁)` and `{σ(u), σ(v)} ∈ E(H₂)`
//! by `{u, σ(v)}` and `{σ(u), v}` (Figure 1). Degrees and port numbers are
//! preserved, which is exactly why a local verifier cannot tell the crossed
//! graph from the original when the labels (or certificate distributions)
//! on the two subgraphs collide.

use crate::subgraph::{check_independent, Subgraph};
use crate::{EdgeRecord, Graph, GraphError, NodeId};
use std::collections::BTreeMap;

/// A node bijection `σ : V(H₁) → V(H₂)` intended to be a port-preserving
/// isomorphism between two subgraphs of the same host graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortIsomorphism {
    map: BTreeMap<NodeId, NodeId>,
}

impl PortIsomorphism {
    /// Builds an isomorphism from explicit `(from, to)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAnIsomorphism`] if the pairs do not form a
    /// bijection.
    pub fn from_pairs<I: IntoIterator<Item = (NodeId, NodeId)>>(
        pairs: I,
    ) -> Result<Self, GraphError> {
        let mut map = BTreeMap::new();
        let mut image = std::collections::BTreeSet::new();
        for (from, to) in pairs {
            if map.insert(from, to).is_some() {
                return Err(GraphError::NotAnIsomorphism {
                    reason: format!("{from} mapped twice"),
                });
            }
            if !image.insert(to) {
                return Err(GraphError::NotAnIsomorphism {
                    reason: format!("{to} is the image of two nodes"),
                });
            }
        }
        Ok(Self { map })
    }

    /// The identity isomorphism on the nodes of `h`.
    #[must_use]
    pub fn identity(h: &Subgraph) -> Self {
        Self {
            map: h.nodes().map(|v| (v, v)).collect(),
        }
    }

    /// Applies σ to a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the domain.
    #[must_use]
    pub fn apply(&self, v: NodeId) -> NodeId {
        self.map[&v]
    }

    /// Applies σ if `v` is in the domain.
    #[must_use]
    pub fn try_apply(&self, v: NodeId) -> Option<NodeId> {
        self.map.get(&v).copied()
    }

    /// The inverse bijection σ⁻¹.
    #[must_use]
    pub fn inverse(&self) -> Self {
        Self {
            map: self.map.iter().map(|(&k, &v)| (v, k)).collect(),
        }
    }

    /// The composition `other ∘ self` (apply `self` first).
    ///
    /// # Panics
    ///
    /// Panics if the image of `self` is not contained in the domain of
    /// `other`.
    #[must_use]
    pub fn then(&self, other: &Self) -> Self {
        Self {
            map: self
                .map
                .iter()
                .map(|(&k, &v)| (k, other.apply(v)))
                .collect(),
        }
    }

    /// Iterates over the `(from, to)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Verifies that σ is a port-preserving isomorphism from `h1` onto `h2`
    /// within `g`: a bijection of node sets mapping edges to edges such that
    /// corresponding edges occupy the same port numbers at corresponding
    /// endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAnIsomorphism`] describing the violation.
    pub fn check(&self, g: &Graph, h1: &Subgraph, h2: &Subgraph) -> Result<(), GraphError> {
        // Domain must be exactly V(H1), image exactly V(H2).
        for v in h1.nodes() {
            let img = self
                .try_apply(v)
                .ok_or_else(|| GraphError::NotAnIsomorphism {
                    reason: format!("{v} has no image"),
                })?;
            if !h2.contains_node(img) {
                return Err(GraphError::NotAnIsomorphism {
                    reason: format!("image {img} of {v} lies outside H2"),
                });
            }
        }
        if self.map.len() != h1.node_count() || h1.node_count() != h2.node_count() {
            return Err(GraphError::NotAnIsomorphism {
                reason: "node counts differ".to_owned(),
            });
        }
        if h1.edge_count() != h2.edge_count() {
            return Err(GraphError::NotAnIsomorphism {
                reason: "edge counts differ".to_owned(),
            });
        }
        for &eid in h1.edges() {
            let rec = g.edge(eid);
            let (iu, iv) = (self.apply(rec.u), self.apply(rec.v));
            let Some(img_eid) = g.edge_between(iu, iv) else {
                return Err(GraphError::NotAnIsomorphism {
                    reason: format!("edge {{{}, {}}} has no image edge", rec.u, rec.v),
                });
            };
            if !h2.contains_edge(img_eid) {
                return Err(GraphError::NotAnIsomorphism {
                    reason: format!("image of edge {{{}, {}}} is outside H2", rec.u, rec.v),
                });
            }
            let img = g.edge(img_eid);
            if img.port_at(iu) != rec.port_at(rec.u) || img.port_at(iv) != rec.port_at(rec.v) {
                return Err(GraphError::NotAnIsomorphism {
                    reason: format!(
                        "edge {{{}, {}}} changes port numbers under the mapping",
                        rec.u, rec.v
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A family of `r` pairwise independent, isomorphic subgraphs
/// `H₁, …, H_r` of a host graph, with port-preserving isomorphisms
/// `σᵢ : H₁ → Hᵢ` (σ₁ = identity) — the hypothesis shared by Theorems 4.4
/// and 4.7.
#[derive(Debug, Clone)]
pub struct IndependentCopies {
    copies: Vec<Subgraph>,
    isos: Vec<PortIsomorphism>,
}

impl IndependentCopies {
    /// Builds and validates a family. `isos[i]` must map `copies[0]` onto
    /// `copies[i]`; the identity for `i = 0` is checked like the rest.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotIndependent`] if some pair of copies is not
    /// independent, or [`GraphError::NotAnIsomorphism`] if a mapping is not
    /// a port-preserving isomorphism.
    pub fn new(
        g: &Graph,
        copies: Vec<Subgraph>,
        isos: Vec<PortIsomorphism>,
    ) -> Result<Self, GraphError> {
        assert_eq!(copies.len(), isos.len(), "one isomorphism per copy");
        assert!(!copies.is_empty(), "need at least one copy");
        for i in 0..copies.len() {
            isos[i].check(g, &copies[0], &copies[i])?;
            for j in i + 1..copies.len() {
                check_independent(g, &copies[i], &copies[j])?;
            }
        }
        Ok(Self { copies, isos })
    }

    /// The common case used throughout §5: each copy is a single edge, and
    /// `σᵢ` maps the endpoints of the first edge onto the endpoints of the
    /// `i`-th in the given orientation.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`IndependentCopies::new`].
    pub fn single_edges(
        g: &Graph,
        oriented_edges: &[(NodeId, NodeId)],
    ) -> Result<Self, GraphError> {
        assert!(!oriented_edges.is_empty(), "need at least one edge");
        let mut copies = Vec::with_capacity(oriented_edges.len());
        let mut isos = Vec::with_capacity(oriented_edges.len());
        let (a0, b0) = oriented_edges[0];
        for &(a, b) in oriented_edges {
            let eid = g
                .edge_between(a, b)
                .ok_or_else(|| GraphError::NotAnIsomorphism {
                    reason: format!("no edge between {a} and {b}"),
                })?;
            copies.push(Subgraph::from_edges(g, [eid]));
            isos.push(PortIsomorphism::from_pairs([(a0, a), (b0, b)])?);
        }
        Self::new(g, copies, isos)
    }

    /// Number of copies `r`.
    #[must_use]
    pub fn count(&self) -> usize {
        self.copies.len()
    }

    /// Number of edges `s` in each copy.
    #[must_use]
    pub fn edges_per_copy(&self) -> usize {
        self.copies[0].edge_count()
    }

    /// The `i`-th copy.
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    #[must_use]
    pub fn copy(&self, i: usize) -> &Subgraph {
        &self.copies[i]
    }

    /// The isomorphism `σᵢ : H₁ → Hᵢ`.
    #[must_use]
    pub fn iso(&self, i: usize) -> &PortIsomorphism {
        &self.isos[i]
    }

    /// The isomorphism `σᵢⱼ = σⱼ ∘ σᵢ⁻¹ : Hᵢ → Hⱼ` used in the crossing.
    #[must_use]
    pub fn sigma_between(&self, i: usize, j: usize) -> PortIsomorphism {
        self.isos[i].inverse().then(&self.isos[j])
    }

    /// The nodes of copy `i`, ordered consistently with copy 0 (i.e. the
    /// image under `σᵢ` of copy 0's sorted node order). Label concatenation
    /// in the pigeonhole arguments must use this shared order.
    #[must_use]
    pub fn ordered_nodes(&self, i: usize) -> Vec<NodeId> {
        self.copies[0]
            .nodes()
            .map(|v| self.isos[i].apply(v))
            .collect()
    }

    /// The edges of copy `i` as oriented pairs, ordered consistently with
    /// copy 0 (image of copy 0's edge order, orientation induced by σᵢ).
    #[must_use]
    pub fn ordered_edges(&self, g: &Graph, i: usize) -> Vec<(NodeId, NodeId)> {
        self.copies[0]
            .edges()
            .iter()
            .map(|&eid| {
                let rec = g.edge(eid);
                (self.isos[i].apply(rec.u), self.isos[i].apply(rec.v))
            })
            .collect()
    }
}

/// Computes the crossing `σ⋈(G)` (Definition 4.2) for `σ : Hᵢ → Hⱼ`.
///
/// Every edge `{u, v}` of `h_from` is removed together with its image
/// `{σ(u), σ(v)}`, and the pair is replaced by `{u, σ(v)}` and `{σ(u), v}`.
/// Port numbers are inherited endpoint-wise from the removed edges, so the
/// port layout of every node is unchanged. Edge weights travel with the
/// endpoint of `h_from`: `{u, σ(v)}` inherits the weight of `{u, v}` and
/// `{σ(u), v}` that of `{σ(u), σ(v)}` (the §5 families are uniformly
/// weighted, so this choice is only visible to callers building custom
/// weighted crossings).
///
/// # Errors
///
/// Returns [`GraphError::NotAnIsomorphism`] if an image edge is missing, or
/// a duplicate-edge error if the crossing would create a multi-edge (which
/// cannot happen for independent copies).
pub fn cross(g: &Graph, sigma: &PortIsomorphism, h_from: &Subgraph) -> Result<Graph, GraphError> {
    let mut removed = std::collections::BTreeSet::new();
    let mut added: Vec<EdgeRecord> = Vec::new();
    for &eid in h_from.edges() {
        let rec = g.edge(eid);
        let (u, v) = (rec.u, rec.v);
        let (iu, iv) = (sigma.apply(u), sigma.apply(v));
        let img_eid = g
            .edge_between(iu, iv)
            .ok_or_else(|| GraphError::NotAnIsomorphism {
                reason: format!("image edge {{{iu}, {iv}}} missing"),
            })?;
        let img = g.edge(img_eid);
        removed.insert(eid);
        removed.insert(img_eid);
        added.push(EdgeRecord {
            u,
            v: iv,
            port_at_u: rec.port_at(u),
            port_at_v: img.port_at(iv),
            weight: rec.weight,
        });
        added.push(EdgeRecord {
            u: iu,
            v,
            port_at_u: img.port_at(iu),
            port_at_v: rec.port_at(v),
            weight: img.weight,
        });
    }
    let mut records: Vec<EdgeRecord> = g
        .edges()
        .filter(|(eid, _)| !removed.contains(eid))
        .map(|(_, r)| *r)
        .collect();
    records.extend(added);
    Graph::from_edge_records(g.node_count(), records)
}

/// Convenience: the crossing induced by copies `i` and `j` of a family.
///
/// # Errors
///
/// Propagates the errors of [`cross`].
pub fn cross_copies(
    g: &Graph,
    family: &IndependentCopies,
    i: usize,
    j: usize,
) -> Result<Graph, GraphError> {
    let sigma = family.sigma_between(i, j);
    cross(g, &sigma, family.copy(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connectivity, generators, EdgeId};

    /// Build the paper's acyclicity family on a path: copies H_i are single
    /// edges {u_{3i}, u_{3i+1}} (plus H_1 = {u_0, u_1} shifted to match the
    /// 0-based layout).
    fn path_family(n: usize) -> (Graph, IndependentCopies) {
        let g = generators::path(n);
        let r = n / 3 - 1;
        let edges: Vec<(NodeId, NodeId)> = (1..=r)
            .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
            .collect();
        let fam = IndependentCopies::single_edges(&g, &edges).unwrap();
        (g, fam)
    }

    #[test]
    fn identity_isomorphism_checks_out() {
        let g = generators::cycle(6);
        let h = Subgraph::from_edges(&g, [EdgeId::new(2)]);
        let id = PortIsomorphism::identity(&h);
        id.check(&g, &h, &h).unwrap();
    }

    #[test]
    fn figure_1_single_edge_crossing() {
        // Crossing {u, v} and {σu, σv} yields {u, σv} and {σu, v}.
        let (g, fam) = path_family(12);
        let crossed = cross_copies(&g, &fam, 0, 1).unwrap();
        // Edges {3,4} and {6,7} replaced by {3,7} and {6,4}.
        let mut expect = generators::path(12).sorted_edge_list();
        expect.retain(|&e| e != (3, 4) && e != (6, 7));
        expect.push((3, 7));
        expect.push((4, 6));
        expect.sort_unstable();
        assert_eq!(crossed.sorted_edge_list(), expect);
    }

    #[test]
    fn crossing_preserves_degrees_and_ports() {
        let (g, fam) = path_family(15);
        let crossed = cross_copies(&g, &fam, 0, 2).unwrap();
        for v in g.nodes() {
            assert_eq!(g.degree(v), crossed.degree(v), "degree of {v}");
        }
        // Port layout validity is enforced by the rebuild; spot-check one.
        let v = NodeId::new(3);
        let ports_g: Vec<usize> = g.neighbors(v).map(|nb| nb.port.rank()).collect();
        let ports_x: Vec<usize> = crossed.neighbors(v).map(|nb| nb.port.rank()).collect();
        assert_eq!(ports_g, ports_x);
    }

    #[test]
    fn crossing_a_path_creates_a_cycle() {
        // Theorem 5.1's acyclicity argument: crossing two path edges turns
        // the segment between them into a cycle.
        let (g, fam) = path_family(12);
        assert!(!crate::cycles::has_cycle(&g));
        let crossed = cross_copies(&g, &fam, 0, 1).unwrap();
        assert!(crate::cycles::has_cycle(&crossed));
    }

    #[test]
    fn crossing_wheel_creates_articulation_point() {
        // Theorem 5.2: crossing two independent cycle edges of the wheel
        // splits the rim; v0 becomes an articulation point (Figure 2(b)).
        let n = 13;
        let g = generators::wheel(n);
        assert!(connectivity::is_biconnected(&g));
        let edges: Vec<(NodeId, NodeId)> = (1..=(n / 3 - 1))
            .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
            .collect();
        let fam = IndependentCopies::single_edges(&g, &edges).unwrap();
        let crossed = cross_copies(&g, &fam, 0, 1).unwrap();
        assert!(connectivity::is_connected(&crossed));
        assert!(!connectivity::is_biconnected(&crossed));
        assert!(connectivity::articulation_points(&crossed).contains(&NodeId::new(0)));
    }

    #[test]
    fn sigma_between_composes_isos() {
        let (_, fam) = path_family(15);
        let s = fam.sigma_between(1, 2);
        // σ_{1,2} maps H_2 = {6,7} onto H_3 = {9,10}.
        assert_eq!(s.apply(NodeId::new(6)), NodeId::new(9));
        assert_eq!(s.apply(NodeId::new(7)), NodeId::new(10));
    }

    #[test]
    fn non_bijection_rejected() {
        let err = PortIsomorphism::from_pairs([
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(1)),
        ])
        .unwrap_err();
        assert!(matches!(err, GraphError::NotAnIsomorphism { .. }));
    }

    #[test]
    fn port_mismatch_rejected() {
        // Map a path edge onto one with swapped orientation: the endpoints'
        // ports disagree (successor-port vs predecessor-port), so the check
        // must fail.
        let g = generators::path(9);
        let edges = [
            (NodeId::new(3), NodeId::new(4)),
            (NodeId::new(7), NodeId::new(6)), // reversed orientation
        ];
        let err = IndependentCopies::single_edges(&g, &edges).unwrap_err();
        assert!(matches!(err, GraphError::NotAnIsomorphism { .. }));
    }

    #[test]
    fn dependent_copies_rejected() {
        let g = generators::path(9);
        let edges = [
            (NodeId::new(1), NodeId::new(2)),
            (NodeId::new(3), NodeId::new(4)), // edge {2,3} connects them
        ];
        let err = IndependentCopies::single_edges(&g, &edges).unwrap_err();
        assert!(matches!(err, GraphError::NotIndependent { .. }));
    }

    #[test]
    fn ordered_nodes_follow_sigma() {
        let (_, fam) = path_family(12);
        assert_eq!(fam.ordered_nodes(1), vec![NodeId::new(6), NodeId::new(7)]);
    }

    #[test]
    fn crossing_is_involutive_on_single_edges() {
        // Crossing the same pair twice restores the original edge set.
        let (g, fam) = path_family(12);
        let once = cross_copies(&g, &fam, 0, 1).unwrap();
        // Re-derive the family on the crossed graph with swapped partners.
        let sigma = fam.sigma_between(0, 1);
        let h0 = fam.copy(0);
        // After crossing, edges are {3, σ(4)} and {σ(3), 4}; crossing them
        // back under the same sigma restores the originals.
        let e1 = once
            .edge_between(NodeId::new(3), sigma.apply(NodeId::new(4)))
            .unwrap();
        let h = Subgraph::from_edges(&once, [e1]);
        let sigma_back = PortIsomorphism::from_pairs([
            (NodeId::new(3), sigma.apply(NodeId::new(3))),
            (sigma.apply(NodeId::new(4)), NodeId::new(4)),
        ])
        .unwrap();
        let twice = cross(&once, &sigma_back, &h).unwrap();
        assert_eq!(twice.sorted_edge_list(), g.sorted_edge_list());
        let _ = h0;
    }
}
