//! Max-flow and connectivity numbers for the k-flow scheme of §5.2.
//!
//! The paper's k-flow problem asks whether the maximum flow between two
//! distinguished nodes equals `k`; with unit capacities this is the number
//! of edge-disjoint s–t paths (Menger). The s-t *vertex* connectivity used
//! by the s-t k-connectivity discussion is computed by the standard node
//! splitting reduction.

use crate::{Graph, NodeId};

/// Maximum s–t flow of `g` with unit capacity per edge — equivalently the
/// maximum number of pairwise edge-disjoint s–t paths.
///
/// Edmonds–Karp on the residual network; with unit capacities the running
/// time is `O(m · flow)`.
///
/// # Panics
///
/// Panics if `s == t`.
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, flow, NodeId};
/// let g = generators::cycle(6);
/// assert_eq!(flow::max_flow_unit(&g, NodeId::new(0), NodeId::new(3)), 2);
/// ```
#[must_use]
pub fn max_flow_unit(g: &Graph, s: NodeId, t: NodeId) -> usize {
    assert_ne!(s, t, "source and sink must differ");
    // Directed residual capacities per (edge, direction): each undirected
    // edge supports one unit in either direction, and sending flow one way
    // frees capacity the other way. cap[e][0]: u->v, cap[e][1]: v->u.
    let m = g.edge_count();
    let mut cap = vec![[1u8, 1u8]; m];
    let mut flow = 0usize;
    loop {
        // BFS over residual edges.
        let n = g.node_count();
        let mut pred: Vec<Option<(NodeId, usize, usize)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[s.index()] = true;
        queue.push_back(s);
        'bfs: while let Some(v) = queue.pop_front() {
            for nb in g.neighbors(v) {
                let eid = nb.edge.index();
                let rec = g.edge(nb.edge);
                let dir = usize::from(rec.u != v); // 0 if v is rec.u
                if cap[eid][dir] == 0 || visited[nb.node.index()] {
                    continue;
                }
                visited[nb.node.index()] = true;
                pred[nb.node.index()] = Some((v, eid, dir));
                if nb.node == t {
                    break 'bfs;
                }
                queue.push_back(nb.node);
            }
        }
        if !visited[t.index()] {
            return flow;
        }
        // Augment one unit along the path.
        let mut v = t;
        while v != s {
            let (prev, eid, dir) = pred[v.index()].expect("path exists");
            cap[eid][dir] -= 1;
            cap[eid][1 - dir] += 1;
            v = prev;
        }
        flow += 1;
    }
}

/// Computes a maximum set of pairwise edge-disjoint s–t paths (each a node
/// sequence starting at `s` and ending at `t`), via max-flow followed by
/// flow decomposition.
///
/// # Panics
///
/// Panics if `s == t`.
#[must_use]
pub fn edge_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert_ne!(s, t, "source and sink must differ");
    let m = g.edge_count();
    let mut cap = vec![[1u8, 1u8]; m];
    loop {
        let n = g.node_count();
        let mut pred: Vec<Option<(NodeId, usize, usize)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[s.index()] = true;
        queue.push_back(s);
        'bfs: while let Some(v) = queue.pop_front() {
            for nb in g.neighbors(v) {
                let eid = nb.edge.index();
                let rec = g.edge(nb.edge);
                let dir = usize::from(rec.u != v);
                if cap[eid][dir] == 0 || visited[nb.node.index()] {
                    continue;
                }
                visited[nb.node.index()] = true;
                pred[nb.node.index()] = Some((v, eid, dir));
                if nb.node == t {
                    break 'bfs;
                }
                queue.push_back(nb.node);
            }
        }
        if !visited[t.index()] {
            break;
        }
        let mut v = t;
        while v != s {
            let (prev, eid, dir) = pred[v.index()].expect("path exists");
            cap[eid][dir] -= 1;
            cap[eid][1 - dir] += 1;
            v = prev;
        }
    }
    // Net flow per edge: direction u->v iff cap[e][0] was consumed on net.
    // cap[e] started at [1, 1]; [0, 2] means one unit u->v, [2, 0] v->u,
    // [1, 1] unused.
    let mut out: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); g.node_count()];
    for (eid, rec) in g.edges() {
        match cap[eid.index()] {
            [0, 2] => out[rec.u.index()].push((eid.index(), rec.v)),
            [2, 0] => out[rec.v.index()].push((eid.index(), rec.u)),
            _ => {}
        }
    }
    // Decompose: repeatedly walk from s following unused flow arcs.
    let mut paths = Vec::new();
    while let Some((_, first)) = out[s.index()].pop() {
        let mut v = first;
        let mut path = vec![s, v];
        while v != t {
            let (_, next) = out[v.index()].pop().expect("flow conservation");
            path.push(next);
            v = next;
        }
        paths.push(path);
    }
    paths
}

/// s–t vertex connectivity: the maximum number of internally node-disjoint
/// s–t paths, computed by splitting every node `v ∉ {s, t}` into
/// `v_in → v_out` with unit capacity.
///
/// For adjacent `s`, `t` the count includes the direct edge.
///
/// # Panics
///
/// Panics if `s == t`.
#[must_use]
pub fn vertex_connectivity_st(g: &Graph, s: NodeId, t: NodeId) -> usize {
    assert_ne!(s, t, "source and sink must differ");
    let (arcs, src, dst) = split_network(g, s, t);
    let state = run_max_flow(2 * g.node_count(), &arcs, src, dst);
    // Flow value = total used capacity on arcs leaving the source.
    arcs.iter()
        .enumerate()
        .filter(|&(_, &(u, _, _))| u == src)
        .map(|(i, &(_, _, c))| (c - state.cap[2 * i]).max(0) as usize)
        .sum()
}

/// Computes a maximum set of internally node-disjoint s–t paths via the
/// node-splitting reduction plus flow decomposition. The direct s–t edge
/// (if any) contributes the single-edge path.
///
/// # Panics
///
/// Panics if `s == t`.
#[must_use]
pub fn vertex_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert_ne!(s, t, "source and sink must differ");
    let (arcs, src, dst) = split_network(g, s, t);
    let state = run_max_flow(2 * g.node_count(), &arcs, src, dst);
    // Walk saturated arcs from s_out, skipping the internal in->out arcs.
    // out_arcs[v] = list of target nodes w with saturated arc v_out -> w_in.
    let n = g.node_count();
    let mut out_arcs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(u, v, cap0)) in arcs.iter().enumerate() {
        // Arc i occupies slots 2i (forward) and 2i+1 (reverse) in state.
        let used = cap0 - state.cap[2 * i];
        if used > 0 && u % 2 == 1 && v % 2 == 0 && u / 2 != v / 2 {
            // v_out -> w_in arc carrying flow.
            for _ in 0..used {
                out_arcs[u / 2].push(v / 2);
            }
        }
    }
    let mut paths = Vec::new();
    while let Some(&first) = out_arcs[s.index()].last() {
        out_arcs[s.index()].pop();
        let mut path = vec![s, NodeId::new(first)];
        let mut cur = first;
        while cur != t.index() {
            let next = out_arcs[cur].pop().expect("flow conservation");
            path.push(NodeId::new(next));
            cur = next;
        }
        paths.push(path);
    }
    paths
}

/// Computes a minimum s–t *vertex* cut: a smallest set of nodes (excluding
/// `s` and `t`) whose removal disconnects `s` from `t`.
///
/// Returns `None` if `s` and `t` are adjacent (no vertex cut exists: the
/// direct edge survives every node removal).
///
/// # Panics
///
/// Panics if `s == t`.
#[must_use]
pub fn minimum_vertex_cut(g: &Graph, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
    assert_ne!(s, t, "source and sink must differ");
    if g.are_adjacent(s, t) {
        return None;
    }
    let (arcs, src, dst) = split_network(g, s, t);
    let state = run_max_flow(2 * g.node_count(), &arcs, src, dst);
    // Min cut: nodes whose internal arc v_in -> v_out crosses the residual
    // reachability frontier.
    let n2 = 2 * g.node_count();
    let mut reach = vec![false; n2];
    reach[src] = true;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        for &a in &state.adj[v] {
            let w = state.head[a];
            if state.cap[a] > 0 && !reach[w] {
                reach[w] = true;
                queue.push_back(w);
            }
        }
    }
    let mut cut = Vec::new();
    for v in 0..g.node_count() {
        if reach[2 * v] && !reach[2 * v + 1] {
            cut.push(NodeId::new(v));
        }
    }
    Some(cut)
}

/// Builds the node-splitting network: node `2v = v_in`, `2v+1 = v_out`.
fn split_network(g: &Graph, s: NodeId, t: NodeId) -> (Vec<(usize, usize, i64)>, usize, usize) {
    let n = g.node_count();
    let big = n as i64;
    let mut arcs: Vec<(usize, usize, i64)> = Vec::new();
    for v in g.nodes() {
        let c = if v == s || v == t { big } else { 1 };
        arcs.push((2 * v.index(), 2 * v.index() + 1, c));
    }
    for (_, rec) in g.edges() {
        let c = if (rec.u == s && rec.v == t) || (rec.u == t && rec.v == s) {
            1
        } else {
            big
        };
        arcs.push((2 * rec.u.index() + 1, 2 * rec.v.index(), c));
        arcs.push((2 * rec.v.index() + 1, 2 * rec.u.index(), c));
    }
    (arcs, 2 * s.index() + 1, 2 * t.index())
}

/// Residual state of a finished max-flow run.
struct FlowState {
    head: Vec<usize>,
    cap: Vec<i64>,
    adj: Vec<Vec<usize>>,
}

fn run_max_flow(n: usize, arcs: &[(usize, usize, i64)], s: usize, t: usize) -> FlowState {
    let mut head = Vec::with_capacity(arcs.len() * 2);
    let mut cap = Vec::with_capacity(arcs.len() * 2);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v, c) in arcs {
        adj[u].push(head.len());
        head.push(v);
        cap.push(c);
        adj[v].push(head.len());
        head.push(u);
        cap.push(0);
    }
    loop {
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            if v == t {
                break;
            }
            for &a in &adj[v] {
                let w = head[a];
                if cap[a] > 0 && !visited[w] {
                    visited[w] = true;
                    pred[w] = Some(a);
                    queue.push_back(w);
                }
            }
        }
        if !visited[t] {
            return FlowState { head, cap, adj };
        }
        let mut bottleneck = i64::MAX;
        let mut v = t;
        while v != s {
            let a = pred[v].expect("path exists");
            bottleneck = bottleneck.min(cap[a]);
            v = head[a ^ 1];
        }
        let mut v = t;
        while v != s {
            let a = pred[v].expect("path exists");
            cap[a] -= bottleneck;
            cap[a ^ 1] += bottleneck;
            v = head[a ^ 1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_has_unit_flow() {
        let g = generators::path(5);
        assert_eq!(max_flow_unit(&g, NodeId::new(0), NodeId::new(4)), 1);
        assert_eq!(
            vertex_connectivity_st(&g, NodeId::new(0), NodeId::new(4)),
            1
        );
    }

    #[test]
    fn cycle_has_two_disjoint_paths() {
        let g = generators::cycle(8);
        assert_eq!(max_flow_unit(&g, NodeId::new(0), NodeId::new(4)), 2);
        assert_eq!(
            vertex_connectivity_st(&g, NodeId::new(0), NodeId::new(4)),
            2
        );
    }

    #[test]
    fn complete_graph_flow_is_n_minus_1() {
        let g = generators::complete(6);
        assert_eq!(max_flow_unit(&g, NodeId::new(0), NodeId::new(5)), 5);
        // Vertex connectivity between adjacent nodes in K_n is n-1
        // (the direct edge plus n-2 two-hop paths).
        assert_eq!(
            vertex_connectivity_st(&g, NodeId::new(0), NodeId::new(5)),
            5
        );
    }

    #[test]
    fn star_routes_through_center() {
        let g = generators::star(5);
        assert_eq!(max_flow_unit(&g, NodeId::new(1), NodeId::new(2)), 1);
        assert_eq!(
            vertex_connectivity_st(&g, NodeId::new(1), NodeId::new(2)),
            1
        );
    }

    #[test]
    fn grid_corner_to_corner() {
        let g = generators::grid(3, 3);
        // Two disjoint monotone paths exist between opposite corners.
        assert_eq!(max_flow_unit(&g, NodeId::new(0), NodeId::new(8)), 2);
        assert_eq!(
            vertex_connectivity_st(&g, NodeId::new(0), NodeId::new(8)),
            2
        );
    }

    #[test]
    fn wheel_flow_between_rim_nodes() {
        let g = generators::wheel(9);
        // v1 has degree 2, limiting both flows through it.
        assert_eq!(max_flow_unit(&g, NodeId::new(1), NodeId::new(5)), 2);
    }

    #[test]
    fn decomposed_paths_are_edge_disjoint_and_valid() {
        for (g, s, t) in [
            (generators::cycle(8), 0usize, 4usize),
            (generators::complete(6), 0, 5),
            (generators::grid(3, 3), 0, 8),
            (generators::wheel(9), 1, 5),
        ] {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            let paths = edge_disjoint_paths(&g, s, t);
            assert_eq!(paths.len(), max_flow_unit(&g, s, t));
            let mut used = std::collections::HashSet::new();
            for p in &paths {
                assert_eq!(p[0], s);
                assert_eq!(*p.last().unwrap(), t);
                for w in p.windows(2) {
                    let eid = g.edge_between(w[0], w[1]).expect("path uses real edges");
                    assert!(used.insert(eid), "edge reused across paths");
                }
            }
        }
    }

    #[test]
    fn vertex_disjoint_paths_are_disjoint_and_counted() {
        for (g, s, t) in [
            (generators::cycle(8), 0usize, 4usize),
            (generators::grid(3, 4), 0, 11),
            (generators::complete(6), 0, 5),
            (generators::wheel(9), 2, 6),
        ] {
            let (s, t) = (NodeId::new(s), NodeId::new(t));
            let paths = vertex_disjoint_paths(&g, s, t);
            assert_eq!(paths.len(), vertex_connectivity_st(&g, s, t));
            let mut seen = std::collections::HashSet::new();
            for p in &paths {
                assert_eq!(p[0], s);
                assert_eq!(*p.last().unwrap(), t);
                for w in p.windows(2) {
                    assert!(g.are_adjacent(w[0], w[1]), "path uses real edges");
                }
                for &v in &p[1..p.len() - 1] {
                    assert!(seen.insert(v), "internal node {v} reused");
                }
            }
        }
    }

    #[test]
    fn minimum_vertex_cut_separates() {
        let g = generators::grid(3, 3);
        let (s, t) = (NodeId::new(0), NodeId::new(8));
        let cut = minimum_vertex_cut(&g, s, t).expect("non-adjacent");
        assert_eq!(cut.len(), vertex_connectivity_st(&g, s, t));
        // Removing the cut must disconnect s from t.
        let mut b = crate::GraphBuilder::new(g.node_count());
        for (_, rec) in g.edges() {
            if !cut.contains(&rec.u) && !cut.contains(&rec.v) {
                b.add_edge(rec.u, rec.v).unwrap();
            }
        }
        let h = b.finish().unwrap();
        let reach = crate::traversal::bfs(&h, s);
        assert!(reach.dist[t.index()].is_none(), "cut must separate");
    }

    #[test]
    fn minimum_vertex_cut_rejects_adjacent_pairs() {
        let g = generators::cycle(5);
        assert!(minimum_vertex_cut(&g, NodeId::new(0), NodeId::new(1)).is_none());
        assert!(minimum_vertex_cut(&g, NodeId::new(0), NodeId::new(2)).is_some());
    }

    #[test]
    fn vertex_vs_edge_connectivity_differ() {
        // Two triangles sharing a node: edge connectivity 2 between the far
        // corners, but vertex connectivity 1 (the shared node cuts).
        let mut b = crate::GraphBuilder::new(5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.finish().unwrap();
        assert_eq!(max_flow_unit(&g, NodeId::new(0), NodeId::new(4)), 2);
        assert_eq!(
            vertex_connectivity_st(&g, NodeId::new(0), NodeId::new(4)),
            1
        );
    }
}
