//! Disjoint-set forest (union–find) with path compression and union by rank.
//!
//! Used by Kruskal's algorithm, the Borůvka merge history, and the spanning
//! forest checks inside the MST proof-labeling scheme.

/// A disjoint-set forest over `0..n`.
///
/// # Examples
///
/// ```
/// use rpls_graph::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0));          // already joined
/// assert_eq!(uf.set_count(), 2);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// The canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` lie in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn unions_reduce_set_count() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(uf.union(3, 4));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(2, 3));
        assert!(uf.union(2, 4));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }
}
