//! Cycle analysis: detection, girth, and exact longest-cycle search.
//!
//! The predicates of §5.3 — `cycle-at-least-c` and `cycle-at-most-c` — need
//! ground truth about the longest simple cycle. Longest cycle is NP-hard in
//! general (the paper leans on exactly this for `cycle-at-most-c`), so the
//! exact search here is a pruned backtracking intended for the moderate
//! instance sizes used in experiments; the generated families of
//! [`generators`](crate::generators) additionally have closed-form answers
//! the tests cross-check against.

use crate::{Graph, NodeId};

/// Whether `g` contains any cycle.
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, cycles};
/// assert!(!cycles::has_cycle(&generators::path(5)));
/// assert!(cycles::has_cycle(&generators::cycle(5)));
/// ```
#[must_use]
pub fn has_cycle(g: &Graph) -> bool {
    // A forest has m = n - (#components); anything more implies a cycle.
    let comps = crate::connectivity::components(g).len();
    g.edge_count() + comps > g.node_count()
}

/// Whether `g` is a forest (acyclic). The `acyclicity` predicate used inside
/// the Theorem 5.1 lower bound.
#[must_use]
pub fn is_forest(g: &Graph) -> bool {
    !has_cycle(g)
}

/// Length of the longest simple cycle of `g`, or `None` if the graph is
/// acyclic.
///
/// Exact exponential-time backtracking with the following pruning: cycles
/// are canonicalized to start at their minimum-index node, and the search
/// stops early when a Hamiltonian cycle is found.
///
/// # Panics
///
/// Panics if `g` has more than 128 nodes (the search would not finish on
/// dense instances anyway; use the family-specific ground truths for larger
/// ones).
#[must_use]
pub fn longest_cycle(g: &Graph) -> Option<usize> {
    longest_cycle_with_limit(g, g.node_count())
}

/// Like [`longest_cycle`] but stops as soon as a cycle of length at least
/// `target` is found, returning that cycle's length. Returns the longest
/// found overall if no cycle reaches `target`.
#[must_use]
pub fn longest_cycle_with_limit(g: &Graph, target: usize) -> Option<usize> {
    assert!(g.node_count() <= 128, "exact search limited to 128 nodes");
    let n = g.node_count();
    let mut best: Option<usize> = None;
    let mut on_path = vec![false; n];
    let mut path: Vec<NodeId> = Vec::new();

    fn dfs(
        g: &Graph,
        start: NodeId,
        v: NodeId,
        on_path: &mut [bool],
        path: &mut Vec<NodeId>,
        best: &mut Option<usize>,
        target: usize,
    ) -> bool {
        for nb in g.neighbors(v) {
            let w = nb.node;
            if w == start && path.len() >= 3 {
                let len = path.len();
                if best.is_none_or(|b| len > b) {
                    *best = Some(len);
                }
                if len >= target {
                    return true;
                }
            }
            // Canonical form: the start is the minimum node on the cycle.
            if w.index() <= start.index() || on_path[w.index()] {
                continue;
            }
            on_path[w.index()] = true;
            path.push(w);
            let done = dfs(g, start, w, on_path, path, best, target);
            path.pop();
            on_path[w.index()] = false;
            if done {
                return true;
            }
        }
        false
    }

    for start in g.nodes() {
        on_path[start.index()] = true;
        path.push(start);
        let done = dfs(g, start, start, &mut on_path, &mut path, &mut best, target);
        path.pop();
        on_path[start.index()] = false;
        if done {
            break;
        }
    }
    best
}

/// The `cycle-at-least-c` predicate: does `g` contain a simple cycle with at
/// least `c` nodes?
#[must_use]
pub fn has_cycle_at_least(g: &Graph, c: usize) -> bool {
    if c <= 2 {
        return has_cycle(g);
    }
    matches!(longest_cycle_with_limit(g, c), Some(len) if len >= c)
}

/// The `cycle-at-most-c` predicate: does every simple cycle of `g` have at
/// most `c` nodes?
#[must_use]
pub fn all_cycles_at_most(g: &Graph, c: usize) -> bool {
    !has_cycle_at_least(g, c + 1)
}

/// Girth (length of a shortest cycle), or `None` if acyclic. BFS from every
/// node; polynomial, so usable at any size.
#[must_use]
pub fn girth(g: &Graph) -> Option<usize> {
    let n = g.node_count();
    let mut best: Option<usize> = None;
    for start in g.nodes() {
        let mut dist = vec![usize::MAX; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for nb in g.neighbors(v) {
                let w = nb.node;
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    parent[w.index()] = Some(v);
                    queue.push_back(w);
                } else if parent[v.index()] != Some(w) {
                    let len = dist[v.index()] + dist[w.index()] + 1;
                    if best.is_none_or(|b| len < b) {
                        best = Some(len);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn forests_have_no_cycles() {
        assert!(is_forest(&generators::path(7)));
        assert!(is_forest(&generators::balanced_binary_tree(3)));
        assert_eq!(longest_cycle(&generators::path(7)), None);
        assert_eq!(girth(&generators::star(4)), None);
    }

    #[test]
    fn cycle_graph_longest_is_n() {
        for n in [3, 5, 8] {
            let g = generators::cycle(n);
            assert_eq!(longest_cycle(&g), Some(n));
            assert_eq!(girth(&g), Some(n));
            assert!(has_cycle_at_least(&g, n));
            assert!(!has_cycle_at_least(&g, n + 1));
            assert!(all_cycles_at_most(&g, n));
            assert!(!all_cycles_at_most(&g, n - 1));
        }
    }

    #[test]
    fn complete_graph_is_hamiltonian() {
        let g = generators::complete(7);
        assert_eq!(longest_cycle(&g), Some(7));
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn wheel_longest_cycle_is_the_rim() {
        // In the Figure 2 wheel, the rim is a Hamiltonian cycle.
        let g = generators::wheel(10);
        assert_eq!(longest_cycle(&g), Some(10));
    }

    #[test]
    fn wheel_with_tail_longest_cycle() {
        // Cycle part c=8 plus chords; chords from v0 can shortcut but not
        // extend beyond c, and tail nodes are pendant.
        let g = generators::wheel_with_tail(14, 8);
        assert_eq!(longest_cycle(&g), Some(8));
        assert!(has_cycle_at_least(&g, 8));
        assert!(!has_cycle_at_least(&g, 9));
    }

    #[test]
    fn chain_of_cycles_max_is_cycle_len() {
        let g = generators::chain_of_cycles(3, 6);
        assert_eq!(longest_cycle(&g), Some(6));
        assert!(all_cycles_at_most(&g, 6));
        assert!(!all_cycles_at_most(&g, 5));
    }

    #[test]
    fn girth_of_gadget_is_triangle() {
        let g = generators::symmetry_gadget(&[true, false, true]);
        assert_eq!(girth(&g), Some(3));
    }

    #[test]
    fn early_exit_limit_still_reports_some_cycle() {
        let g = generators::cycle(9);
        let len = longest_cycle_with_limit(&g, 3).unwrap();
        assert!(len >= 3);
    }

    #[test]
    fn has_cycle_at_least_small_c_degenerates_to_detection() {
        assert!(has_cycle_at_least(&generators::cycle(4), 2));
        assert!(!has_cycle_at_least(&generators::path(4), 2));
    }
}
