//! Subgraphs and the pairwise-independence condition of Definition 4.1.

use crate::{EdgeId, Graph, GraphError, NodeId};
use std::collections::BTreeSet;

/// An edge-induced subgraph of some host graph: a set of edges together with
/// the nodes they touch.
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, subgraph::Subgraph, EdgeId};
/// let g = generators::cycle(6);
/// let h = Subgraph::from_edges(&g, [EdgeId::new(0)]);
/// assert_eq!(h.node_count(), 2);
/// assert_eq!(h.edge_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subgraph {
    nodes: BTreeSet<NodeId>,
    edges: Vec<EdgeId>,
}

impl Subgraph {
    /// Builds the subgraph induced by the given host-graph edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge index is out of range for `g`.
    #[must_use]
    pub fn from_edges<I: IntoIterator<Item = EdgeId>>(g: &Graph, edges: I) -> Self {
        let mut nodes = BTreeSet::new();
        let mut list = Vec::new();
        for eid in edges {
            let rec = g.edge(eid);
            nodes.insert(rec.u);
            nodes.insert(rec.v);
            list.push(eid);
        }
        list.sort_unstable();
        list.dedup();
        Self { nodes, edges: list }
    }

    /// The nodes of the subgraph, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The edges of the subgraph, sorted by index.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `s`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether `v` belongs to the subgraph.
    #[must_use]
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Whether `e` belongs to the subgraph.
    #[must_use]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }
}

/// Checks Definition 4.1: `a` and `b` are *independent* in `g` iff their
/// node sets are disjoint and `g` has no edge with one endpoint in each.
///
/// # Errors
///
/// Returns [`GraphError::NotIndependent`] describing the violated condition.
pub fn check_independent(g: &Graph, a: &Subgraph, b: &Subgraph) -> Result<(), GraphError> {
    if let Some(shared) = a.nodes().find(|v| b.contains_node(*v)) {
        return Err(GraphError::NotIndependent {
            reason: format!("node {shared} belongs to both subgraphs"),
        });
    }
    for (_, rec) in g.edges() {
        let a_touch = a.contains_node(rec.u) || a.contains_node(rec.v);
        let b_touch = b.contains_node(rec.u) || b.contains_node(rec.v);
        if a_touch && b_touch {
            return Err(GraphError::NotIndependent {
                reason: format!("edge {{{}, {}}} connects the subgraphs", rec.u, rec.v),
            });
        }
    }
    Ok(())
}

/// Whether `a` and `b` are independent (Definition 4.1).
#[must_use]
pub fn are_independent(g: &Graph, a: &Subgraph, b: &Subgraph) -> bool {
    check_independent(g, a, b).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_edges_far_apart_are_independent() {
        let g = generators::cycle(9);
        // Cycle edges e0 = {0,1} and e4 = {4,5}: no shared nodes, and no
        // cycle edge joins {0,1} to {4,5}.
        let a = Subgraph::from_edges(&g, [EdgeId::new(0)]);
        let b = Subgraph::from_edges(&g, [EdgeId::new(4)]);
        assert!(are_independent(&g, &a, &b));
    }

    #[test]
    fn adjacent_edges_are_not_independent() {
        let g = generators::cycle(9);
        // e0 = {0,1} and e1 = {1,2} share node 1.
        let a = Subgraph::from_edges(&g, [EdgeId::new(0)]);
        let b = Subgraph::from_edges(&g, [EdgeId::new(1)]);
        let err = check_independent(&g, &a, &b).unwrap_err();
        assert!(matches!(err, GraphError::NotIndependent { .. }));
    }

    #[test]
    fn touching_edges_are_not_independent() {
        let g = generators::cycle(9);
        // e0 = {0,1} and e2 = {2,3}: the cycle edge {1,2} joins them.
        let a = Subgraph::from_edges(&g, [EdgeId::new(0)]);
        let b = Subgraph::from_edges(&g, [EdgeId::new(2)]);
        let err = check_independent(&g, &a, &b).unwrap_err();
        match err {
            GraphError::NotIndependent { reason } => {
                assert!(reason.contains("connects"), "reason: {reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn subgraph_membership_queries() {
        let g = generators::cycle(5);
        let h = Subgraph::from_edges(&g, [EdgeId::new(1), EdgeId::new(2)]);
        assert_eq!(h.node_count(), 3); // nodes 1, 2, 3
        assert!(h.contains_node(NodeId::new(2)));
        assert!(!h.contains_node(NodeId::new(0)));
        assert!(h.contains_edge(EdgeId::new(2)));
        assert!(!h.contains_edge(EdgeId::new(0)));
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = generators::cycle(5);
        let h = Subgraph::from_edges(&g, [EdgeId::new(1), EdgeId::new(1)]);
        assert_eq!(h.edge_count(), 1);
    }
}
