//! Index newtypes: nodes, edges and port numbers.

use std::fmt;

/// Structural index of a node within a [`Graph`](crate::Graph).
///
/// Node indices are dense (`0..n`) and purely structural: the *identity* a
/// node exposes to a proof-labeling scheme is part of its state, assigned by
/// the configuration layer, and need not coincide with this index.
///
/// # Examples
///
/// ```
/// use rpls_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("node index fits in u32"))
    }

    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Structural index of an undirected edge within a [`Graph`](crate::Graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("edge index fits in u32"))
    }

    /// The dense index of this edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A port number at one endpoint of an edge.
///
/// The paper numbers the edges incident to `v` in sequence `1, …, deg(v)`;
/// this type follows the same 1-based convention in its display form while
/// storing a 0-based rank internally (accessible via [`Port::rank`]).
///
/// # Examples
///
/// ```
/// use rpls_graph::Port;
/// let p = Port::from_rank(0);
/// assert_eq!(p.number(), 1);  // first port, numbered 1 as in the paper
/// assert_eq!(p.rank(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Port(u32);

impl Port {
    /// Creates a port from its 0-based rank in the neighbor list.
    #[must_use]
    pub fn from_rank(rank: usize) -> Self {
        Self(u32::try_from(rank).expect("port rank fits in u32"))
    }

    /// Creates a port from the paper's 1-based numbering.
    ///
    /// # Panics
    ///
    /// Panics if `number` is 0.
    #[must_use]
    pub fn from_number(number: usize) -> Self {
        assert!(number >= 1, "port numbers are 1-based");
        Self::from_rank(number - 1)
    }

    /// 0-based rank within the node's neighbor list.
    #[must_use]
    pub fn rank(self) -> usize {
        self.0 as usize
    }

    /// 1-based port number as in the paper (`1..=deg(v)`).
    #[must_use]
    pub fn number(self) -> usize {
        self.0 as usize + 1
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let v = NodeId::new(17);
        assert_eq!(v.index(), 17);
        assert_eq!(NodeId::from(17usize), v);
    }

    #[test]
    fn port_numbering_conventions() {
        assert_eq!(Port::from_rank(2).number(), 3);
        assert_eq!(Port::from_number(3).rank(), 2);
        assert_eq!(Port::from_number(1), Port::from_rank(0));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn port_number_zero_panics() {
        let _ = Port::from_number(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::new(4).to_string(), "v4");
        assert_eq!(EdgeId::new(9).to_string(), "e9");
        assert_eq!(Port::from_rank(0).to_string(), "port1");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Port::from_rank(0) < Port::from_rank(1));
    }
}
