//! Graph isomorphism testing and the `Sym` predicate of Appendix C.
//!
//! The symmetry predicate — “there is an edge whose removal splits the graph
//! into two isomorphic components” — is what Lemma C.1 uses to encode
//! 2-party equality into a network predicate. Isomorphism is decided by
//! backtracking with degree-sequence pruning, adequate for the gadget sizes
//! (`2λ + 3` nodes per side) the reduction generates.

use crate::{EdgeId, Graph, NodeId};

/// Whether `g1` and `g2` are isomorphic (as unlabeled graphs, ignoring ports
/// and weights).
///
/// Backtracking with degree pruning; exponential worst case, intended for
/// the small gadget graphs of the Lemma C.1 reduction.
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, isomorphism};
/// let a = generators::cycle(5);
/// let b = generators::cycle(5);
/// assert!(isomorphism::are_isomorphic(&a, &b));
/// let p = generators::path(5);
/// assert!(!isomorphism::are_isomorphic(&a, &p));
/// ```
#[must_use]
pub fn are_isomorphic(g1: &Graph, g2: &Graph) -> bool {
    let n = g1.node_count();
    if n != g2.node_count() || g1.edge_count() != g2.edge_count() {
        return false;
    }
    if n == 0 {
        return true;
    }
    let mut deg1: Vec<usize> = g1.nodes().map(|v| g1.degree(v)).collect();
    let mut deg2: Vec<usize> = g2.nodes().map(|v| g2.degree(v)).collect();
    {
        let mut s1 = deg1.clone();
        let mut s2 = deg2.clone();
        s1.sort_unstable();
        s2.sort_unstable();
        if s1 != s2 {
            return false;
        }
    }
    // Order g1's nodes by descending degree to fail fast on constrained
    // nodes.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(deg1[v]));

    let adj1 = adjacency_sets(g1);
    let adj2 = adjacency_sets(g2);
    let mut mapping: Vec<Option<usize>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];
    backtrack(
        0,
        &order,
        &adj1,
        &adj2,
        &mut deg1,
        &mut deg2,
        &mut mapping,
        &mut used,
    )
}

fn adjacency_sets(g: &Graph) -> Vec<Vec<usize>> {
    g.nodes()
        .map(|v| {
            let mut nb: Vec<usize> = g.neighbors(v).map(|x| x.node.index()).collect();
            nb.sort_unstable();
            nb
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    depth: usize,
    order: &[usize],
    adj1: &[Vec<usize>],
    adj2: &[Vec<usize>],
    deg1: &mut [usize],
    deg2: &mut [usize],
    mapping: &mut [Option<usize>],
    used: &mut [bool],
) -> bool {
    if depth == order.len() {
        return true;
    }
    let v = order[depth];
    'candidates: for w in 0..adj2.len() {
        if used[w] || deg1[v] != deg2[w] {
            continue;
        }
        // Every already-mapped neighbor of v must map to a neighbor of w,
        // and every already-mapped non-neighbor must not.
        for &u in &adj1[v] {
            if let Some(mu) = mapping[u] {
                if adj2[w].binary_search(&mu).is_err() {
                    continue 'candidates;
                }
            }
        }
        // Count check in the other direction: mapped neighbors of w must be
        // images of neighbors of v.
        let mapped_nb_v = adj1[v].iter().filter(|&&u| mapping[u].is_some()).count();
        let mapped_nb_w = adj2[w].iter().filter(|&&u| used[u]).count();
        if mapped_nb_v != mapped_nb_w {
            continue;
        }
        mapping[v] = Some(w);
        used[w] = true;
        if backtrack(depth + 1, order, adj1, adj2, deg1, deg2, mapping, used) {
            return true;
        }
        mapping[v] = None;
        used[w] = false;
    }
    false
}

/// Extracts the subgraph induced by `nodes` as a standalone graph (node `i`
/// of the result is `nodes[i]`); ports are reassigned in edge order.
#[must_use]
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Graph {
    let mut index_of = std::collections::HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        index_of.insert(v, i);
    }
    let mut b = crate::GraphBuilder::new(nodes.len());
    for (_, rec) in g.edges() {
        if let (Some(&iu), Some(&iv)) = (index_of.get(&rec.u), index_of.get(&rec.v)) {
            b.add_edge(iu, iv).expect("induced edges are simple");
        }
    }
    b.finish().expect("auto ports are contiguous")
}

/// The `Sym` predicate of Appendix C: `g` is *symmetric* iff there exists an
/// edge `e` such that `g − e` consists of exactly two connected components
/// that are isomorphic.
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, isomorphism};
/// let z = [true, false, true];
/// assert!(isomorphism::is_symmetric(&generators::symmetry_pair(&z, &z)));
/// let z2 = [false, false, true];
/// assert!(!isomorphism::is_symmetric(&generators::symmetry_pair(&z, &z2)));
/// ```
#[must_use]
pub fn is_symmetric(g: &Graph) -> bool {
    g.edges().any(|(eid, _)| splits_symmetrically(g, eid))
}

/// Whether removing `edge` leaves exactly two isomorphic components.
#[must_use]
pub fn splits_symmetrically(g: &Graph, edge: EdgeId) -> bool {
    let records: Vec<crate::EdgeRecord> = g
        .edges()
        .filter(|&(eid, _)| eid != edge)
        .map(|(_, r)| *r)
        .collect();
    // Rebuild without port validation concerns by using auto ports.
    let mut b = crate::GraphBuilder::new(g.node_count());
    for rec in &records {
        b.add_edge(rec.u, rec.v).expect("subset of simple edges");
    }
    let without = b.finish().expect("auto ports are contiguous");
    let comps = crate::connectivity::components(&without);
    if comps.len() != 2 || comps[0].len() != comps[1].len() {
        return false;
    }
    let a = induced_subgraph(&without, &comps[0]);
    let b = induced_subgraph(&without, &comps[1]);
    are_isomorphic(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn isomorphic_to_self_and_relabeling() {
        let g = generators::wheel(8);
        assert!(are_isomorphic(&g, &g));
    }

    #[test]
    fn different_degree_sequences_fail_fast() {
        let a = generators::star(4);
        let b = generators::path(5);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn same_degree_sequence_different_structure() {
        // C6 vs two triangles: both 2-regular on 6 nodes, not isomorphic.
        let c6 = generators::cycle(6);
        let mut b = crate::GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v).unwrap();
        }
        let tri2 = b.finish().unwrap();
        assert!(!are_isomorphic(&c6, &tri2));
    }

    #[test]
    fn claim_c2_equal_strings_give_symmetric_pairs() {
        // Exhaustive over λ = 3: G(z, z') symmetric iff z = z'.
        for z_bits in 0u8..8 {
            for z2_bits in 0u8..8 {
                let z: Vec<bool> = (0..3).map(|i| z_bits >> i & 1 == 1).collect();
                let z2: Vec<bool> = (0..3).map(|i| z2_bits >> i & 1 == 1).collect();
                let g = generators::symmetry_pair(&z, &z2);
                assert_eq!(is_symmetric(&g), z == z2, "z={z_bits:03b} z'={z2_bits:03b}");
            }
        }
    }

    #[test]
    fn gadgets_isomorphic_iff_equal_strings() {
        // Claim C.2's core: G(z) ≅ G(z') iff z = z', exhaustive for λ = 4.
        for a in 0u8..16 {
            for b in 0u8..16 {
                let z: Vec<bool> = (0..4).map(|i| a >> i & 1 == 1).collect();
                let z2: Vec<bool> = (0..4).map(|i| b >> i & 1 == 1).collect();
                let iso = are_isomorphic(
                    &generators::symmetry_gadget(&z),
                    &generators::symmetry_gadget(&z2),
                );
                assert_eq!(iso, a == b, "a={a:04b} b={b:04b}");
            }
        }
    }

    #[test]
    fn splitting_edge_is_the_bridge() {
        let z = [true, true, false];
        let g = generators::symmetry_pair(&z, &z);
        let bridge = generators::symmetry_pair_bridge(&g, z.len());
        assert!(splits_symmetrically(&g, bridge));
        // The triangle edges certainly do not split the graph.
        let non_bridge = g
            .edges()
            .find(|&(eid, _)| eid != bridge && !splits_symmetrically(&g, eid))
            .map(|(eid, _)| eid);
        assert!(non_bridge.is_some());
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let g = generators::cycle(6);
        let sub = induced_subgraph(&g, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        // Path 0-1-2 survives; the closing edges leave the node set.
        assert_eq!(sub.edge_count(), 2);
    }
}
