//! Connectivity, components, articulation points and biconnectivity.
//!
//! Vertex biconnectivity (`v2con` in the paper, §5.2) is decided here by
//! Tarjan's articulation-point criterion on the DFS lowpoints, which is the
//! same structure the Appendix E proof labels certify.

use crate::traversal::{self, DfsTree};
use crate::{Graph, NodeId};

/// Whether `g` is connected. The empty graph counts as connected; a graph
/// with isolated nodes does not.
///
/// # Examples
///
/// ```
/// use rpls_graph::generators;
/// assert!(rpls_graph::connectivity::is_connected(&generators::cycle(5)));
/// ```
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    traversal::bfs(g, NodeId::new(0)).reached_count() == g.node_count()
}

/// The connected components of `g`, each a sorted list of nodes.
#[must_use]
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut comp: Vec<Option<usize>> = vec![None; n];
    let mut out: Vec<Vec<NodeId>> = Vec::new();
    for start in g.nodes() {
        if comp[start.index()].is_some() {
            continue;
        }
        let idx = out.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        comp[start.index()] = Some(idx);
        while let Some(v) = stack.pop() {
            members.push(v);
            for nb in g.neighbors(v) {
                if comp[nb.node.index()].is_none() {
                    comp[nb.node.index()] = Some(idx);
                    stack.push(nb.node);
                }
            }
        }
        members.sort_unstable();
        out.push(members);
    }
    out
}

/// The articulation points (cut vertices) of a connected graph, via Tarjan's
/// lowpoint criterion: a non-root `v` is an articulation point iff some DFS
/// child `u` has `lowpt(u) ≥ preorder(v)`; the root is one iff it has at
/// least two DFS children.
///
/// Nodes are returned sorted. For a disconnected graph the result covers
/// each component independently.
#[must_use]
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut is_art = vec![false; n];
    let mut visited = vec![false; n];
    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        let t = traversal::dfs(g, start);
        mark_articulation(&t, &mut is_art);
        for v in &t.order {
            visited[v.index()] = true;
        }
    }
    (0..n).filter(|&i| is_art[i]).map(NodeId::new).collect()
}

fn mark_articulation(t: &DfsTree, is_art: &mut [bool]) {
    let mut root_children = 0usize;
    for &v in &t.order {
        let Some(p) = t.parent[v.index()] else {
            continue;
        };
        if p == t.root {
            root_children += 1;
        }
        // Non-root parent p is an articulation point if lowpt(v) >= preo(p).
        if t.parent[p.index()].is_some() {
            let lv = t.lowpt[v.index()].expect("visited");
            let pp = t.preorder[p.index()].expect("visited");
            if lv >= pp {
                is_art[p.index()] = true;
            }
        }
    }
    if root_children >= 2 {
        is_art[t.root.index()] = true;
    }
}

/// Whether `g` is vertex-biconnected: connected, at least 3 nodes, and the
/// removal of any single node leaves it connected (the predicate `v2con` of
/// Theorem 5.2).
///
/// A single edge `K₂` is *not* biconnected under this definition (removing
/// one endpoint leaves a single node, which is connected, but the standard
/// convention — and the one the paper's wheel construction relies on — is
/// that biconnectivity requires no articulation points **and** |V| ≥ 3).
///
/// # Examples
///
/// ```
/// use rpls_graph::{generators, connectivity};
/// assert!(connectivity::is_biconnected(&generators::cycle(4)));
/// assert!(!connectivity::is_biconnected(&generators::path(4)));
/// ```
#[must_use]
pub fn is_biconnected(g: &Graph) -> bool {
    g.node_count() >= 3 && is_connected(g) && articulation_points(g).is_empty()
}

/// The bridges (cut edges) of `g`: edges `{v, parent(v)}` with
/// `lowpt(v) > preorder(parent(v))`, plus the analogous condition per
/// component. Returned as sorted `(min, max)` index pairs.
#[must_use]
pub fn bridges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut out = Vec::new();
    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        let t = traversal::dfs(g, start);
        for &v in &t.order {
            visited[v.index()] = true;
            if let Some(p) = t.parent[v.index()] {
                let lv = t.lowpt[v.index()].expect("visited");
                let pp = t.preorder[p.index()].expect("visited");
                if lv > pp {
                    let (a, b) = if p < v { (p, v) } else { (v, p) };
                    out.push((a, b));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycle_is_connected_and_biconnected() {
        let g = generators::cycle(6);
        assert!(is_connected(&g));
        assert!(is_biconnected(&g));
        assert!(articulation_points(&g).is_empty());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn path_interior_nodes_are_articulation_points() {
        let g = generators::path(5);
        let arts = articulation_points(&g);
        assert_eq!(arts, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn every_path_edge_is_a_bridge() {
        let g = generators::path(4);
        assert_eq!(bridges(&g).len(), 3);
    }

    #[test]
    fn star_center_is_the_only_articulation_point() {
        let g = generators::star(5);
        assert_eq!(articulation_points(&g), vec![NodeId::new(0)]);
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        // 0-1-2-0 and 2-3-4-2: node 2 is the unique articulation point.
        let mut b = crate::GraphBuilder::new(5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.finish().unwrap();
        assert!(is_connected(&g));
        assert_eq!(articulation_points(&g), vec![NodeId::new(2)]);
        assert!(!is_biconnected(&g));
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn components_partition_nodes() {
        let mut b = crate::GraphBuilder::new(6);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        b.add_edge(3, 4).unwrap();
        let g = b.finish().unwrap();
        let comps = components(&g);
        assert_eq!(comps.len(), 3); // {0,1}, {2,3,4}, {5}
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(!is_connected(&g));
    }

    #[test]
    fn complete_graph_is_biconnected() {
        let g = generators::complete(5);
        assert!(is_biconnected(&g));
    }

    #[test]
    fn k2_is_not_biconnected() {
        let g = generators::path(2);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn wheel_is_biconnected() {
        // The Figure 2 graph: a cycle plus chords from v0 — biconnected.
        let g = generators::wheel(8);
        assert!(is_biconnected(&g));
    }
}
