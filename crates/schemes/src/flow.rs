//! The k-flow problem (§5.2 remark): is the maximum s–t flow exactly `k`?
//!
//! The deterministic scheme follows the `O(k log n)` construction of
//! Korman–Kutten–Peleg: the label carries a decomposition of the flow into
//! `k` edge-disjoint paths (per used incident edge: which path, which
//! direction) **plus** a min-cut side bit. The verifier checks
//! per-path flow conservation (source +1, sink −1, everyone else 0),
//! edge-wise agreement between endpoints, and cut consistency: every
//! cut-crossing edge carries exactly one path, forward — which makes the
//! number of cut edges equal `k` and pins the max flow from both sides
//! (Menger / max-flow–min-cut).
//!
//! Compiling the scheme (Theorem 3.1) yields the `O(log k + log log n)`
//! certificates the paper notes at the end of §5.2.

use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::{flow as graph_flow, NodeId};

const ID_BITS: u32 = 64;
const K_BITS: u32 = 16;

/// The k-flow predicate: the maximum flow between the nodes carrying the
/// two distinguished identities is exactly `k`.
#[derive(Debug, Clone, Copy)]
pub struct FlowPredicate {
    /// Identity of the source node.
    pub source_id: u64,
    /// Identity of the sink node.
    pub sink_id: u64,
    /// The required flow value.
    pub k: usize,
}

impl FlowPredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new(source_id: u64, sink_id: u64, k: usize) -> Self {
        Self {
            source_id,
            sink_id,
            k,
        }
    }
}

impl Predicate for FlowPredicate {
    fn name(&self) -> String {
        format!("{}-flow", self.k)
    }

    fn holds(&self, config: &Configuration) -> bool {
        let (Some(s), Some(t)) = (
            config.node_with_id(self.source_id),
            config.node_with_id(self.sink_id),
        ) else {
            return false;
        };
        s != t && graph_flow::max_flow_unit(config.graph(), s, t) == self.k
    }
}

/// One used incident edge in a label: the far endpoint's identity, the path
/// using the edge, and whether it leaves this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlowEntry {
    neighbor_id: u64,
    path: u64,
    outgoing: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FlowLabel {
    id: u64,
    k: u64,
    on_source_side: bool,
    entries: Vec<FlowEntry>,
}

impl FlowLabel {
    fn encode(&self) -> BitString {
        let mut w = BitWriter::new();
        w.write_u64(self.id, ID_BITS);
        w.write_u64(self.k, K_BITS);
        w.write_bool(self.on_source_side);
        w.write_u64(self.entries.len() as u64, K_BITS);
        for e in &self.entries {
            w.write_u64(e.neighbor_id, ID_BITS);
            w.write_u64(e.path, K_BITS);
            w.write_bool(e.outgoing);
        }
        w.finish()
    }

    fn decode(bits: &BitString) -> Option<Self> {
        let mut r = BitReader::new(bits);
        let id = r.read_u64(ID_BITS).ok()?;
        let k = r.read_u64(K_BITS).ok()?;
        let on_source_side = r.read_bool().ok()?;
        let count = r.read_u64(K_BITS).ok()? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(FlowEntry {
                neighbor_id: r.read_u64(ID_BITS).ok()?,
                path: r.read_u64(K_BITS).ok()?,
                outgoing: r.read_bool().ok()?,
            });
        }
        r.is_exhausted().then_some(Self {
            id,
            k,
            on_source_side,
            entries,
        })
    }
}

/// The `O(k log n)` deterministic k-flow scheme.
#[derive(Debug, Clone, Copy)]
pub struct FlowPls {
    predicate: FlowPredicate,
}

impl FlowPls {
    /// The scheme certifying [`FlowPredicate`].
    #[must_use]
    pub fn new(predicate: FlowPredicate) -> Self {
        Self { predicate }
    }
}

impl Pls for FlowPls {
    fn name(&self) -> String {
        format!("{}-flow", self.predicate.k)
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let g = config.graph();
        let s = config
            .node_with_id(self.predicate.source_id)
            .expect("source exists");
        let t = config
            .node_with_id(self.predicate.sink_id)
            .expect("sink exists");
        let paths = graph_flow::edge_disjoint_paths(g, s, t);
        assert_eq!(paths.len(), self.predicate.k, "legal configuration");

        // Directed usage per edge: path id and direction.
        let mut usage: std::collections::HashMap<usize, (u64, NodeId)> =
            std::collections::HashMap::new();
        for (p, path) in paths.iter().enumerate() {
            for w in path.windows(2) {
                let eid = g.edge_between(w[0], w[1]).expect("path edge");
                usage.insert(eid.index(), (p as u64, w[0]));
            }
        }
        // Min-cut side: nodes reachable from s in the residual graph.
        let mut side = vec![false; g.node_count()];
        side[s.index()] = true;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for nb in g.neighbors(v) {
                if side[nb.node.index()] {
                    continue;
                }
                let traversable = match usage.get(&nb.edge.index()) {
                    None => true,                  // unused: both ways
                    Some(&(_, from)) => from != v, // used: only backwards
                };
                if traversable {
                    side[nb.node.index()] = true;
                    queue.push_back(nb.node);
                }
            }
        }
        assert!(!side[t.index()], "max flow leaves no augmenting path");

        g.nodes()
            .map(|v| {
                let entries = g
                    .neighbors(v)
                    .filter_map(|nb| {
                        usage.get(&nb.edge.index()).map(|&(p, from)| FlowEntry {
                            neighbor_id: config.state(nb.node).id(),
                            path: p,
                            outgoing: from == v,
                        })
                    })
                    .collect();
                FlowLabel {
                    id: config.state(v).id(),
                    k: self.predicate.k as u64,
                    on_source_side: side[v.index()],
                    entries,
                }
                .encode()
            })
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some(own) = FlowLabel::decode(view.label) else {
            return false;
        };
        let my_id = view.local.state.id();
        if own.id != my_id || own.k != self.predicate.k as u64 {
            return false;
        }
        let mut neighbors = Vec::with_capacity(view.neighbor_labels.len());
        for l in &view.neighbor_labels {
            let Some(nl) = FlowLabel::decode(l) else {
                return false;
            };
            if nl.k != own.k {
                return false;
            }
            neighbors.push(nl);
        }
        // The claimed neighbor ids must be unambiguous.
        {
            let mut ids: Vec<u64> = neighbors.iter().map(|nl| nl.id).collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() != neighbors.len() {
                return false;
            }
        }
        let is_source = my_id == self.predicate.source_id;
        let is_sink = my_id == self.predicate.sink_id;
        if is_source && !own.on_source_side {
            return false;
        }
        if is_sink && own.on_source_side {
            return false;
        }

        // Each entry maps to a distinct incident edge, mirrored by the far
        // endpoint; cut edges carry exactly one forward path.
        let mut used_ports = std::collections::HashSet::new();
        let mut per_path: std::collections::HashMap<u64, (usize, usize)> =
            std::collections::HashMap::new();
        for e in &own.entries {
            if e.path >= own.k {
                return false;
            }
            let Some(port) = neighbors.iter().position(|nl| nl.id == e.neighbor_id) else {
                return false;
            };
            if !used_ports.insert(port) {
                return false; // two paths on one edge
            }
            // Mirror entry at the neighbor.
            let mirror = neighbors[port]
                .entries
                .iter()
                .find(|m| m.neighbor_id == my_id);
            let Some(mirror) = mirror else {
                return false;
            };
            if mirror.path != e.path || mirror.outgoing == e.outgoing {
                return false;
            }
            // Cut crossing must be forward (source side → sink side).
            let nb_side = neighbors[port].on_source_side;
            if own.on_source_side != nb_side {
                let forward = own.on_source_side == e.outgoing;
                if !forward {
                    return false;
                }
            }
            let slot = per_path.entry(e.path).or_insert((0, 0));
            if e.outgoing {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
        // Every cut edge must carry a path.
        for (port, nl) in neighbors.iter().enumerate() {
            if nl.on_source_side != own.on_source_side && !used_ports.contains(&port) {
                return false;
            }
        }
        // Conservation per path.
        if is_source || is_sink {
            for p in 0..own.k {
                let &(out, inn) = per_path.get(&p).unwrap_or(&(0, 0));
                let ok = if is_source {
                    out == 1 && inn == 0
                } else {
                    out == 0 && inn == 1
                };
                if !ok {
                    return false;
                }
            }
            true
        } else {
            per_path.values().all(|&(out, inn)| out == inn && out <= 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_core::{CompiledRpls, Rpls};
    use rpls_graph::generators;

    #[test]
    fn predicate_counts_disjoint_paths() {
        let c = Configuration::plain(generators::cycle(8));
        assert!(FlowPredicate::new(0, 4, 2).holds(&c));
        assert!(!FlowPredicate::new(0, 4, 3).holds(&c));
        assert!(!FlowPredicate::new(0, 4, 1).holds(&c));
        assert!(!FlowPredicate::new(0, 99, 2).holds(&c)); // missing sink
    }

    #[test]
    fn honest_labels_accepted() {
        for (g, s, t, k) in [
            (generators::cycle(8), 0usize, 4usize, 2usize),
            (generators::complete(6), 0, 5, 5),
            (generators::grid(3, 3), 0, 8, 2),
            (generators::path(5), 0, 4, 1),
        ] {
            let c = Configuration::plain(g);
            let scheme = FlowPls::new(FlowPredicate::new(s as u64, t as u64, k));
            let labeling = scheme.label(&c);
            let out = engine::run_deterministic(&scheme, &c, &labeling);
            assert!(out.accepted(), "k={k}: {:?}", out.rejecting_nodes());
        }
    }

    #[test]
    fn wrong_k_cannot_be_certified() {
        // Claim 3 on a cycle (true max flow 2): forging must fail.
        let c = Configuration::plain(generators::cycle(6));
        let scheme = FlowPls::new(FlowPredicate::new(0, 3, 3));
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let report = rpls_core::adversary::random_forge(&scheme, &c, 60, 25, 300, &mut rng);
        assert!(!report.succeeded());
    }

    #[test]
    fn under_claiming_also_fails() {
        // Claim 1 on a cycle (max flow 2): the cut side bits cannot avoid a
        // second crossing edge.
        let c = Configuration::plain(generators::cycle(6));
        let scheme = FlowPls::new(FlowPredicate::new(0, 3, 1));
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let report = rpls_core::adversary::random_forge(&scheme, &c, 60, 25, 300, &mut rng);
        assert!(!report.succeeded());
    }

    #[test]
    fn tampered_path_id_rejected() {
        let c = Configuration::plain(generators::cycle(6));
        let scheme = FlowPls::new(FlowPredicate::new(0, 3, 2));
        let mut labeling = scheme.label(&c);
        let mut lbl = FlowLabel::decode(labeling.get(NodeId::new(1))).unwrap();
        if let Some(e) = lbl.entries.first_mut() {
            e.path = 1 - e.path;
        }
        labeling.set(NodeId::new(1), lbl.encode());
        assert!(!engine::run_deterministic(&scheme, &c, &labeling).accepted());
    }

    #[test]
    fn label_size_scales_with_k_not_n() {
        // K6 between adjacent nodes: k = 5; path(64): k = 1.
        let big_k = FlowPls::new(FlowPredicate::new(0, 5, 5))
            .label(&Configuration::plain(generators::complete(6)))
            .max_bits();
        let small_k = FlowPls::new(FlowPredicate::new(0, 63, 1))
            .label(&Configuration::plain(generators::path(64)))
            .max_bits();
        assert!(big_k > small_k);
    }

    #[test]
    fn compiled_flow_certificates() {
        let c = Configuration::plain(generators::complete(6));
        let scheme = CompiledRpls::new(FlowPls::new(FlowPredicate::new(0, 5, 5)));
        let labeling = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 3);
        assert!(rec.outcome.accepted());
        assert!(rec.max_certificate_bits() <= 24);
    }

    #[test]
    fn label_round_trip() {
        let l = FlowLabel {
            id: 7,
            k: 3,
            on_source_side: true,
            entries: vec![FlowEntry {
                neighbor_id: 9,
                path: 2,
                outgoing: false,
            }],
        };
        assert_eq!(FlowLabel::decode(&l.encode()), Some(l));
        assert!(FlowLabel::decode(&BitString::zeros(3)).is_none());
    }
}
