//! The introduction's example: certifying that parent pointers form a
//! spanning tree.
//!
//! Every node's state carries `p(v)` — the port of its parent, or a root
//! flag. The prover labels each node with the certificate `(id(r), d(v))`:
//! the root's identity and the node's tree distance to the root. The
//! verifier checks that all neighbors agree on `id(r)`, that
//! `d(p(v)) = d(v) − 1`, and that the root has `d(r) = 0` — exactly the
//! procedure described in §1 of the paper.

use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::{traversal, NodeId, Port};

/// Width of the distance field in labels (enough for any `n < 2^32`).
const DIST_BITS: u32 = 32;
/// Width of the identity field in labels.
const ID_BITS: u32 = 64;

/// Writes the parent-pointer payload: a root flag, then the parent port if
/// not root.
#[must_use]
pub fn encode_pointer(parent_port: Option<Port>) -> BitString {
    let mut w = BitWriter::new();
    match parent_port {
        None => {
            w.write_bool(true);
        }
        Some(p) => {
            w.write_bool(false);
            w.write_u64(p.rank() as u64, 16);
        }
    }
    w.finish()
}

/// Reads a parent-pointer payload back.
#[must_use]
pub fn decode_pointer(bits: &BitString) -> Option<Option<Port>> {
    let mut r = BitReader::new(bits);
    let is_root = r.read_bool().ok()?;
    if is_root {
        r.is_exhausted().then_some(None)
    } else {
        let port = r.read_u64(16).ok()? as usize;
        r.is_exhausted().then_some(Some(Port::from_rank(port)))
    }
}

/// Builds a legal workload: installs the parent pointers of a BFS tree
/// rooted at `root` into the configuration's payloads.
///
/// # Panics
///
/// Panics if the graph is disconnected.
#[must_use]
pub fn spanning_tree_config(config: &Configuration, root: NodeId) -> Configuration {
    let bfs = traversal::bfs(config.graph(), root);
    assert_eq!(
        bfs.reached_count(),
        config.node_count(),
        "graph must be connected"
    );
    let mut out = config.clone();
    for v in config.graph().nodes() {
        let pointer = bfs.parent[v.index()].map(|p| {
            config
                .graph()
                .neighbors(v)
                .find(|nb| nb.node == p)
                .expect("parent is a neighbor")
                .port
        });
        out.state_mut(v).set_payload(encode_pointer(pointer));
    }
    out
}

/// The spanning-tree predicate: the parent pointers stored in the payloads
/// form a spanning tree of the graph (exactly one root; every other node
/// points at a neighbor; following pointers reaches the root from
/// everywhere with no cycles).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanningTreePredicate;

impl SpanningTreePredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Predicate for SpanningTreePredicate {
    fn name(&self) -> String {
        "spanning-tree".into()
    }

    fn holds(&self, config: &Configuration) -> bool {
        let g = config.graph();
        let n = g.node_count();
        let mut parent = vec![None; n];
        let mut root = None;
        for v in g.nodes() {
            match decode_pointer(config.state(v).payload()) {
                Some(None) => {
                    if root.replace(v).is_some() {
                        return false; // two roots
                    }
                }
                Some(Some(port)) => match g.neighbor_by_port(v, port) {
                    Some(nb) => parent[v.index()] = Some(nb.node),
                    None => return false, // dangling port
                },
                None => return false, // malformed payload
            }
        }
        let Some(root) = root else {
            return false;
        };
        // Every node must reach the root without cycles.
        for v in g.nodes() {
            let mut seen = 0usize;
            let mut cur = v;
            while cur != root {
                let Some(p) = parent[cur.index()] else {
                    return false;
                };
                cur = p;
                seen += 1;
                if seen > n {
                    return false; // pointer cycle
                }
            }
        }
        true
    }
}

/// The §1 deterministic scheme: label `(id(r), d(v))`, verification
/// complexity Θ(log n).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanningTreePls;

impl SpanningTreePls {
    /// Creates the scheme.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

fn encode_label(root_id: u64, dist: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(root_id, ID_BITS);
    w.write_u64(dist, DIST_BITS);
    w.finish()
}

fn decode_label(bits: &BitString) -> Option<(u64, u64)> {
    let mut r = BitReader::new(bits);
    let root_id = r.read_u64(ID_BITS).ok()?;
    let dist = r.read_u64(DIST_BITS).ok()?;
    r.is_exhausted().then_some((root_id, dist))
}

impl Pls for SpanningTreePls {
    fn name(&self) -> String {
        "spanning-tree".into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        // Follow the pointers to find the root and the tree distances.
        let g = config.graph();
        let n = g.node_count();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut root = NodeId::new(0);
        for v in g.nodes() {
            match decode_pointer(config.state(v).payload()) {
                Some(None) => root = v,
                Some(Some(port)) => {
                    parent[v.index()] = g.neighbor_by_port(v, port).map(|nb| nb.node);
                }
                None => {}
            }
        }
        let root_id = config.state(root).id();
        let mut dist = vec![u64::MAX; n];
        dist[root.index()] = 0;
        for v in g.nodes() {
            // Walk up until a known distance, then write back.
            let mut chain = Vec::new();
            let mut cur = v;
            while dist[cur.index()] == u64::MAX {
                chain.push(cur);
                cur = parent[cur.index()].expect("legal configuration");
            }
            let mut d = dist[cur.index()];
            for &u in chain.iter().rev() {
                d += 1;
                dist[u.index()] = d;
            }
        }
        (0..n).map(|v| encode_label(root_id, dist[v])).collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some((root_id, dist)) = decode_label(view.label) else {
            return false;
        };
        // All neighbors must agree on the root identity, and carry parseable
        // labels.
        let mut neighbor_dists = Vec::with_capacity(view.neighbor_labels.len());
        for l in &view.neighbor_labels {
            let Some((rid, d)) = decode_label(l) else {
                return false;
            };
            if rid != root_id {
                return false;
            }
            neighbor_dists.push(d);
        }
        match decode_pointer(view.local.state.payload()) {
            Some(None) => {
                // Root: checks d(r) = 0 and that it really owns id(r).
                dist == 0 && view.local.state.id() == root_id
            }
            Some(Some(port)) => {
                // Non-root: d(p(v)) = d(v) − 1 (also forces d(v) ≥ 1).
                let Some(&pd) = neighbor_dists.get(port.rank()) else {
                    return false;
                };
                dist >= 1 && pd == dist - 1 && view.local.state.id() != root_id
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_core::CompiledRpls;
    use rpls_graph::generators;

    fn legal_config(n: usize) -> Configuration {
        let base = Configuration::plain(generators::gnp_connected(n, 0.2, &mut rand_rng(n as u64)));
        spanning_tree_config(&base, NodeId::new(0))
    }

    fn rand_rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn predicate_accepts_bfs_pointers() {
        let c = legal_config(20);
        assert!(SpanningTreePredicate.holds(&c));
    }

    #[test]
    fn predicate_rejects_pointer_cycle() {
        // Two nodes pointing at each other plus no root.
        let g = generators::path(3);
        let mut c = Configuration::plain(g);
        // 0 -> 1, 1 -> 0, 2 -> 1: cycle between 0 and 1, no root.
        c.state_mut(NodeId::new(0))
            .set_payload(encode_pointer(Some(Port::from_rank(0))));
        c.state_mut(NodeId::new(1))
            .set_payload(encode_pointer(Some(Port::from_rank(1))));
        c.state_mut(NodeId::new(2))
            .set_payload(encode_pointer(Some(Port::from_rank(0))));
        assert!(!SpanningTreePredicate.holds(&c));
    }

    #[test]
    fn predicate_rejects_two_roots() {
        let g = generators::path(2);
        let mut c = Configuration::plain(g);
        c.state_mut(NodeId::new(0))
            .set_payload(encode_pointer(None));
        c.state_mut(NodeId::new(1))
            .set_payload(encode_pointer(None));
        assert!(!SpanningTreePredicate.holds(&c));
    }

    #[test]
    fn honest_labels_accepted_everywhere() {
        for n in [2usize, 5, 12, 30] {
            let c = legal_config(n);
            let labeling = SpanningTreePls.label(&c);
            let out = engine::run_deterministic(&SpanningTreePls, &c, &labeling);
            assert!(out.accepted(), "n = {n}");
        }
    }

    #[test]
    fn fake_root_id_rejected() {
        let c = legal_config(8);
        // Claim a root id that no node owns.
        let labeling: Labeling = (0..8).map(|_| encode_label(999, 1)).collect();
        let out = engine::run_deterministic(&SpanningTreePls, &c, &labeling);
        assert!(!out.accepted());
    }

    #[test]
    fn wrong_distance_rejected() {
        let c = legal_config(8);
        let mut labeling = SpanningTreePls.label(&c);
        let (rid, d) = decode_label(labeling.get(NodeId::new(3))).unwrap();
        labeling.set(NodeId::new(3), encode_label(rid, d + 1));
        let out = engine::run_deterministic(&SpanningTreePls, &c, &labeling);
        assert!(!out.accepted());
    }

    #[test]
    fn multiround_schedule_certifies_spanning_tree() {
        use rpls_core::engine::StreamMode;
        use rpls_core::{CompiledRpls, RoundScratch, Rpls};
        let c = legal_config(12);
        let scheme = CompiledRpls::new(SpanningTreePls::new());
        let labeling = Rpls::label(&scheme, &c);
        let mut scratch = RoundScratch::new();
        // Honest labels: perfect completeness at every schedule length,
        // with per-round communication only shrinking as t grows.
        let mut last = usize::MAX;
        for rounds in [1usize, 2, 4, 8] {
            let summary = engine::run_multiround_with(
                &scheme,
                &c,
                &labeling,
                9,
                rounds,
                StreamMode::EdgeIndependent,
                &mut scratch,
            );
            assert!(summary.accepted, "t = {rounds}");
            assert_eq!(summary.decided_round, rounds);
            assert!(summary.max_bits_per_round <= last, "t = {rounds}");
            last = summary.max_bits_per_round;
        }
        // A corrupted claimed replica still gets caught at t = 4 with the
        // one-sided bound, and the estimator agrees with the one-round one
        // at t = 1.
        let mut tampered = labeling.clone();
        let target = tampered.get(NodeId::new(4)).len() / 2;
        let flipped: BitString = tampered
            .get(NodeId::new(4))
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        tampered.set(NodeId::new(4), flipped);
        let p4 =
            rpls_core::stats::multiround_acceptance_probability(&scheme, &c, &tampered, 4, 400, 3);
        assert!(p4 < 0.5, "tampered acceptance at t = 4: {p4}");
        let p1 =
            rpls_core::stats::multiround_acceptance_probability(&scheme, &c, &tampered, 1, 400, 3);
        let one = rpls_core::stats::acceptance_probability(&scheme, &c, &tampered, 400, 3);
        assert!(p1 == one, "t = 1 must equal the one-round estimate");
    }

    #[test]
    fn cycle_pointers_cannot_be_certified() {
        // On a cycle configuration where pointers chase each other (no
        // root), no labeling can be accepted: follow the exhaustive forger
        // at a tiny size.
        let g = generators::cycle(3);
        let mut c = Configuration::plain(g);
        for i in 0..3 {
            // Everyone points at its port-0 neighbor (successor): a cycle.
            c.state_mut(NodeId::new(i))
                .set_payload(encode_pointer(Some(Port::from_rank(0))));
        }
        assert!(!SpanningTreePredicate.holds(&c));
        assert!(
            rpls_core::adversary::exhaustive_forge(&SpanningTreePls, &c, 3).is_none(),
            "no 3-bit labeling may fool the verifier"
        );
    }

    #[test]
    fn compiled_scheme_accepts_and_compresses() {
        let c = legal_config(16);
        let scheme = CompiledRpls::new(SpanningTreePls);
        let labeling = rpls_core::Rpls::label(&scheme, &c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 42);
        assert!(rec.outcome.accepted());
        let det_bits = SpanningTreePls.label(&c).max_bits();
        assert!(rec.max_certificate_bits() < det_bits);
    }

    #[test]
    fn pointer_payload_round_trip() {
        assert_eq!(decode_pointer(&encode_pointer(None)), Some(None));
        let p = Some(Port::from_rank(5));
        assert_eq!(decode_pointer(&encode_pointer(p)), Some(p));
        assert_eq!(decode_pointer(&BitString::new()), None);
    }
}
