//! s–t k-vertex-connectivity (§5.2): deciding whether the vertex
//! connectivity between two distinguished nodes is *exactly* `k`.
//!
//! The paper recalls the Θ(log n) bound for this decision problem (derived
//! from Korman–Kutten–Peleg's s-t connectivity scheme). The certificate
//! here is two-sided, following Menger's theorem:
//!
//! * **≥ k**: `k` internally node-disjoint s–t paths, stored like the
//!   k-flow labels (per used incident edge: path id and direction), with
//!   the extra constraint that a non-terminal node carries at most one
//!   path;
//! * **≤ k**: a vertex cut — every label carries the same list of `k` cut
//!   node identities, each cut node confirms its membership, every other
//!   node takes a side, and no edge joins the two sides without passing
//!   through a cut node.
//!
//! Acceptance of both halves pins the connectivity: `k` disjoint paths
//! force ≥ k, and the verified separation by at most `k` nodes forces ≤ k
//! (if some listed identity does not exist the separation uses fewer
//! nodes, contradicting the path half — so nonexistent cut ids cannot
//! slip through either).
//!
//! Labels are `O(k log n)` bits; the compiled scheme (Theorem 3.1)
//! certifies the same predicate with `O(log k + log log n)` bits.

use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::flow as graph_flow;
use rpls_graph::NodeId;

const ID_BITS: u32 = 64;
const K_BITS: u32 = 16;

/// Which side of the cut a node is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Source,
    Sink,
    Cut,
}

impl Side {
    fn encode(self) -> u64 {
        match self {
            Side::Source => 0,
            Side::Sink => 1,
            Side::Cut => 2,
        }
    }

    fn decode(v: u64) -> Option<Self> {
        match v {
            0 => Some(Side::Source),
            1 => Some(Side::Sink),
            2 => Some(Side::Cut),
            _ => None,
        }
    }
}

/// The s–t k-vertex-connectivity predicate.
#[derive(Debug, Clone, Copy)]
pub struct StConnectivityPredicate {
    /// Identity of the source node.
    pub source_id: u64,
    /// Identity of the sink node.
    pub sink_id: u64,
    /// The required connectivity.
    pub k: usize,
}

impl StConnectivityPredicate {
    /// Creates the predicate. `s` and `t` must be non-adjacent in legal
    /// configurations (for adjacent pairs no vertex cut exists and the
    /// predicate is false for every finite `k`... except that connectivity
    /// conventions differ; this scheme requires non-adjacency, as the
    /// classic formulation does).
    #[must_use]
    pub fn new(source_id: u64, sink_id: u64, k: usize) -> Self {
        Self {
            source_id,
            sink_id,
            k,
        }
    }
}

impl Predicate for StConnectivityPredicate {
    fn name(&self) -> String {
        format!("st-{}-vertex-connectivity", self.k)
    }

    fn holds(&self, config: &Configuration) -> bool {
        let (Some(s), Some(t)) = (
            config.node_with_id(self.source_id),
            config.node_with_id(self.sink_id),
        ) else {
            return false;
        };
        if s == t || config.graph().are_adjacent(s, t) {
            return false;
        }
        graph_flow::vertex_connectivity_st(config.graph(), s, t) == self.k
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PathEntry {
    neighbor_id: u64,
    path: u64,
    outgoing: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct StLabel {
    id: u64,
    k: u64,
    side: Side,
    cut_ids: Vec<u64>,
    entries: Vec<PathEntry>,
}

impl StLabel {
    fn encode(&self) -> BitString {
        let mut w = BitWriter::new();
        w.write_u64(self.id, ID_BITS);
        w.write_u64(self.k, K_BITS);
        w.write_u64(self.side.encode(), 2);
        for &c in &self.cut_ids {
            w.write_u64(c, ID_BITS);
        }
        w.write_u64(self.entries.len() as u64, K_BITS);
        for e in &self.entries {
            w.write_u64(e.neighbor_id, ID_BITS);
            w.write_u64(e.path, K_BITS);
            w.write_bool(e.outgoing);
        }
        w.finish()
    }

    fn decode(bits: &BitString) -> Option<Self> {
        let mut r = BitReader::new(bits);
        let id = r.read_u64(ID_BITS).ok()?;
        let k = r.read_u64(K_BITS).ok()?;
        let side = Side::decode(r.read_u64(2).ok()?)?;
        let mut cut_ids = Vec::with_capacity(k as usize);
        for _ in 0..k {
            cut_ids.push(r.read_u64(ID_BITS).ok()?);
        }
        let count = r.read_u64(K_BITS).ok()? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(PathEntry {
                neighbor_id: r.read_u64(ID_BITS).ok()?,
                path: r.read_u64(K_BITS).ok()?,
                outgoing: r.read_bool().ok()?,
            });
        }
        r.is_exhausted().then_some(Self {
            id,
            k,
            side,
            cut_ids,
            entries,
        })
    }
}

/// The `O(k log n)` deterministic s–t k-vertex-connectivity scheme.
#[derive(Debug, Clone, Copy)]
pub struct StConnectivityPls {
    predicate: StConnectivityPredicate,
}

impl StConnectivityPls {
    /// The scheme certifying [`StConnectivityPredicate`].
    #[must_use]
    pub fn new(predicate: StConnectivityPredicate) -> Self {
        Self { predicate }
    }
}

impl Pls for StConnectivityPls {
    fn name(&self) -> String {
        self.predicate.name()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let g = config.graph();
        let s = config
            .node_with_id(self.predicate.source_id)
            .expect("source exists");
        let t = config
            .node_with_id(self.predicate.sink_id)
            .expect("sink exists");
        let paths = graph_flow::vertex_disjoint_paths(g, s, t);
        assert_eq!(paths.len(), self.predicate.k, "legal configuration");
        let cut = graph_flow::minimum_vertex_cut(g, s, t).expect("non-adjacent terminals");
        assert_eq!(cut.len(), self.predicate.k, "legal configuration");
        let mut cut_ids: Vec<u64> = cut.iter().map(|&v| config.state(v).id()).collect();
        cut_ids.sort_unstable();
        let is_cut: std::collections::HashSet<NodeId> = cut.iter().copied().collect();

        // Directed path usage per edge.
        let mut usage: std::collections::HashMap<usize, (u64, NodeId)> =
            std::collections::HashMap::new();
        for (p, path) in paths.iter().enumerate() {
            for w in path.windows(2) {
                let eid = g.edge_between(w[0], w[1]).expect("path edge");
                usage.insert(eid.index(), (p as u64, w[0]));
            }
        }
        // Sides: source component of G − cut.
        let mut side = vec![Side::Sink; g.node_count()];
        for &c in &cut {
            side[c.index()] = Side::Cut;
        }
        let mut queue = std::collections::VecDeque::from([s]);
        side[s.index()] = Side::Source;
        while let Some(v) = queue.pop_front() {
            for nb in g.neighbors(v) {
                if !is_cut.contains(&nb.node) && side[nb.node.index()] == Side::Sink {
                    side[nb.node.index()] = Side::Source;
                    queue.push_back(nb.node);
                }
            }
        }

        g.nodes()
            .map(|v| {
                let entries = g
                    .neighbors(v)
                    .filter_map(|nb| {
                        usage.get(&nb.edge.index()).map(|&(p, from)| PathEntry {
                            neighbor_id: config.state(nb.node).id(),
                            path: p,
                            outgoing: from == v,
                        })
                    })
                    .collect();
                StLabel {
                    id: config.state(v).id(),
                    k: self.predicate.k as u64,
                    side: side[v.index()],
                    cut_ids: cut_ids.clone(),
                    entries,
                }
                .encode()
            })
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some(own) = StLabel::decode(view.label) else {
            return false;
        };
        let my_id = view.local.state.id();
        if own.id != my_id || own.k != self.predicate.k as u64 {
            return false;
        }
        let mut neighbors = Vec::with_capacity(view.neighbor_labels.len());
        for l in &view.neighbor_labels {
            let Some(nl) = StLabel::decode(l) else {
                return false;
            };
            // Everyone must agree on k and on the cut list.
            if nl.k != own.k || nl.cut_ids != own.cut_ids {
                return false;
            }
            neighbors.push(nl);
        }
        // Cut list sanity: sorted, distinct, excludes the terminals.
        if own.cut_ids.windows(2).any(|w| w[0] >= w[1]) {
            return false;
        }
        if own
            .cut_ids
            .iter()
            .any(|&c| c == self.predicate.source_id || c == self.predicate.sink_id)
        {
            return false;
        }
        // Neighbor claimed ids must be unambiguous.
        {
            let mut ids: Vec<u64> = neighbors.iter().map(|nl| nl.id).collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() != neighbors.len() {
                return false;
            }
        }
        let is_source = my_id == self.predicate.source_id;
        let is_sink = my_id == self.predicate.sink_id;
        // Side consistency with the cut list and the terminals.
        let listed = own.cut_ids.binary_search(&my_id).is_ok();
        if listed != (own.side == Side::Cut) {
            return false;
        }
        if is_source && own.side != Side::Source {
            return false;
        }
        if is_sink && own.side != Side::Sink {
            return false;
        }
        // The terminals must not be adjacent (the predicate's premise): a
        // neighbor claiming the other terminal's id is a violation.
        if is_source && neighbors.iter().any(|nl| nl.id == self.predicate.sink_id) {
            return false;
        }
        if is_sink && neighbors.iter().any(|nl| nl.id == self.predicate.source_id) {
            return false;
        }
        // Separation: a Source-side node may not touch a Sink-side node.
        for nl in &neighbors {
            if (own.side == Side::Source && nl.side == Side::Sink)
                || (own.side == Side::Sink && nl.side == Side::Source)
            {
                return false;
            }
        }
        // Path entries: mirrored, one per incident edge, node-disjointness.
        let mut used_ports = std::collections::HashSet::new();
        let mut per_path: std::collections::HashMap<u64, (usize, usize)> =
            std::collections::HashMap::new();
        for e in &own.entries {
            if e.path >= own.k {
                return false;
            }
            let Some(port) = neighbors.iter().position(|nl| nl.id == e.neighbor_id) else {
                return false;
            };
            if !used_ports.insert(port) {
                return false;
            }
            let mirror = neighbors[port]
                .entries
                .iter()
                .find(|m| m.neighbor_id == my_id);
            let Some(mirror) = mirror else {
                return false;
            };
            if mirror.path != e.path || mirror.outgoing == e.outgoing {
                return false;
            }
            let slot = per_path.entry(e.path).or_insert((0, 0));
            if e.outgoing {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
        if is_source || is_sink {
            (0..own.k).all(|p| {
                let &(out, inn) = per_path.get(&p).unwrap_or(&(0, 0));
                if is_source {
                    out == 1 && inn == 0
                } else {
                    out == 0 && inn == 1
                }
            })
        } else {
            // A non-terminal node carries at most one path, once through.
            per_path.len() <= 1 && per_path.values().all(|&(out, inn)| out == 1 && inn == 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_core::{CompiledRpls, Rpls};
    use rpls_graph::generators;

    #[test]
    fn predicate_on_grid_corners() {
        let c = Configuration::plain(generators::grid(3, 3));
        assert!(StConnectivityPredicate::new(0, 8, 2).holds(&c));
        assert!(!StConnectivityPredicate::new(0, 8, 3).holds(&c));
        // Adjacent terminals are outside the model.
        assert!(!StConnectivityPredicate::new(0, 1, 1).holds(&c));
    }

    #[test]
    fn honest_labels_accepted() {
        for (g, s, t, k) in [
            (generators::grid(3, 3), 0u64, 8u64, 2usize),
            (generators::cycle(8), 0, 4, 2),
            (generators::grid(3, 4), 0, 11, 2),
        ] {
            let c = Configuration::plain(g);
            let scheme = StConnectivityPls::new(StConnectivityPredicate::new(s, t, k));
            let labels = scheme.label(&c);
            let out = engine::run_deterministic(&scheme, &c, &labels);
            assert!(out.accepted(), "k={k}: {:?}", out.rejecting_nodes());
        }
    }

    #[test]
    fn wrong_k_resists_forging() {
        let c = Configuration::plain(generators::cycle(8));
        // True connectivity between opposite nodes is 2; claim 3.
        let scheme = StConnectivityPls::new(StConnectivityPredicate::new(0, 4, 3));
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let report = rpls_core::adversary::random_forge(&scheme, &c, 80, 20, 250, &mut rng);
        assert!(!report.succeeded());
        // And claim 1 (under-claiming).
        let scheme = StConnectivityPls::new(StConnectivityPredicate::new(0, 4, 1));
        let report = rpls_core::adversary::random_forge(&scheme, &c, 80, 20, 250, &mut rng);
        assert!(!report.succeeded());
    }

    #[test]
    fn node_reuse_across_paths_rejected() {
        // Certify k=2 on a graph whose true connectivity is 1: the hourglass
        // (two triangles sharing a node). Any 2-path certificate must reuse
        // the shared node, which the verifier forbids.
        let mut b = rpls_graph::GraphBuilder::new(5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            b.add_edge(u, v).unwrap();
        }
        let c = Configuration::plain(b.finish().unwrap());
        assert!(StConnectivityPredicate::new(0, 3, 1).holds(&c));
        let scheme = StConnectivityPls::new(StConnectivityPredicate::new(0, 3, 2));
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let report = rpls_core::adversary::random_forge(&scheme, &c, 100, 20, 250, &mut rng);
        assert!(!report.succeeded());
    }

    #[test]
    fn tampered_cut_list_rejected() {
        let c = Configuration::plain(generators::grid(3, 3));
        let scheme = StConnectivityPls::new(StConnectivityPredicate::new(0, 8, 2));
        let mut labels = scheme.label(&c);
        let mut lbl = StLabel::decode(labels.get(NodeId::new(4))).unwrap();
        lbl.cut_ids[0] = lbl.cut_ids[0].wrapping_add(1);
        labels.set(NodeId::new(4), lbl.encode());
        assert!(!engine::run_deterministic(&scheme, &c, &labels).accepted());
    }

    #[test]
    fn compiled_scheme_round_trip() {
        let c = Configuration::plain(generators::grid(3, 4));
        let scheme = CompiledRpls::new(StConnectivityPls::new(StConnectivityPredicate::new(
            0, 11, 2,
        )));
        let labels = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labels, 13);
        assert!(rec.outcome.accepted());
        assert!(rec.max_certificate_bits() <= 24);
    }

    #[test]
    fn label_round_trip() {
        let l = StLabel {
            id: 5,
            k: 2,
            side: Side::Cut,
            cut_ids: vec![3, 5],
            entries: vec![PathEntry {
                neighbor_id: 1,
                path: 0,
                outgoing: true,
            }],
        };
        assert_eq!(StLabel::decode(&l.encode()), Some(l));
        assert!(StLabel::decode(&BitString::zeros(7)).is_none());
    }
}
