//! Minimum spanning tree certification (Theorem 5.1).
//!
//! The spanning tree lives in the states as parent pointers (the output of
//! a distributed MST algorithm). The deterministic scheme follows the
//! Korman–Kutten–Peleg approach of certifying a Borůvka-style fragment
//! hierarchy, with `O(log² n)` label bits (`O(log n)` levels ×
//! `O(log n + log W)` bits per level); compiling it (Theorem 3.1) yields
//! `O(log log n)`-bit certificates, the upper bound of Theorem 5.1.
//!
//! # Label layout
//!
//! Besides a `(root id, depth)` pair certifying that the parent pointers
//! form a spanning tree `T`, each node carries one record per fragment
//! level ℓ:
//!
//! * `frag` — the identity of its fragment's leader (minimum id inside);
//! * `dist` — its distance to the leader *within* the fragment (tree
//!   edges), anchoring fragment connectivity;
//! * `mwoe` — the weight of the fragment's minimum-weight outgoing edge.
//!
//! # Soundness
//!
//! The verifier forces, for every claimed fragment `F` (a frag-id
//! equivalence class): `F` is connected (descending-`dist` chains end at
//! the unique node whose id equals the leader id), `mwoe` is constant on
//! `F`, and every edge leaving `F` weighs at least `mwoe`. Every tree edge
//! must, at the level its endpoints' fragments first coincide, have weight
//! **equal** to one side's `mwoe` — making it a minimum-weight edge across
//! the cut `(F, V∖F)`. A spanning tree all of whose edges are cut-minimal
//! is a minimum spanning tree (exchange argument), so no labeling can
//! certify a non-MST.

use crate::spanning_tree::{decode_pointer, encode_pointer, SpanningTreePredicate};
use rpls_bits::{bits_for, BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::{mst as graph_mst, EdgeId, NodeId};

const WIDTH_BITS: u32 = 7;
const LEVEL_BITS: u32 = 8;

/// The MST predicate: the parent pointers form a spanning tree whose total
/// weight is minimum among all spanning trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct MstPredicate;

impl MstPredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

/// Extracts the tree edges encoded by the parent pointers, or `None` if the
/// pointers are not a valid spanning tree.
#[must_use]
pub fn tree_edges(config: &Configuration) -> Option<Vec<EdgeId>> {
    if !SpanningTreePredicate.holds(config) {
        return None;
    }
    let g = config.graph();
    let mut edges = Vec::with_capacity(g.node_count().saturating_sub(1));
    for v in g.nodes() {
        if let Some(Some(port)) = decode_pointer(config.state(v).payload()) {
            edges.push(g.neighbor_by_port(v, port)?.edge);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    (edges.len() + 1 == g.node_count()).then_some(edges)
}

impl Predicate for MstPredicate {
    fn name(&self) -> String {
        "mst".into()
    }

    fn holds(&self, config: &Configuration) -> bool {
        let Some(edges) = tree_edges(config) else {
            return false;
        };
        graph_mst::is_mst(config.graph(), &edges).unwrap_or(false)
    }
}

/// Builds a legal MST workload: computes the (tie-broken) minimum spanning
/// tree of the weighted graph and installs it as parent pointers rooted at
/// the minimum-id node.
///
/// # Panics
///
/// Panics if the graph is unweighted or disconnected.
#[must_use]
pub fn mst_config(config: &Configuration) -> Configuration {
    let g = config.graph();
    let tree = graph_mst::kruskal(g).expect("weighted connected graph");
    install_tree(config, &tree)
}

/// Installs an explicit spanning tree as parent pointers (rooted at the
/// minimum-id node). Used by tests to install non-minimal trees.
///
/// # Panics
///
/// Panics if `tree` is not a spanning tree of the graph.
#[must_use]
pub fn install_tree(config: &Configuration, tree: &[EdgeId]) -> Configuration {
    let g = config.graph();
    assert!(
        graph_mst::is_spanning_tree(g, tree),
        "edge set must be a spanning tree"
    );
    let in_tree: std::collections::HashSet<EdgeId> = tree.iter().copied().collect();
    let root = g
        .nodes()
        .min_by_key(|&v| config.state(v).id())
        .expect("nonempty graph");
    // BFS over tree edges only.
    let mut parent_port: Vec<Option<rpls_graph::Port>> = vec![None; g.node_count()];
    let mut visited = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::from([root]);
    visited[root.index()] = true;
    while let Some(v) = queue.pop_front() {
        for nb in g.neighbors(v) {
            if in_tree.contains(&nb.edge) && !visited[nb.node.index()] {
                visited[nb.node.index()] = true;
                parent_port[nb.node.index()] = Some(nb.remote_port);
                queue.push_back(nb.node);
            }
        }
    }
    let mut out = config.clone();
    for v in g.nodes() {
        let pointer = if v == root {
            encode_pointer(None)
        } else {
            encode_pointer(Some(parent_port[v.index()].expect("spanning tree")))
        };
        out.state_mut(v).set_payload(pointer);
    }
    out
}

/// One per-level record in a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LevelRecord {
    frag: u64,
    dist: u64,
    mwoe: u64, // unused at the final level
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct MstLabel {
    w_id: u32,
    w_dist: u32,
    w_weight: u32,
    root_id: u64,
    depth: u64,
    levels: Vec<LevelRecord>, // length L + 1; last record's mwoe unused
}

impl MstLabel {
    fn encode(&self) -> BitString {
        let mut w = BitWriter::new();
        w.write_u64(u64::from(self.w_id), WIDTH_BITS);
        w.write_u64(u64::from(self.w_dist), WIDTH_BITS);
        w.write_u64(u64::from(self.w_weight), WIDTH_BITS);
        w.write_u64(self.levels.len() as u64 - 1, LEVEL_BITS);
        w.write_u64(self.root_id, self.w_id);
        w.write_u64(self.depth, self.w_dist);
        for (i, rec) in self.levels.iter().enumerate() {
            w.write_u64(rec.frag, self.w_id);
            w.write_u64(rec.dist, self.w_dist);
            if i + 1 < self.levels.len() {
                w.write_u64(rec.mwoe, self.w_weight);
            }
        }
        w.finish()
    }

    fn decode(bits: &BitString) -> Option<Self> {
        let mut r = BitReader::new(bits);
        let w_id = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
        let w_dist = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
        let w_weight = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
        if w_id == 0 || w_id > 64 || w_dist == 0 || w_dist > 64 || w_weight == 0 || w_weight > 64 {
            return None;
        }
        let levels_minus_1 = r.read_u64(LEVEL_BITS).ok()? as usize;
        let root_id = r.read_u64(w_id).ok()?;
        let depth = r.read_u64(w_dist).ok()?;
        let mut levels = Vec::with_capacity(levels_minus_1 + 1);
        for i in 0..=levels_minus_1 {
            let frag = r.read_u64(w_id).ok()?;
            let dist = r.read_u64(w_dist).ok()?;
            let mwoe = if i < levels_minus_1 {
                r.read_u64(w_weight).ok()?
            } else {
                0
            };
            levels.push(LevelRecord { frag, dist, mwoe });
        }
        r.is_exhausted().then_some(Self {
            w_id,
            w_dist,
            w_weight,
            root_id,
            depth,
            levels,
        })
    }
}

/// The `O(log² n)`-bit deterministic MST scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct MstPls;

impl MstPls {
    /// Creates the scheme.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Pls for MstPls {
    fn name(&self) -> String {
        "mst".into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let g = config.graph();
        let n = g.node_count();
        let tree = tree_edges(config).expect("legal MST configuration");
        let in_tree: std::collections::HashSet<EdgeId> = tree.iter().copied().collect();

        // Widths shared by all labels.
        let w_id = config
            .states()
            .iter()
            .map(|s| bits_for(s.id()))
            .max()
            .unwrap_or(1);
        let w_dist = bits_for(n as u64);
        let w_weight = g
            .edges()
            .map(|(_, r)| bits_for(r.weight.expect("weighted graph")))
            .max()
            .unwrap_or(1);

        // Spanning-tree part: root and depths.
        let root = g
            .nodes()
            .min_by_key(|&v| config.state(v).id())
            .expect("nonempty graph");
        let root_id = config.state(root).id();
        let tree_bfs = bfs_over_edges(g, root, &in_tree);

        // Fragment hierarchy: start from singletons, merge along each
        // fragment's minimum-weight outgoing tree edge.
        let mut uf = rpls_graph::unionfind::UnionFind::new(n);
        let mut levels_per_node: Vec<Vec<LevelRecord>> = vec![Vec::new(); n];
        loop {
            let frag_of: Vec<usize> = (0..n).map(|v| uf.find(v)).collect();
            // Leader id = min id per fragment.
            let mut leader_id: std::collections::HashMap<usize, u64> =
                std::collections::HashMap::new();
            for v in g.nodes() {
                let f = frag_of[v.index()];
                let id = config.state(v).id();
                leader_id
                    .entry(f)
                    .and_modify(|m| *m = (*m).min(id))
                    .or_insert(id);
            }
            // Distances to leader within fragment (tree edges only).
            let mut dist = vec![u64::MAX; n];
            for v in g.nodes() {
                if config.state(v).id() == leader_id[&frag_of[v.index()]] {
                    fragment_bfs(g, v, &frag_of, &in_tree, &mut dist);
                }
            }
            // Minimum-weight outgoing edge (weight, edge id) per fragment.
            let mut mwoe: std::collections::HashMap<usize, (u64, EdgeId)> =
                std::collections::HashMap::new();
            for (eid, rec) in g.edges() {
                let (fu, fv) = (frag_of[rec.u.index()], frag_of[rec.v.index()]);
                if fu == fv {
                    continue;
                }
                let key = (rec.weight.expect("weighted"), eid);
                for f in [fu, fv] {
                    match mwoe.get(&f) {
                        Some(&best) if best <= key => {}
                        _ => {
                            mwoe.insert(f, key);
                        }
                    }
                }
            }
            let done = mwoe.is_empty();
            for v in g.nodes() {
                let f = frag_of[v.index()];
                levels_per_node[v.index()].push(LevelRecord {
                    frag: leader_id[&f],
                    dist: dist[v.index()],
                    mwoe: mwoe.get(&f).map_or(0, |&(w, _)| w),
                });
            }
            if done {
                break;
            }
            // Merge along each fragment's minimum-weight outgoing *tree*
            // edge of the same weight (exists because the tree is an MST).
            for (&f, &(w, _)) in &mwoe {
                let chosen = g
                    .edges()
                    .filter(|&(eid, rec)| {
                        in_tree.contains(&eid) && rec.weight == Some(w) && {
                            let (a, b) = (frag_of[rec.u.index()], frag_of[rec.v.index()]);
                            (a == f) != (b == f)
                        }
                    })
                    .min_by_key(|&(eid, _)| eid)
                    .expect("an MST achieves the minimum outgoing weight with a tree edge");
                let rec = g.edge(chosen.0);
                uf.union(rec.u.index(), rec.v.index());
            }
        }

        g.nodes()
            .map(|v| {
                MstLabel {
                    w_id,
                    w_dist,
                    w_weight,
                    root_id,
                    depth: tree_bfs[v.index()].expect("spanning tree") as u64,
                    levels: levels_per_node[v.index()].clone(),
                }
                .encode()
            })
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some(own) = MstLabel::decode(view.label) else {
            return false;
        };
        let mut neighbors = Vec::with_capacity(view.neighbor_labels.len());
        for l in &view.neighbor_labels {
            let Some(nl) = MstLabel::decode(l) else {
                return false;
            };
            if nl.levels.len() != own.levels.len()
                || nl.w_id != own.w_id
                || nl.w_dist != own.w_dist
                || nl.w_weight != own.w_weight
                || nl.root_id != own.root_id
            {
                return false;
            }
            neighbors.push(nl);
        }
        let my_id = view.local.state.id();
        let parent_port = match decode_pointer(view.local.state.payload()) {
            Some(p) => p,
            None => return false,
        };

        // V2: spanning-tree certificate.
        match parent_port {
            None => {
                if own.depth != 0 || my_id != own.root_id {
                    return false;
                }
            }
            Some(port) => {
                let Some(parent) = neighbors.get(port.rank()) else {
                    return false;
                };
                if own.depth == 0 || parent.depth != own.depth - 1 || my_id == own.root_id {
                    return false;
                }
            }
        }

        let last = own.levels.len() - 1;
        // V3: per-level fragment certificates.
        for (l, rec) in own.levels.iter().enumerate() {
            // Level-0 fragments are singletons.
            if l == 0 && rec.frag != my_id {
                return false;
            }
            if rec.dist == 0 {
                if rec.frag != my_id {
                    return false;
                }
            } else {
                // Some same-fragment neighbor is closer to the leader.
                let witness = neighbors
                    .iter()
                    .any(|nl| nl.levels[l].frag == rec.frag && nl.levels[l].dist == rec.dist - 1);
                if !witness {
                    return false;
                }
            }
            if l < last {
                for (p, nl) in neighbors.iter().enumerate() {
                    if nl.levels[l].frag == rec.frag {
                        // mwoe constant across the fragment.
                        if nl.levels[l].mwoe != rec.mwoe {
                            return false;
                        }
                    } else {
                        // Outgoing edges weigh at least the fragment's mwoe.
                        let Some(Some(w)) = view.local.incident_weights.get(p) else {
                            return false;
                        };
                        if *w < rec.mwoe {
                            return false;
                        }
                    }
                }
            }
        }

        // V4: final level is one global fragment.
        if neighbors
            .iter()
            .any(|nl| nl.levels[last].frag != own.levels[last].frag)
        {
            return false;
        }

        // V5: the parent edge is cut-minimal at its merge level.
        if let Some(port) = parent_port {
            let parent = &neighbors[port.rank()];
            let Some(merge_level) =
                (0..=last).find(|&l| parent.levels[l].frag == own.levels[l].frag)
            else {
                return false;
            };
            if merge_level == 0 {
                return false; // level-0 fragments are singletons
            }
            let Some(Some(w)) = view.local.incident_weights.get(port.rank()) else {
                return false;
            };
            let l = merge_level - 1;
            if *w != own.levels[l].mwoe && *w != parent.levels[l].mwoe {
                return false;
            }
        }
        true
    }
}

/// BFS distances from `root` restricted to the given edge set.
fn bfs_over_edges(
    g: &rpls_graph::Graph,
    root: NodeId,
    allowed: &std::collections::HashSet<EdgeId>,
) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    dist[root.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued");
        for nb in g.neighbors(v) {
            if allowed.contains(&nb.edge) && dist[nb.node.index()].is_none() {
                dist[nb.node.index()] = Some(d + 1);
                queue.push_back(nb.node);
            }
        }
    }
    dist
}

/// Fills `dist` with tree distances from `leader`, staying within its
/// fragment.
fn fragment_bfs(
    g: &rpls_graph::Graph,
    leader: NodeId,
    frag_of: &[usize],
    in_tree: &std::collections::HashSet<EdgeId>,
    dist: &mut [u64],
) {
    dist[leader.index()] = 0;
    let mut queue = std::collections::VecDeque::from([leader]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for nb in g.neighbors(v) {
            if in_tree.contains(&nb.edge)
                && frag_of[nb.node.index()] == frag_of[leader.index()]
                && dist[nb.node.index()] == u64::MAX
            {
                dist[nb.node.index()] = d + 1;
                queue.push_back(nb.node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpls_core::engine;
    use rpls_core::{CompiledRpls, Rpls};
    use rpls_graph::generators;

    fn weighted_config(n: usize, seed: u64) -> Configuration {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.3, &mut rng);
        let w = generators::distinct_weights(&g, &mut rng);
        Configuration::plain(g.with_weights(&w))
    }

    #[test]
    fn predicate_accepts_true_mst() {
        let c = mst_config(&weighted_config(12, 1));
        assert!(MstPredicate.holds(&c));
    }

    #[test]
    fn predicate_rejects_non_minimal_tree() {
        // Cycle with one heavy edge: the tree containing it is not minimal.
        let g = generators::cycle(5).with_weights(&[1, 2, 3, 4, 100]);
        let base = Configuration::plain(g);
        let heavy_tree: Vec<EdgeId> = vec![
            EdgeId::new(0),
            EdgeId::new(1),
            EdgeId::new(2),
            EdgeId::new(4),
        ];
        let c = install_tree(&base, &heavy_tree);
        assert!(!MstPredicate.holds(&c));
        // The honest MST on the same graph passes.
        assert!(MstPredicate.holds(&mst_config(&base)));
    }

    #[test]
    fn honest_labels_accepted() {
        for seed in 0..5 {
            let c = mst_config(&weighted_config(15, seed));
            let labeling = MstPls.label(&c);
            let out = engine::run_deterministic(&MstPls, &c, &labeling);
            assert!(out.accepted(), "seed {seed}: {:?}", out.rejecting_nodes());
        }
    }

    #[test]
    fn honest_labels_accepted_with_ties() {
        // Uniform weights: everything is an MST; certification must work.
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp_connected(12, 0.4, &mut rng).with_uniform_weights(7);
        let c = mst_config(&Configuration::plain(g));
        let labeling = MstPls.label(&c);
        assert!(engine::run_deterministic(&MstPls, &c, &labeling).accepted());
    }

    #[test]
    fn non_minimal_tree_rejected_under_honest_style_labels() {
        // Install a non-minimal tree, then try to label it with the honest
        // labeler of a configuration that *claims* it is fine: the verifier
        // must reject because the parent edge is not cut-minimal.
        let g = generators::cycle(5).with_weights(&[1, 2, 3, 4, 100]);
        let base = Configuration::plain(g);
        let bad = install_tree(
            &base,
            &[
                EdgeId::new(0),
                EdgeId::new(1),
                EdgeId::new(2),
                EdgeId::new(4),
            ],
        );
        // Labels must exist even for illegal configs to run the verifier;
        // reuse the honest labeler of the *good* configuration (same graph).
        let good = mst_config(&base);
        let labeling = MstPls.label(&good);
        let out = engine::run_deterministic(&MstPls, &bad, &labeling);
        assert!(!out.accepted());
    }

    #[test]
    fn random_forging_fails_on_non_mst() {
        let g = generators::cycle(4).with_weights(&[1, 1, 1, 50]);
        let base = Configuration::plain(g);
        let bad = install_tree(&base, &[EdgeId::new(0), EdgeId::new(1), EdgeId::new(3)]);
        assert!(!MstPredicate.holds(&bad));
        let mut rng = StdRng::seed_from_u64(3);
        let report = rpls_core::adversary::random_forge(&MstPls, &bad, 40, 30, 300, &mut rng);
        assert!(!report.succeeded(), "forged a non-MST certificate");
    }

    #[test]
    fn label_bits_are_polylog() {
        // n = 32 with poly(n) weights: labels should be well under n bits
        // (the hierarchy has ≤ log n levels of ~3 log n bits each).
        let c = mst_config(&weighted_config(32, 4));
        let labeling = MstPls.label(&c);
        let bits = labeling.max_bits();
        assert!(bits < 300, "label bits = {bits}");
        assert!(bits > 20, "label bits suspiciously small: {bits}");
    }

    #[test]
    fn multiround_schedule_certifies_mst() {
        use rpls_core::engine::StreamMode;
        use rpls_core::RoundScratch;
        let c = mst_config(&weighted_config(16, 8));
        let scheme = CompiledRpls::new(MstPls);
        let labeling = Rpls::label(&scheme, &c);
        let mut scratch = RoundScratch::new();
        // Honest MST labels verify in t rounds for every schedule length,
        // with per-round bits non-increasing in t.
        let mut last = usize::MAX;
        for rounds in [1usize, 2, 4, 8, 16] {
            let summary = engine::run_multiround_with(
                &scheme,
                &c,
                &labeling,
                5,
                rounds,
                StreamMode::EdgeIndependent,
                &mut scratch,
            );
            assert!(summary.accepted, "t = {rounds}");
            assert!(summary.max_bits_per_round <= last);
            last = summary.max_bits_per_round;
        }
        // A corrupted replica is still rejected with good probability
        // under the t = 4 chunked-fingerprint schedule, and the
        // rejection-round profile decides no later than round 4.
        let mut tampered = labeling.clone();
        let node = rpls_graph::NodeId::new(3);
        let target = tampered.get(node).len() / 2;
        let flipped: rpls_bits::BitString = tampered
            .get(node)
            .iter()
            .enumerate()
            .map(|(i, b)| if i == target { !b } else { b })
            .collect();
        tampered.set(node, flipped);
        let profile = rpls_core::stats::rounds_to_reject_profile(&scheme, &c, &tampered, 4, 300, 2);
        assert!(profile.rejects() > 150, "rejects = {}", profile.rejects());
        assert!(profile.quantile_reject_round(1.0) <= Some(4));
    }

    #[test]
    fn compiled_mst_certificates_are_tiny() {
        let c = mst_config(&weighted_config(24, 8));
        let scheme = CompiledRpls::new(MstPls);
        let labeling = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 77);
        assert!(rec.outcome.accepted());
        let det = MstPls.label(&c).max_bits();
        let cert = rec.max_certificate_bits();
        assert!(
            cert * 3 < det,
            "expected strong compression, got {det} -> {cert}"
        );
    }

    #[test]
    fn label_round_trip() {
        let label = MstLabel {
            w_id: 7,
            w_dist: 6,
            w_weight: 10,
            root_id: 3,
            depth: 2,
            levels: vec![
                LevelRecord {
                    frag: 3,
                    dist: 0,
                    mwoe: 17,
                },
                LevelRecord {
                    frag: 1,
                    dist: 4,
                    mwoe: 0,
                },
            ],
        };
        let decoded = MstLabel::decode(&label.encode()).unwrap();
        assert_eq!(decoded, label);
        assert!(MstLabel::decode(&BitString::zeros(5)).is_none());
    }

    #[test]
    fn tree_edges_extraction() {
        let c = mst_config(&weighted_config(10, 2));
        let edges = tree_edges(&c).unwrap();
        assert_eq!(edges.len(), 9);
        assert!(graph_mst::is_spanning_tree(c.graph(), &edges));
    }
}
