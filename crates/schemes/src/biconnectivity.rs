//! Vertex biconnectivity (`v2con`, Theorem 5.2) — the Appendix E scheme.
//!
//! The prover runs a DFS from the minimum-id node and labels every node
//! with `(id-root, dist, preo, span, lowpt)`:
//!
//! * `id-root` — identity of the DFS root;
//! * `dist` — DFS tree depth;
//! * `preo` — preorder number;
//! * `span` — the half-open interval of preorder numbers of the node's
//!   subtree;
//! * `lowpt` — Tarjan's LOWPT as the paper defines it: the smallest
//!   preorder number among the *neighbors* of the nodes in the subtree
//!   (which includes each node's parent, so `lowpt(v) ≤ preo(parent(v))`).
//!
//! The verifier is the conjunction of the paper's predicates **P1–P8**:
//! P1–P6 force the labels to describe a genuine DFS tree (Theorem 1 of
//! Tarjan's 1972 paper), P7 pins the lowpoints, and P8 — the root has at
//! most one child and `lowpt(u) < preo(v)` for every child `u` of every
//! non-root `v` — is exactly the absence of articulation points.
//! Verification complexity Θ(log n); compiled: Θ(log log n).

use rpls_bits::{bits_for, BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::{connectivity, traversal};

const WIDTH_BITS: u32 = 7;

/// The vertex-biconnectivity predicate of Theorem 5.2.
#[derive(Debug, Clone, Copy, Default)]
pub struct BiconnectivityPredicate;

impl BiconnectivityPredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Predicate for BiconnectivityPredicate {
    fn name(&self) -> String {
        "v2con".into()
    }

    fn holds(&self, config: &Configuration) -> bool {
        connectivity::is_biconnected(config.graph())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BcLabel {
    w_id: u32,
    w: u32,
    id_root: u64,
    dist: u64,
    preo: u64,
    span_lo: u64,
    span_hi: u64,
    lowpt: u64,
}

impl BcLabel {
    fn encode(&self) -> BitString {
        let mut wtr = BitWriter::new();
        wtr.write_u64(u64::from(self.w_id), WIDTH_BITS);
        wtr.write_u64(u64::from(self.w), WIDTH_BITS);
        wtr.write_u64(self.id_root, self.w_id);
        wtr.write_u64(self.dist, self.w);
        wtr.write_u64(self.preo, self.w);
        wtr.write_u64(self.span_lo, self.w);
        wtr.write_u64(self.span_hi, self.w + 1);
        wtr.write_u64(self.lowpt, self.w);
        wtr.finish()
    }

    fn decode(bits: &BitString) -> Option<Self> {
        let mut r = BitReader::new(bits);
        let w_id = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
        let w = u32::try_from(r.read_u64(WIDTH_BITS).ok()?).ok()?;
        if w_id == 0 || w_id > 64 || w == 0 || w > 63 {
            return None;
        }
        let out = Self {
            w_id,
            w,
            id_root: r.read_u64(w_id).ok()?,
            dist: r.read_u64(w).ok()?,
            preo: r.read_u64(w).ok()?,
            span_lo: r.read_u64(w).ok()?,
            span_hi: r.read_u64(w + 1).ok()?,
            lowpt: r.read_u64(w).ok()?,
        };
        r.is_exhausted().then_some(out)
    }
}

/// The Θ(log n) deterministic biconnectivity scheme (Appendix E).
#[derive(Debug, Clone, Copy, Default)]
pub struct BiconnectivityPls;

impl BiconnectivityPls {
    /// Creates the scheme.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Pls for BiconnectivityPls {
    fn name(&self) -> String {
        "v2con".into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let g = config.graph();
        let root = g
            .nodes()
            .min_by_key(|&v| config.state(v).id())
            .expect("nonempty graph");
        let dfs = traversal::dfs(g, root);
        // The paper's lowpt: min over the subtree of each node's minimum
        // neighbor preorder. Computed bottom-up in reverse preorder.
        let n = g.node_count();
        let mut lowpt = vec![u64::MAX; n];
        for &v in dfs.order.iter().rev() {
            let neighbormin = g
                .neighbors(v)
                .map(|nb| dfs.preorder[nb.node.index()].expect("connected") as u64)
                .min()
                .expect("positive degree");
            lowpt[v.index()] = lowpt[v.index()].min(neighbormin);
            if let Some(p) = dfs.parent[v.index()] {
                lowpt[p.index()] = lowpt[p.index()].min(lowpt[v.index()]);
            }
        }
        let w_id = config
            .states()
            .iter()
            .map(|s| bits_for(s.id()))
            .max()
            .unwrap_or(1);
        let w = bits_for(n as u64);
        let root_id = config.state(root).id();
        g.nodes()
            .map(|v| {
                let (lo, hi) = dfs.span[v.index()].expect("connected");
                BcLabel {
                    w_id,
                    w,
                    id_root: root_id,
                    dist: dfs.depth[v.index()].expect("connected") as u64,
                    preo: dfs.preorder[v.index()].expect("connected") as u64,
                    span_lo: lo as u64,
                    span_hi: hi as u64,
                    lowpt: lowpt[v.index()],
                }
                .encode()
            })
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some(own) = BcLabel::decode(view.label) else {
            return false;
        };
        let mut nbs = Vec::with_capacity(view.neighbor_labels.len());
        for l in &view.neighbor_labels {
            let Some(nl) = BcLabel::decode(l) else {
                return false;
            };
            // P1: agreement on the root id (and on the widths).
            if nl.id_root != own.id_root || nl.w != own.w || nl.w_id != own.w_id {
                return false;
            }
            nbs.push(nl);
        }
        // Biconnected graphs have minimum degree 2.
        if nbs.len() < 2 {
            return false;
        }
        // Structural sanity of the span interval.
        if own.span_lo != own.preo || own.span_hi <= own.span_lo {
            return false;
        }

        // P2 is vacuous for unsigned integers. P3:
        if own.dist == 0 {
            if own.id_root != view.local.state.id() || own.preo != 0 {
                return false;
            }
        } else {
            if view.local.state.id() == own.id_root {
                return false;
            }
            let parents = nbs.iter().filter(|nl| nl.dist == own.dist - 1).count();
            if parents != 1 {
                return false;
            }
        }

        // P5: no neighbor shares our depth.
        if nbs.iter().any(|nl| nl.dist == own.dist) {
            return false;
        }

        // P4: children spans partition span(v) ∖ {preo(v)}.
        let mut child_spans: Vec<(u64, u64)> = nbs
            .iter()
            .filter(|nl| nl.dist == own.dist + 1)
            .map(|nl| (nl.span_lo, nl.span_hi))
            .collect();
        child_spans.sort_unstable();
        let mut cursor = own.preo + 1;
        for (lo, hi) in &child_spans {
            if *lo != cursor || *hi <= *lo {
                return false;
            }
            cursor = *hi;
        }
        if cursor != own.span_hi {
            return false;
        }

        // P6: span containment matches depth ordering.
        for nl in &nbs {
            if nl.dist < own.dist {
                // An ancestor: our span strictly inside theirs.
                if !(nl.span_lo <= own.span_lo && own.span_hi <= nl.span_hi && nl.preo < own.preo) {
                    return false;
                }
            } else if !(own.span_lo <= nl.span_lo
                && nl.span_hi <= own.span_hi
                && own.preo < nl.preo)
            {
                return false;
            }
        }

        // P7: lowpt = min(childmin, neighbormin).
        let childmin = nbs
            .iter()
            .filter(|nl| nl.dist == own.dist + 1)
            .map(|nl| nl.lowpt)
            .min()
            .unwrap_or(u64::MAX);
        let neighbormin = nbs.iter().map(|nl| nl.preo).min().expect("degree >= 2");
        if own.lowpt != childmin.min(neighbormin) {
            return false;
        }

        // P8: the biconnectivity test itself.
        let children = nbs.iter().filter(|nl| nl.dist == own.dist + 1);
        if own.dist == 0 {
            children.count() <= 1
        } else {
            children.into_iter().all(|nl| nl.lowpt < own.preo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpls_core::engine;
    use rpls_core::{CompiledRpls, Rpls};
    use rpls_graph::generators;

    #[test]
    fn predicate_matches_ground_truth() {
        assert!(BiconnectivityPredicate.holds(&Configuration::plain(generators::cycle(5))));
        assert!(BiconnectivityPredicate.holds(&Configuration::plain(generators::wheel(9))));
        assert!(BiconnectivityPredicate.holds(&Configuration::plain(generators::complete(4))));
        assert!(!BiconnectivityPredicate.holds(&Configuration::plain(generators::path(5))));
        assert!(!BiconnectivityPredicate.holds(&Configuration::plain(generators::star(4))));
    }

    #[test]
    fn honest_labels_accepted_on_biconnected_graphs() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut cases = vec![
            generators::cycle(5),
            generators::cycle(12),
            generators::wheel(9),
            generators::complete(6),
            generators::grid(3, 4),
        ];
        // Dense random graphs are almost surely biconnected; filter.
        for _ in 0..5 {
            let g = generators::gnp_connected(14, 0.5, &mut rng);
            if connectivity::is_biconnected(&g) {
                cases.push(g);
            }
        }
        for g in cases {
            assert!(connectivity::is_biconnected(&g), "test case must be legal");
            let c = Configuration::plain(g);
            let labeling = BiconnectivityPls.label(&c);
            let out = engine::run_deterministic(&BiconnectivityPls, &c, &labeling);
            assert!(out.accepted(), "rejecting: {:?}", out.rejecting_nodes());
        }
    }

    #[test]
    fn honest_labels_accepted_with_permuted_ids() {
        let g = generators::wheel(8);
        let c = Configuration::with_ids(g, &[70, 10, 50, 30, 80, 20, 60, 40]);
        let labeling = BiconnectivityPls.label(&c);
        assert!(engine::run_deterministic(&BiconnectivityPls, &c, &labeling).accepted());
    }

    #[test]
    fn honest_style_labels_rejected_on_path() {
        // A path is not biconnected: labeling it with its own DFS data must
        // fail P8 somewhere.
        let c = Configuration::plain(generators::path(6));
        let labeling = BiconnectivityPls.label(&c);
        assert!(!engine::run_deterministic(&BiconnectivityPls, &c, &labeling).accepted());
    }

    #[test]
    fn two_triangles_sharing_a_node_rejected() {
        let mut b = rpls_graph::GraphBuilder::new(5);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            b.add_edge(u, v).unwrap();
        }
        let c = Configuration::plain(b.finish().unwrap());
        assert!(!BiconnectivityPredicate.holds(&c));
        let labeling = BiconnectivityPls.label(&c);
        assert!(!engine::run_deterministic(&BiconnectivityPls, &c, &labeling).accepted());
        // Randomized forging also fails.
        let mut rng = StdRng::seed_from_u64(21);
        let report =
            rpls_core::adversary::random_forge(&BiconnectivityPls, &c, 40, 30, 400, &mut rng);
        assert!(!report.succeeded());
    }

    #[test]
    fn tampered_lowpt_rejected() {
        let c = Configuration::plain(generators::cycle(6));
        let mut labeling = BiconnectivityPls.label(&c);
        let mut lbl = BcLabel::decode(labeling.get(rpls_graph::NodeId::new(3))).unwrap();
        lbl.lowpt = lbl.lowpt.saturating_add(1);
        labeling.set(rpls_graph::NodeId::new(3), lbl.encode());
        assert!(!engine::run_deterministic(&BiconnectivityPls, &c, &labeling).accepted());
    }

    #[test]
    fn label_bits_are_logarithmic() {
        let small = BiconnectivityPls
            .label(&Configuration::plain(generators::cycle(8)))
            .max_bits();
        let large = BiconnectivityPls
            .label(&Configuration::plain(generators::cycle(512)))
            .max_bits();
        // n grew 64×; labels should grow by ~6 bits per log-field.
        assert!(large - small <= 6 * 6, "{small} -> {large}");
    }

    #[test]
    fn compiled_scheme_round_trip() {
        let c = Configuration::plain(generators::wheel(10));
        let scheme = CompiledRpls::new(BiconnectivityPls);
        let labeling = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 31);
        assert!(rec.outcome.accepted());
        assert!(rec.max_certificate_bits() <= 22);
    }

    #[test]
    fn label_round_trip() {
        let l = BcLabel {
            w_id: 8,
            w: 5,
            id_root: 200,
            dist: 3,
            preo: 7,
            span_lo: 7,
            span_hi: 12,
            lowpt: 1,
        };
        assert_eq!(BcLabel::decode(&l.encode()), Some(l));
        assert_eq!(BcLabel::decode(&BitString::zeros(4)), None);
    }
}
