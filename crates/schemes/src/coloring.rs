//! Proper coloring — the paper's opening example of a *locally checkable*
//! predicate (§1).
//!
//! Colors live in the states; since verifiers see neighbor *labels* rather
//! than neighbor states, the scheme copies the color into the label
//! (Θ(log C) bits for C colors) and each node checks that its label equals
//! its color and differs from every neighbor's.

use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};

const COLOR_BITS: u32 = 32;

/// Reads the color payload of a node.
#[must_use]
pub fn decode_color(bits: &BitString) -> Option<u64> {
    let mut r = BitReader::new(bits);
    let c = r.read_u64(COLOR_BITS).ok()?;
    r.is_exhausted().then_some(c)
}

/// Writes a color payload.
#[must_use]
pub fn encode_color(color: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(color, COLOR_BITS);
    w.finish()
}

/// Installs a greedy proper coloring into the payloads.
#[must_use]
pub fn greedy_coloring_config(config: &Configuration) -> Configuration {
    let g = config.graph();
    let mut colors: Vec<Option<u64>> = vec![None; g.node_count()];
    for v in g.nodes() {
        let used: std::collections::HashSet<u64> = g
            .neighbors(v)
            .filter_map(|nb| colors[nb.node.index()])
            .collect();
        let color = (0..).find(|c| !used.contains(c)).expect("finite degree");
        colors[v.index()] = Some(color);
    }
    let mut out = config.clone();
    for v in g.nodes() {
        out.state_mut(v)
            .set_payload(encode_color(colors[v.index()].expect("assigned")));
    }
    out
}

/// The proper-coloring predicate: every edge's endpoints have different
/// color payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProperColoringPredicate;

impl ProperColoringPredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Predicate for ProperColoringPredicate {
    fn name(&self) -> String {
        "proper-coloring".into()
    }

    fn holds(&self, config: &Configuration) -> bool {
        config.graph().edges().all(|(_, rec)| {
            let cu = decode_color(config.state(rec.u).payload());
            let cv = decode_color(config.state(rec.v).payload());
            matches!((cu, cv), (Some(a), Some(b)) if a != b)
        })
    }
}

/// The Θ(log C) deterministic scheme: label = color copy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringPls;

impl ColoringPls {
    /// Creates the scheme.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Pls for ColoringPls {
    fn name(&self) -> String {
        "proper-coloring".into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        config
            .states()
            .iter()
            .map(|s| s.payload().clone())
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        // Label must be the node's own color, and differ from every
        // neighbor's label.
        let Some(own) = decode_color(view.label) else {
            return false;
        };
        if Some(own) != decode_color(view.local.state.payload()) {
            return false;
        }
        view.neighbor_labels
            .iter()
            .all(|l| matches!(decode_color(l), Some(c) if c != own))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_graph::generators;
    use rpls_graph::NodeId;

    #[test]
    fn greedy_coloring_is_proper() {
        for g in [
            generators::cycle(7),
            generators::complete(5),
            generators::wheel(9),
            generators::grid(3, 3),
        ] {
            let c = greedy_coloring_config(&Configuration::plain(g));
            assert!(ProperColoringPredicate.holds(&c));
        }
    }

    #[test]
    fn honest_labels_accepted() {
        let c = greedy_coloring_config(&Configuration::plain(generators::wheel(8)));
        let labeling = ColoringPls.label(&c);
        assert!(engine::run_deterministic(&ColoringPls, &c, &labeling).accepted());
    }

    #[test]
    fn monochrome_edge_detected() {
        let mut c = greedy_coloring_config(&Configuration::plain(generators::cycle(5)));
        // Make nodes 1 and 2 share a color.
        let color = decode_color(c.state(NodeId::new(1)).payload()).unwrap();
        c.state_mut(NodeId::new(2)).set_payload(encode_color(color));
        assert!(!ProperColoringPredicate.holds(&c));
        // No labeling fools the verifier: labels are pinned to payloads.
        assert!(rpls_core::adversary::exhaustive_forge(&ColoringPls, &c, 2).is_none());
        let labeling = ColoringPls.label(&c);
        assert!(!engine::run_deterministic(&ColoringPls, &c, &labeling).accepted());
    }

    #[test]
    fn lying_label_detected() {
        let c = greedy_coloring_config(&Configuration::plain(generators::path(3)));
        let mut labeling = ColoringPls.label(&c);
        // Node 1 lies about its color.
        labeling.set(NodeId::new(1), encode_color(99));
        assert!(!engine::run_deterministic(&ColoringPls, &c, &labeling).accepted());
    }
}
