//! The `Unif` predicate of Lemma C.3: all node payloads are equal.
//!
//! The natural deterministic scheme copies the payload into the label
//! (κ = k bits — labels, unlike states, are visible across edges); its
//! compilation certifies uniformity with `O(log k)`-bit certificates. The
//! Ω(log k) side of Theorem 3.5 is proved on exactly this family.

use rpls_bits::BitString;
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};

/// The uniformity predicate `Unif`.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformityPredicate;

impl UniformityPredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Predicate for UniformityPredicate {
    fn name(&self) -> String {
        "unif".into()
    }

    fn holds(&self, config: &Configuration) -> bool {
        let mut payloads = config.states().iter().map(|s| s.payload());
        let Some(first) = payloads.next() else {
            return true;
        };
        payloads.all(|p| p == first)
    }
}

/// The k-bit deterministic scheme: label = payload copy.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformityPls;

impl UniformityPls {
    /// Creates the scheme.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Pls for UniformityPls {
    fn name(&self) -> String {
        "unif".into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        config
            .states()
            .iter()
            .map(|s| s.payload().clone())
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        // My label must be my own payload, and all neighbors must carry the
        // same label. Transitivity over the connected graph forces global
        // uniformity.
        view.label == view.local.state.payload()
            && view.neighbor_labels.iter().all(|l| *l == view.label)
    }
}

/// Workload builder: installs `payload` at every node.
#[must_use]
pub fn uniform_config(config: &Configuration, payload: &BitString) -> Configuration {
    let mut out = config.clone();
    for v in config.graph().nodes() {
        out.state_mut(v).set_payload(payload.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use rpls_core::engine;
    use rpls_core::{CompiledRpls, Rpls};
    use rpls_graph::{generators, NodeId};

    fn random_payload(k: usize, seed: u64) -> BitString {
        let mut rng = StdRng::seed_from_u64(seed);
        BitString::from_bools((0..k).map(|_| rng.random_bool(0.5)))
    }

    #[test]
    fn predicate_detects_deviation() {
        let base = Configuration::plain(generators::cycle(5));
        let c = uniform_config(&base, &random_payload(32, 1));
        assert!(UniformityPredicate.holds(&c));
        let mut bad = c.clone();
        bad.state_mut(NodeId::new(3))
            .set_payload(BitString::zeros(32));
        assert!(!UniformityPredicate.holds(&bad));
    }

    #[test]
    fn honest_labels_accepted() {
        let base = Configuration::plain(generators::path(6));
        let c = uniform_config(&base, &random_payload(100, 2));
        let labeling = UniformityPls.label(&c);
        assert!(engine::run_deterministic(&UniformityPls, &c, &labeling).accepted());
    }

    #[test]
    fn deviating_node_detected_deterministically() {
        let base = Configuration::plain(generators::path(4));
        let mut c = uniform_config(&base, &random_payload(16, 3));
        c.state_mut(NodeId::new(2))
            .set_payload(random_payload(16, 4));
        // No labeling works: each node's label is pinned to its payload.
        let labeling = UniformityPls.label(&c);
        assert!(!engine::run_deterministic(&UniformityPls, &c, &labeling).accepted());
        assert!(rpls_core::adversary::exhaustive_forge(&UniformityPls, &c, 2).is_none());
    }

    #[test]
    fn label_size_equals_k() {
        let base = Configuration::plain(generators::cycle(4));
        let c = uniform_config(&base, &random_payload(257, 5));
        assert_eq!(UniformityPls.label(&c).max_bits(), 257);
    }

    #[test]
    fn compiled_certificates_are_log_k() {
        let base = Configuration::plain(generators::cycle(6));
        let k = 4096;
        let c = uniform_config(&base, &random_payload(k, 6));
        let scheme = CompiledRpls::new(UniformityPls);
        let labeling = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 9);
        assert!(rec.outcome.accepted());
        // κ = 4096 → λ = 4128 → p < 6λ < 2^15 → cert ≤ 30 bits.
        assert!(
            rec.max_certificate_bits() <= 30,
            "{}",
            rec.max_certificate_bits()
        );
    }

    #[test]
    fn compiled_detects_deviation_probabilistically() {
        let base = Configuration::plain(generators::path(5));
        let mut c = uniform_config(&base, &random_payload(64, 7));
        c.state_mut(NodeId::new(2))
            .set_payload(random_payload(64, 8));
        let scheme = CompiledRpls::new(UniformityPls);
        // Labels from the prover run on the illegal config still pin each
        // node's claimed own-label to its payload; the replicas disagree
        // across the deviation edge either way.
        let labeling = scheme.label(&c);
        let p = rpls_core::stats::acceptance_probability(&scheme, &c, &labeling, 400, 3);
        assert!(p < 1.0 / 3.0 + 0.06, "acceptance = {p}");
    }
}
