//! Leader election certification: exactly one node holds the leader flag.
//!
//! The classic companion to the spanning-tree scheme: the label carries
//! `(id_leader, dist)` where `dist` descends to the unique node whose
//! identity equals `id_leader`. Distinct identities make the leader unique;
//! the descending-distance chains make it existent; the flag is pinned to
//! `dist = 0`. Θ(log n) deterministic, Θ(log log n) compiled.

use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::traversal;

const DIST_BITS: u32 = 32;
const ID_BITS: u32 = 64;

/// Writes a leader-flag payload.
#[must_use]
pub fn encode_flag(is_leader: bool) -> BitString {
    let mut w = BitWriter::new();
    w.write_bool(is_leader);
    w.finish()
}

/// Reads a leader-flag payload.
#[must_use]
pub fn decode_flag(bits: &BitString) -> Option<bool> {
    let mut r = BitReader::new(bits);
    let f = r.read_bool().ok()?;
    r.is_exhausted().then_some(f)
}

/// Installs a leader flag at `leader` and clears it everywhere else.
#[must_use]
pub fn leader_config(config: &Configuration, leader: rpls_graph::NodeId) -> Configuration {
    let mut out = config.clone();
    for v in config.graph().nodes() {
        out.state_mut(v).set_payload(encode_flag(v == leader));
    }
    out
}

/// The predicate: exactly one node's payload carries a set leader flag.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeaderPredicate;

impl LeaderPredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Predicate for LeaderPredicate {
    fn name(&self) -> String {
        "unique-leader".into()
    }

    fn holds(&self, config: &Configuration) -> bool {
        let flags: Option<Vec<bool>> = config
            .states()
            .iter()
            .map(|s| decode_flag(s.payload()))
            .collect();
        matches!(flags, Some(f) if f.iter().filter(|&&b| b).count() == 1)
    }
}

/// The Θ(log n) deterministic leader-uniqueness scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeaderPls;

impl LeaderPls {
    /// Creates the scheme.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

fn encode_label(leader_id: u64, dist: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(leader_id, ID_BITS);
    w.write_u64(dist, DIST_BITS);
    w.finish()
}

fn decode_label(bits: &BitString) -> Option<(u64, u64)> {
    let mut r = BitReader::new(bits);
    let id = r.read_u64(ID_BITS).ok()?;
    let d = r.read_u64(DIST_BITS).ok()?;
    r.is_exhausted().then_some((id, d))
}

impl Pls for LeaderPls {
    fn name(&self) -> String {
        "unique-leader".into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let g = config.graph();
        let leader = g
            .nodes()
            .find(|&v| decode_flag(config.state(v).payload()) == Some(true))
            .expect("legal configuration has a leader");
        let leader_id = config.state(leader).id();
        let bfs = traversal::bfs(g, leader);
        g.nodes()
            .map(|v| encode_label(leader_id, bfs.dist[v.index()].expect("connected") as u64))
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some((leader_id, dist)) = decode_label(view.label) else {
            return false;
        };
        let Some(flag) = decode_flag(view.local.state.payload()) else {
            return false;
        };
        // Flag pinned to distance 0, which is pinned to owning the id.
        if flag != (dist == 0) {
            return false;
        }
        if dist == 0 && view.local.state.id() != leader_id {
            return false;
        }
        if dist > 0 && view.local.state.id() == leader_id {
            return false;
        }
        let mut closer = false;
        for l in &view.neighbor_labels {
            let Some((lid, d)) = decode_label(l) else {
                return false;
            };
            if lid != leader_id {
                return false;
            }
            if dist > 0 && d == dist - 1 {
                closer = true;
            }
        }
        dist == 0 || closer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_graph::{generators, NodeId};

    #[test]
    fn predicate_counts_flags() {
        let base = Configuration::plain(generators::cycle(5));
        assert!(LeaderPredicate.holds(&leader_config(&base, NodeId::new(2))));
        // Zero leaders.
        let mut zero = base.clone();
        for v in base.graph().nodes() {
            zero.state_mut(v).set_payload(encode_flag(false));
        }
        assert!(!LeaderPredicate.holds(&zero));
        // Two leaders.
        let mut two = leader_config(&base, NodeId::new(1));
        two.state_mut(NodeId::new(3)).set_payload(encode_flag(true));
        assert!(!LeaderPredicate.holds(&two));
    }

    #[test]
    fn honest_labels_accepted() {
        let base = Configuration::plain(generators::grid(3, 4));
        let c = leader_config(&base, NodeId::new(7));
        let labeling = LeaderPls.label(&c);
        assert!(engine::run_deterministic(&LeaderPls, &c, &labeling).accepted());
    }

    #[test]
    fn two_leaders_unforgeable() {
        let base = Configuration::plain(generators::path(3));
        let mut c = leader_config(&base, NodeId::new(0));
        c.state_mut(NodeId::new(2)).set_payload(encode_flag(true));
        assert!(rpls_core::adversary::exhaustive_forge(&LeaderPls, &c, 3).is_none());
    }

    #[test]
    fn zero_leaders_unforgeable() {
        let base = Configuration::plain(generators::path(3));
        let mut c = base.clone();
        for v in base.graph().nodes() {
            c.state_mut(v).set_payload(encode_flag(false));
        }
        assert!(rpls_core::adversary::exhaustive_forge(&LeaderPls, &c, 3).is_none());
    }

    #[test]
    fn flag_distance_mismatch_rejected() {
        let base = Configuration::plain(generators::cycle(4));
        let c = leader_config(&base, NodeId::new(0));
        let mut labeling = LeaderPls.label(&c);
        // Pretend node 2 is at distance 0 (without the flag): rejected.
        labeling.set(NodeId::new(2), encode_label(0, 0));
        assert!(!engine::run_deterministic(&LeaderPls, &c, &labeling).accepted());
    }
}
