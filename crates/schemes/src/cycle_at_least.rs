//! The `cycle-at-least-c` predicate and its O(log n) scheme (Theorem 5.3).
//!
//! The prover marks a longest cycle `C`: every node is labeled with
//! `(dist, index)` — its hop distance to `C` and, on the cycle, its
//! clockwise position. The verifier is the disjunction of the paper's two
//! predicates:
//!
//! * **P1** (`dist = 0`): some neighbor at distance 0 carries index `i+1`
//!   (or wraps to 0 from an index ≥ c−1) and some neighbor carries `i−1`
//!   (or an index ≥ c−1 when `i = 0`);
//! * **P2** (`dist > 0`): some neighbor is closer to the cycle.
//!
//! P1 is stated here with *some* rather than the paper's *exactly two*
//! cycle-neighbors: the relaxation keeps the soundness argument intact
//! (following successor indices still yields an infinite index sequence
//! that must close a cycle of length ≥ c, since a wrap needs a preceding
//! index ≥ c−1) while restoring completeness on graphs whose longest cycle
//! has chords — e.g. the wheel of Figure 2, where `v0` has many
//! distance-0 neighbors.

use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::{cycles, NodeId};

const FIELD_BITS: u32 = 32;

/// The `cycle-at-least-c` predicate.
#[derive(Debug, Clone, Copy)]
pub struct CycleAtLeastPredicate {
    c: usize,
}

impl CycleAtLeastPredicate {
    /// The predicate "some simple cycle has at least `c` nodes".
    #[must_use]
    pub fn new(c: usize) -> Self {
        Self { c }
    }

    /// The threshold `c`.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.c
    }
}

impl Predicate for CycleAtLeastPredicate {
    fn name(&self) -> String {
        format!("cycle-at-least-{}", self.c)
    }

    fn holds(&self, config: &Configuration) -> bool {
        cycles::has_cycle_at_least(config.graph(), self.c)
    }
}

/// The O(log n) deterministic scheme of Theorem 5.3.
#[derive(Debug, Clone, Copy)]
pub struct CycleAtLeastPls {
    c: usize,
}

impl CycleAtLeastPls {
    /// The scheme for threshold `c`.
    #[must_use]
    pub fn new(c: usize) -> Self {
        Self { c }
    }
}

fn encode_label(dist: u64, index: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(dist, FIELD_BITS);
    w.write_u64(index, FIELD_BITS);
    w.finish()
}

fn decode_label(bits: &BitString) -> Option<(u64, u64)> {
    let mut r = BitReader::new(bits);
    let dist = r.read_u64(FIELD_BITS).ok()?;
    let index = r.read_u64(FIELD_BITS).ok()?;
    r.is_exhausted().then_some((dist, index))
}

/// Finds a longest cycle as an ordered node sequence (exact search, so
/// intended for the moderate sizes of the experiments).
fn longest_cycle_nodes(g: &rpls_graph::Graph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    assert!(n <= 64, "exact cycle search limited to 64 nodes");
    let mut best: Option<Vec<NodeId>> = None;

    fn dfs(
        g: &rpls_graph::Graph,
        start: NodeId,
        v: NodeId,
        on_path: &mut Vec<bool>,
        path: &mut Vec<NodeId>,
        best: &mut Option<Vec<NodeId>>,
    ) -> bool {
        for nb in g.neighbors(v) {
            let w = nb.node;
            if w == start && path.len() >= 3 && best.as_ref().is_none_or(|b| path.len() > b.len()) {
                *best = Some(path.clone());
                if path.len() == g.node_count() {
                    return true;
                }
            }
            if w.index() <= start.index() || on_path[w.index()] {
                continue;
            }
            on_path[w.index()] = true;
            path.push(w);
            let done = dfs(g, start, w, on_path, path, best);
            path.pop();
            on_path[w.index()] = false;
            if done {
                return true;
            }
        }
        false
    }

    let mut on_path = vec![false; n];
    let mut path = Vec::new();
    for start in g.nodes() {
        on_path[start.index()] = true;
        path.push(start);
        let done = dfs(g, start, start, &mut on_path, &mut path, &mut best);
        path.pop();
        on_path[start.index()] = false;
        if done {
            break;
        }
    }
    best
}

impl Pls for CycleAtLeastPls {
    fn name(&self) -> String {
        format!("cycle-at-least-{}", self.c)
    }

    fn label(&self, config: &Configuration) -> Labeling {
        let g = config.graph();
        let cycle = longest_cycle_nodes(g).expect("legal configuration has a cycle");
        assert!(cycle.len() >= self.c, "legal configuration");
        let mut index = vec![0u64; g.node_count()];
        let mut dist = vec![u64::MAX; g.node_count()];
        let mut queue = std::collections::VecDeque::new();
        for (i, &v) in cycle.iter().enumerate() {
            index[v.index()] = i as u64;
            dist[v.index()] = 0;
            queue.push_back(v);
        }
        while let Some(v) = queue.pop_front() {
            for nb in g.neighbors(v) {
                if dist[nb.node.index()] == u64::MAX {
                    dist[nb.node.index()] = dist[v.index()] + 1;
                    queue.push_back(nb.node);
                }
            }
        }
        g.nodes()
            .map(|v| encode_label(dist[v.index()], index[v.index()]))
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some((dist, index)) = decode_label(view.label) else {
            return false;
        };
        let mut parsed = Vec::with_capacity(view.neighbor_labels.len());
        for l in &view.neighbor_labels {
            let Some(p) = decode_label(l) else {
                return false;
            };
            parsed.push(p);
        }
        let c = self.c as u64;
        if dist == 0 {
            // P1: a successor and a predecessor on the cycle.
            let successor = parsed
                .iter()
                .any(|&(d, i)| d == 0 && (i == index + 1 || (index >= c - 1 && i == 0)));
            let predecessor = parsed.iter().any(|&(d, i)| {
                d == 0 && (index > 0 && i == index - 1 || (index == 0 && i >= c - 1))
            });
            successor && predecessor
        } else {
            // P2: someone is closer to the cycle.
            parsed.iter().any(|&(d, _)| d == dist - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_core::{CompiledRpls, Rpls};
    use rpls_graph::generators;

    #[test]
    fn predicate_thresholds() {
        let c8 = Configuration::plain(generators::cycle(8));
        assert!(CycleAtLeastPredicate::new(8).holds(&c8));
        assert!(CycleAtLeastPredicate::new(5).holds(&c8));
        assert!(!CycleAtLeastPredicate::new(9).holds(&c8));
        let tree = Configuration::plain(generators::path(8));
        assert!(!CycleAtLeastPredicate::new(3).holds(&tree));
    }

    #[test]
    fn honest_labels_accepted_on_plain_cycles() {
        for n in [4usize, 7, 12] {
            let c = Configuration::plain(generators::cycle(n));
            let scheme = CycleAtLeastPls::new(n);
            let labeling = scheme.label(&c);
            let out = engine::run_deterministic(&scheme, &c, &labeling);
            assert!(out.accepted(), "n = {n}");
        }
    }

    #[test]
    fn honest_labels_accepted_on_wheel_with_tail() {
        // The Theorem 5.4 graph: cycle part of length 8 with chords and
        // pendant spokes — the chords exercise the charitable P1.
        let g = generators::wheel_with_tail(13, 8);
        let c = Configuration::plain(g);
        let scheme = CycleAtLeastPls::new(8);
        let labeling = scheme.label(&c);
        let out = engine::run_deterministic(&scheme, &c, &labeling);
        assert!(out.accepted(), "rejecting: {:?}", out.rejecting_nodes());
    }

    #[test]
    fn honest_labels_accepted_on_wheel() {
        let c = Configuration::plain(generators::wheel(9));
        let scheme = CycleAtLeastPls::new(9);
        let labeling = scheme.label(&c);
        assert!(engine::run_deterministic(&scheme, &c, &labeling).accepted());
    }

    #[test]
    fn trees_cannot_be_certified_small_exhaustive() {
        let c = Configuration::plain(generators::path(3));
        let scheme = CycleAtLeastPls::new(3);
        assert!(rpls_core::adversary::exhaustive_forge(&scheme, &c, 4).is_none());
    }

    #[test]
    fn short_cycle_cannot_claim_long_one() {
        // C4 cannot be certified as cycle-at-least-6: indices around the
        // square would need a wrap from ≥ 5, impossible with 4 nodes...
        // checked by randomized forging with generous budgets.
        let c = Configuration::plain(generators::cycle(4));
        let scheme = CycleAtLeastPls::new(6);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let report = rpls_core::adversary::random_forge(&scheme, &c, 64, 40, 400, &mut rng);
        assert!(!report.succeeded());
        // And exhaustively with 3-bit labels.
        assert!(rpls_core::adversary::exhaustive_forge(&scheme, &c, 3).is_none());
    }

    #[test]
    fn compiled_scheme_round_trip() {
        let c = Configuration::plain(generators::cycle(10));
        let scheme = CompiledRpls::new(CycleAtLeastPls::new(10));
        let labeling = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 123);
        assert!(rec.outcome.accepted());
        assert!(rec.max_certificate_bits() <= 20);
    }

    #[test]
    fn wrap_requires_large_index() {
        // Hand-label C4 claiming c = 6 with indices 0,1,2,3: node 3 has no
        // valid successor (cannot wrap from 3 < 5), so it rejects.
        let c = Configuration::plain(generators::cycle(4));
        let scheme = CycleAtLeastPls::new(6);
        let labeling: Labeling = (0..4).map(|i| encode_label(0, i as u64)).collect();
        let out = engine::run_deterministic(&scheme, &c, &labeling);
        assert!(!out.accepted());
        assert!(out.rejecting_nodes().contains(&NodeId::new(3)));
    }
}
