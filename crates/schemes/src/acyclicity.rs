//! Acyclicity: the Θ(log n) scheme underlying the Theorem 5.1 lower bound.
//!
//! Over the family of connected graphs, *acyclic* means *tree*. The scheme
//! labels every node with `(id(r), d(v))` — the identity of a root chosen
//! by the prover and the tree distance to it. The verifier accepts iff all
//! neighbors agree on `id(r)` and the distances look like a tree from `v`'s
//! seat:
//!
//! * `d(v) = 0` ⟹ `id(v) = id(r)` and every neighbor has distance 1;
//! * `d(v) > 0` ⟹ exactly one neighbor has distance `d(v) − 1` and every
//!   other neighbor has distance `d(v) + 1`.
//!
//! Soundness: on any cycle all adjacent distance differences are forced to
//! ±1, so a maximum-distance node of the cycle sees two neighbors at
//! `d − 1` and rejects.

use rpls_bits::{BitReader, BitString, BitWriter};
use rpls_core::{Configuration, DetView, Labeling, Pls, Predicate};
use rpls_graph::{cycles, traversal};

const DIST_BITS: u32 = 32;
const ID_BITS: u32 = 64;

/// The acyclicity predicate (`G` is a forest).
#[derive(Debug, Clone, Copy, Default)]
pub struct AcyclicityPredicate;

impl AcyclicityPredicate {
    /// Creates the predicate.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Predicate for AcyclicityPredicate {
    fn name(&self) -> String {
        "acyclicity".into()
    }

    fn holds(&self, config: &Configuration) -> bool {
        cycles::is_forest(config.graph())
    }
}

/// The Θ(log n) deterministic acyclicity scheme for connected graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcyclicityPls;

impl AcyclicityPls {
    /// Creates the scheme.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

fn encode_label(root_id: u64, dist: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_u64(root_id, ID_BITS);
    w.write_u64(dist, DIST_BITS);
    w.finish()
}

fn decode_label(bits: &BitString) -> Option<(u64, u64)> {
    let mut r = BitReader::new(bits);
    let root_id = r.read_u64(ID_BITS).ok()?;
    let dist = r.read_u64(DIST_BITS).ok()?;
    r.is_exhausted().then_some((root_id, dist))
}

impl Pls for AcyclicityPls {
    fn name(&self) -> String {
        "acyclicity".into()
    }

    fn label(&self, config: &Configuration) -> Labeling {
        // Root at the minimum-identity node; BFS = tree distance on trees.
        let g = config.graph();
        let root = g
            .nodes()
            .min_by_key(|&v| config.state(v).id())
            .expect("nonempty graph");
        let root_id = config.state(root).id();
        let bfs = traversal::bfs(g, root);
        g.nodes()
            .map(|v| {
                let d = bfs.dist[v.index()].expect("connected graph") as u64;
                encode_label(root_id, d)
            })
            .collect()
    }

    fn verify(&self, view: &DetView<'_>) -> bool {
        let Some((root_id, dist)) = decode_label(view.label) else {
            return false;
        };
        let mut below = 0usize;
        for l in &view.neighbor_labels {
            let Some((rid, d)) = decode_label(l) else {
                return false;
            };
            if rid != root_id {
                return false;
            }
            if dist > 0 && d == dist - 1 {
                below += 1;
            } else if d != dist + 1 {
                return false;
            }
        }
        if dist == 0 {
            view.local.state.id() == root_id
        } else {
            below == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpls_core::engine;
    use rpls_core::{CompiledRpls, Rpls};
    use rpls_graph::generators;
    use rpls_graph::NodeId;

    #[test]
    fn predicate_matches_ground_truth() {
        assert!(AcyclicityPredicate.holds(&Configuration::plain(generators::path(6))));
        assert!(
            AcyclicityPredicate.holds(&Configuration::plain(generators::balanced_binary_tree(3)))
        );
        assert!(!AcyclicityPredicate.holds(&Configuration::plain(generators::cycle(6))));
    }

    #[test]
    fn honest_labels_accepted_on_trees() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [2usize, 3, 10, 40] {
            let c = Configuration::plain(generators::random_tree(n, &mut rng));
            let labeling = AcyclicityPls.label(&c);
            assert!(
                engine::run_deterministic(&AcyclicityPls, &c, &labeling).accepted(),
                "n = {n}"
            );
        }
        // Also on paths with permuted ids (root = min id, not index 0).
        let c = Configuration::with_ids(generators::path(5), &[9, 3, 7, 1, 5]);
        let labeling = AcyclicityPls.label(&c);
        assert!(engine::run_deterministic(&AcyclicityPls, &c, &labeling).accepted());
    }

    #[test]
    fn cycles_cannot_be_certified_small_exhaustive() {
        // On C3 with 4-bit labels, no assignment fools the verifier.
        let c = Configuration::plain(generators::cycle(3));
        assert!(rpls_core::adversary::exhaustive_forge(&AcyclicityPls, &c, 4).is_none());
    }

    #[test]
    fn cycles_reject_honest_style_labels() {
        // Even distances computed from a BFS of the cycle get rejected.
        let c = Configuration::plain(generators::cycle(8));
        let labeling = AcyclicityPls.label(&c);
        assert!(!engine::run_deterministic(&AcyclicityPls, &c, &labeling).accepted());
    }

    #[test]
    fn max_node_on_cycle_rejects() {
        // Hand-build the fooling attempt from the soundness argument: label
        // around C4 with distances 0,1,2,1 — the node with distance 2 sees
        // two neighbors at 1 and rejects.
        let c = Configuration::plain(generators::cycle(4));
        let labeling: Labeling = [0u64, 1, 2, 1]
            .iter()
            .map(|&d| encode_label(0, d))
            .collect();
        let out = engine::run_deterministic(&AcyclicityPls, &c, &labeling);
        assert!(!out.accepted());
        assert!(out.rejecting_nodes().contains(&NodeId::new(2)));
    }

    #[test]
    fn compiled_certificates_are_loglog() {
        let c = Configuration::plain(generators::path(64));
        let scheme = CompiledRpls::new(AcyclicityPls);
        let labeling = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 9);
        assert!(rec.outcome.accepted());
        // κ = 96 bits → λ = 128 → p < 768 → cert ≤ 2·10 bits.
        assert!(rec.max_certificate_bits() <= 20);
    }

    #[test]
    fn disagreeing_root_ids_rejected() {
        let c = Configuration::plain(generators::path(4));
        let mut labeling = AcyclicityPls.label(&c);
        let (_, d) = decode_label(labeling.get(NodeId::new(2))).unwrap();
        labeling.set(NodeId::new(2), encode_label(42, d));
        assert!(!engine::run_deterministic(&AcyclicityPls, &c, &labeling).accepted());
    }
}
