//! The `cycle-at-most-c` predicate (Theorem 5.6).
//!
//! The paper shows this predicate is co-NP-hard to certify efficiently
//! (`c = n − 1` is the complement of Hamiltonicity): a polynomial-size,
//! polynomially-verifiable PLS would imply NP = co-NP. The best known
//! scheme is the *universal* one of Lemma 3.3 (with unbounded node
//! computation), so this module provides the predicate plus constructors
//! instantiating the universal deterministic and randomized schemes for it.

use rpls_core::universal::{universal_rpls, UniversalPls, UniversalRpls};
use rpls_core::{Configuration, Predicate};
use rpls_graph::cycles;

/// The `cycle-at-most-c` predicate.
#[derive(Debug, Clone, Copy)]
pub struct CycleAtMostPredicate {
    c: usize,
}

impl CycleAtMostPredicate {
    /// The predicate "every simple cycle has at most `c` nodes".
    #[must_use]
    pub fn new(c: usize) -> Self {
        Self { c }
    }

    /// The threshold `c`.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.c
    }
}

impl Predicate for CycleAtMostPredicate {
    fn name(&self) -> String {
        format!("cycle-at-most-{}", self.c)
    }

    fn holds(&self, config: &Configuration) -> bool {
        cycles::all_cycles_at_most(config.graph(), self.c)
    }
}

/// The universal deterministic scheme for `cycle-at-most-c` (Lemma 3.3 —
/// the best known PLS for this co-NP-hard predicate).
#[must_use]
pub fn cycle_at_most_pls(c: usize) -> UniversalPls<CycleAtMostPredicate> {
    UniversalPls::new(CycleAtMostPredicate::new(c))
}

/// The universal randomized scheme for `cycle-at-most-c` (Corollary 3.4):
/// `O(log n)`-bit certificates despite the predicate's hardness.
#[must_use]
pub fn cycle_at_most_rpls(c: usize) -> UniversalRpls<CycleAtMostPredicate> {
    universal_rpls(CycleAtMostPredicate::new(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpls_core::engine;
    use rpls_core::{Pls, Rpls};
    use rpls_graph::generators;

    #[test]
    fn predicate_on_chain_of_cycles() {
        // Figure 5: every cycle has exactly `len` nodes.
        let g = generators::chain_of_cycles(3, 6);
        let c = Configuration::plain(g);
        assert!(CycleAtMostPredicate::new(6).holds(&c));
        assert!(!CycleAtMostPredicate::new(5).holds(&c));
    }

    #[test]
    fn trees_satisfy_any_threshold() {
        let c = Configuration::plain(generators::path(6));
        assert!(CycleAtMostPredicate::new(1).holds(&c));
    }

    #[test]
    fn universal_pls_certifies_chain() {
        let g = generators::chain_of_cycles(2, 5);
        let c = Configuration::plain(g);
        let scheme = cycle_at_most_pls(5);
        let labeling = scheme.label(&c);
        assert!(engine::run_deterministic(&scheme, &c, &labeling).accepted());
    }

    #[test]
    fn universal_pls_rejects_honest_encoding_of_violation() {
        // A 6-cycle violates cycle-at-most-5: every node rejects the honest
        // representation because the predicate fails on it.
        let c = Configuration::plain(generators::cycle(6));
        let scheme = cycle_at_most_pls(5);
        let labeling = scheme.label(&c);
        assert!(!engine::run_deterministic(&scheme, &c, &labeling).accepted());
    }

    #[test]
    fn universal_rpls_round_trip() {
        let g = generators::chain_of_cycles(2, 4);
        let c = Configuration::plain(g);
        let scheme = cycle_at_most_rpls(4);
        let labeling = scheme.label(&c);
        let rec = engine::run_randomized(&scheme, &c, &labeling, 5);
        assert!(rec.outcome.accepted());
        // Certificates are logarithmic even though labels hold the whole
        // graph.
        assert!(rec.max_certificate_bits() < labeling.max_bits() / 4);
    }
}
