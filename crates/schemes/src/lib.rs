//! Concrete proof-labeling schemes for the predicates studied in §5 of
//! *Randomized Proof-Labeling Schemes*, plus the classics they build on.
//!
//! Every module ships: the **predicate** (centralized ground truth), a
//! **workload builder** installing realistic states (the output of the
//! distributed algorithm being checked), the **deterministic PLS** with the
//! label layout the paper describes, and — via
//! [`CompiledRpls`](rpls_core::CompiledRpls) — its randomized compilation.
//!
//! | Module | Predicate | Det. bits | Rand. bits | Paper |
//! |---|---|---|---|---|
//! | [`spanning_tree`] | parent pointers form a spanning tree | Θ(log n) | Θ(log log n) | §1 intro |
//! | [`acyclicity`]    | the graph is acyclic (a tree, in `F_con`) | Θ(log n) | Θ(log log n) | Thm 5.1 lower bound |
//! | [`mst`]           | marked edges form a minimum spanning tree | O(log² n) | O(log log n) | Thm 5.1 |
//! | [`biconnectivity`] | no articulation point (`v2con`) | Θ(log n) | Θ(log log n) | Thm 5.2, App. E |
//! | [`cycle_at_least`] | some simple cycle has ≥ c nodes | O(log n) | O(log log n) | Thm 5.3 |
//! | [`cycle_at_most`]  | every simple cycle has ≤ c nodes | universal only | universal only | Thm 5.6 |
//! | [`uniformity`]    | all node payloads equal (`Unif`) | Θ(k) | Θ(log k) | Lemma C.3 |
//! | [`symmetry`]      | `Sym`: an edge splits G into isomorphic halves | universal | universal | Lemma C.1 |
//! | [`coloring`]      | the payload colors are proper | Θ(log C) | Θ(log log C) | §1 example |
//! | [`flow`]          | max s–t flow equals k | O(k log n) | O(log k + log log n) | §5.2 remark |
//! | [`vertex_connectivity`] | s–t vertex connectivity equals k | O(k log n) | O(log k + log log n) | §5.2 |
//! | [`leader`]        | exactly one leader flag | Θ(log n) | Θ(log log n) | classic |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclicity;
pub mod biconnectivity;
pub mod coloring;
pub mod cycle_at_least;
pub mod cycle_at_most;
pub mod flow;
pub mod leader;
pub mod mst;
pub mod spanning_tree;
pub mod symmetry;
pub mod uniformity;
pub mod vertex_connectivity;
