//! Collection strategies.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A half-open range of collection sizes. Exists (as upstream) so that a
/// bare `0..32` literal in a `vec(...)` call infers as `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            start: *r.start(),
            end: r.end().checked_add(1).expect("size range end overflows"),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            start: len,
            end: len + 1,
        }
    }
}

/// Strategy for `Vec<T>` with a range-driven length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A vector whose length is drawn uniformly from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use rand::SeedableRng;

    #[test]
    fn nested_vec_of_tuples_samples() {
        let strat = vec((any::<bool>(), 1u32..5), 0..4);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 4);
            for (_, x) in v {
                assert!((1..5).contains(&x));
            }
        }
    }

    #[test]
    fn inclusive_and_exact_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = vec(any::<u8>(), 2..=3).sample(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            let w = vec(any::<u8>(), 5).sample(&mut rng);
            assert_eq!(w.len(), 5);
        }
    }
}
