//! A vendored, dependency-free subset of the `proptest` API.
//!
//! The workspace's property tests use a small surface of proptest:
//! the [`proptest!`] macro with `ident in strategy` bindings, integer and
//! float range strategies, [`any`], [`collection::vec`], tuple strategies,
//! and the `prop_assert*` / `prop_assume!` macros. This crate implements
//! exactly that surface on a deterministic, seedable runner so the tests
//! behave identically on every machine and run offline.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its case index and seed instead;
//! * the default case count is 64 (upstream: 256) to keep the tier-1 suite
//!   fast; override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * generation is derived from a fixed per-test seed, so failures are
//!   reproducible without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Runner configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed with the given message.
    Fail(String),
}

/// A value generator. The shim equivalent of proptest's `Strategy`,
/// without shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Deterministic per-(test, case) generator used by the [`proptest!`]
/// expansion.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value from the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u8
    }
}
impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u16
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// The public names a test file pulls in with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for supported syntax:
/// an optional `#![proptest_config(...)]` header followed by
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Rejected cases (prop_assume!) are retried with fresh inputs
            // rather than counted against the budget, so every run executes
            // the full `cases` assertions — mirroring upstream's
            // max_global_rejects behaviour.
            let max_rejects = config.cases.saturating_mul(16).max(256);
            let mut executed: u32 = 0;
            let mut rejects: u32 = 0;
            let mut attempt: u32 = 0;
            while executed < config.cases {
                let case = attempt;
                attempt += 1;
                let mut __proptest_rng = $crate::test_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "proptest {}: {rejects} rejected cases with only {executed} \
                             executed — the strategy almost never satisfies prop_assume!",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                        stringify!($left),
                        stringify!($right),
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}\n  left: {l:?}\n right: {r:?}",
                        format!($($fmt)+),
                    )));
                }
            }
        }
    };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u8..4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 4, "b = {b}");
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_and_assume(pair in (any::<u64>(), 1u32..=8)) {
            prop_assume!(pair.0 != 0);
            prop_assert_eq!(pair.0, pair.0);
            prop_assert!(pair.1 >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments on entries must parse.
        #[test]
        fn config_override_applies(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use rand::Rng;
        let a = crate::test_rng("foo", 3).next_u64();
        let b = crate::test_rng("foo", 3).next_u64();
        let c = crate::test_rng("foo", 4).next_u64();
        let d = crate::test_rng("bar", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
