//! Experiments for §4: the crossing lower-bound machinery.

use crate::table::{fmt_b, fmt_f, Table};
use rpls_core::{engine, CompiledRpls, Pls, Rpls};
use rpls_crossing::det_attack::{collision_free_budget, det_attack_truncated, det_crossing_attack};
use rpls_crossing::onesided_attack::onesided_crossing_attack;
use rpls_crossing::rounded::twosided_crossing_attack;
use rpls_crossing::{families, ModDistancePls};
use rpls_graph::cycles;
use rpls_schemes::acyclicity::AcyclicityPls;

/// E-4.3 — Proposition 4.3 / Theorem 4.4: the deterministic pigeonhole
/// attack. Below `log₂(r)/2s` bits a colliding pair always exists and the
/// crossing is invisible to every node.
#[must_use]
pub fn e43_det_crossing() -> Table {
    let mut t = Table::new(
        "E-4.3  deterministic crossing (Prop 4.3 / Thm 4.4)",
        &[
            "family",
            "r",
            "threshold log2(r)/2s",
            "label bits B",
            "collision",
            "views preserved",
            "predicate flipped",
            "verifier fooled",
        ],
    );
    for n in [39usize, 120, 300] {
        let f = families::acyclicity_path(n);
        for bits in [1u32, 2, 4, 8] {
            let scheme = ModDistancePls::new(bits);
            let labeling = scheme.label(&f.config);
            let report = det_crossing_attack(&f, &labeling);
            let (flipped, fooled) = match &report.crossed {
                Some(crossed) => {
                    let flipped = cycles::has_cycle(crossed.graph());
                    let accepted_before =
                        engine::run_deterministic(&scheme, &f.config, &labeling).accepted();
                    let accepted_after =
                        engine::run_deterministic(&scheme, crossed, &labeling).accepted();
                    (flipped, accepted_before && accepted_after)
                }
                None => (false, false),
            };
            t.push_row(vec![
                f.name.clone(),
                f.copy_count().to_string(),
                fmt_f(f.det_threshold_bits()),
                bits.to_string(),
                fmt_b(report.collision.is_some()),
                fmt_b(report.views_preserved),
                fmt_b(flipped),
                fmt_b(fooled),
            ]);
        }
    }
    // Honest Θ(log n) labels: the attack must find no collision.
    let f = families::acyclicity_path(120);
    let labeling = AcyclicityPls.label(&f.config);
    let report = det_crossing_attack(&f, &labeling);
    t.push_row(vec![
        format!("{} honest", f.name),
        f.copy_count().to_string(),
        fmt_f(f.det_threshold_bits()),
        labeling.max_bits().to_string(),
        fmt_b(report.collision.is_some()),
        fmt_b(report.views_preserved),
        "-".into(),
        "no".into(),
    ]);
    // Measured collision-free budget vs the theoretical threshold.
    for n in [39usize, 120, 300, 900] {
        let f = families::acyclicity_path(n);
        let labeling = AcyclicityPls.label(&f.config);
        let budget = collision_free_budget(&f, &labeling);
        t.push_note(format!(
            "n={n}: r={}, threshold {:.2} bits, measured collision-free budget {} bits",
            f.copy_count(),
            f.det_threshold_bits(),
            budget
        ));
        let _ = det_attack_truncated(&f, &labeling, budget.saturating_sub(1));
    }
    t
}

/// E-4.8 — Proposition 4.8: the support pigeonhole against one-sided
/// schemes. Colliding supports transfer acceptance probability 1 to the
/// crossed (illegal) configuration.
#[must_use]
pub fn e48_onesided_crossing() -> Table {
    let mut t = Table::new(
        "E-4.8  one-sided support crossing (Prop 4.8)",
        &[
            "inner bits B",
            "r",
            "rand threshold loglog(r)/2s",
            "support collision",
            "accept original",
            "accept crossed",
            "fooled w.p. 1",
        ],
    );
    let f = families::acyclicity_path(39);
    for bits in [1u32, 2, 8] {
        let scheme = CompiledRpls::new(ModDistancePls::new(bits));
        let labeling = scheme.label(&f.config);
        let report = onesided_crossing_attack(&scheme, &f, &labeling, 900, 80, 0x48);
        t.push_row(vec![
            bits.to_string(),
            f.copy_count().to_string(),
            fmt_f(f.rand_threshold_bits()),
            fmt_b(report.collision.is_some()),
            fmt_f(report.original_acceptance),
            fmt_f(report.crossed_acceptance),
            fmt_b(report.succeeded()),
        ]);
    }
    t.push_note("B=8 inner labels are distinct along the path: supports differ, no attack");
    t
}

/// E-4.6 — Proposition 4.6: ε-rounded distributions for two-sided
/// edge-independent schemes; the acceptance gap across the crossing stays
/// below 1/3 for colliding pairs.
#[must_use]
pub fn e46_rounded_crossing() -> Table {
    let mut t = Table::new(
        "E-4.6  two-sided rounded-distribution crossing (Prop 4.6)",
        &[
            "inner bits B",
            "epsilon",
            "distribution collision",
            "accept original",
            "accept crossed",
            "gap",
            "gap < 1/3",
        ],
    );
    let f = families::acyclicity_path(39);
    for (bits, epsilon) in [(1u32, 0.01), (1, 0.001), (2, 0.01), (8, 0.001)] {
        let scheme = CompiledRpls::new(ModDistancePls::new(bits));
        let labeling = scheme.label(&f.config);
        let report = twosided_crossing_attack(&scheme, &f, &labeling, epsilon, 900, 120, 0x46);
        t.push_row(vec![
            bits.to_string(),
            fmt_f(epsilon),
            fmt_b(report.collision.is_some()),
            fmt_f(report.original_acceptance),
            fmt_f(report.crossed_acceptance),
            fmt_f(report.acceptance_gap()),
            fmt_b(report.collision.is_none() || report.acceptance_gap() < 1.0 / 3.0),
        ]);
    }
    t.push_note("edge-independence holds by construction in the engine (Definition 4.5)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e43_below_threshold_rows_are_fooled() {
        let t = e43_det_crossing();
        // B = 1 rows (index 0, 4, 8) must be full attacks.
        for row in t.rows().iter().filter(|r| r[3] == "1") {
            assert_eq!(row[4], "yes", "{row:?}");
            assert_eq!(row[5], "yes");
            assert_eq!(row[6], "yes");
            assert_eq!(row[7], "yes");
        }
        // The honest row must have no collision.
        let honest = t.rows().iter().find(|r| r[0].contains("honest")).unwrap();
        assert_eq!(honest[4], "no");
    }

    #[test]
    fn e48_small_budget_fooled_large_not() {
        let t = e48_onesided_crossing();
        let first = &t.rows()[0];
        assert_eq!(first[6], "yes", "{first:?}");
        let last = &t.rows()[t.row_count() - 1];
        assert_eq!(last[3], "no", "{last:?}");
    }

    #[test]
    fn e46_gaps_below_one_third() {
        let t = e46_rounded_crossing();
        for row in t.rows() {
            assert_eq!(row[6], "yes", "{row:?}");
        }
    }
}
