//! Experiments for §3: the compiler, the universal schemes, and the
//! Θ(log n + log k) tightness.

use crate::table::{fmt_b, fmt_f, Table};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rpls_bits::BitString;
use rpls_core::engine::{self, mix_seed};
use rpls_core::scheme::FnPredicate;
use rpls_core::universal::{universal_rpls, UniversalPls};
use rpls_core::{CompiledRpls, Configuration, Pls, Rpls};
use rpls_fingerprint::prime::next_prime;
use rpls_fingerprint::EqProtocol;
use rpls_graph::{connectivity, generators, NodeId};
use rpls_schemes::acyclicity::AcyclicityPls;
use rpls_schemes::biconnectivity::BiconnectivityPls;
use rpls_schemes::mst::{mst_config, MstPls};
use rpls_schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use rpls_schemes::uniformity::{uniform_config, UniformityPls};

fn random_bits(len: usize, rng: &mut StdRng) -> BitString {
    BitString::from_bools((0..len).map(|_| rng.random_bool(0.5)))
}

/// E-A1 — Lemma A.1: the equality protocol's communication is Θ(log λ)
/// with one-sided error < 1/3, measured.
#[must_use]
pub fn ea1_eq_protocol() -> Table {
    let mut t = Table::new(
        "E-A1  equality protocol (Lemma A.1): bits = Theta(log lambda), error < 1/3",
        &[
            "lambda",
            "prime p",
            "message bits",
            "2*ceil(log2 6*lambda)",
            "bound (l-1)/p",
            "measured false-accept",
            "equal always accepted",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xA1);
    let trials = 4000;
    for lambda in [16usize, 64, 256, 1024, 4096, 16384] {
        let proto = EqProtocol::for_length(lambda);
        let a = random_bits(lambda, &mut rng);
        let mut flipped: Vec<bool> = a.iter().collect();
        flipped[lambda / 2] = !flipped[lambda / 2];
        let b = BitString::from_bools(flipped);
        let false_accepts = (0..trials)
            .filter(|_| {
                let msg = proto.alice_message(&a, &mut rng);
                proto.bob_accepts(&b, &msg)
            })
            .count();
        let equal_ok = (0..200).all(|_| {
            let msg = proto.alice_message(&a, &mut rng);
            proto.bob_accepts(&a, &msg)
        });
        t.push_row(vec![
            lambda.to_string(),
            proto.modulus().to_string(),
            proto.message_bits().to_string(),
            (2 * rpls_bits::bits_for(6 * lambda as u64)).to_string(),
            fmt_f(proto.soundness_error()),
            fmt_f(false_accepts as f64 / trials as f64),
            fmt_b(equal_ok),
        ]);
    }
    t.push_note("ablation: widening the prime range trades bits for error");
    for mult in [3u64, 12, 96] {
        let lambda = 1024usize;
        let p = next_prime(mult * lambda as u64 + 1);
        let proto = EqProtocol::with_modulus(lambda, p);
        t.push_note(format!(
            "p ~ {mult}*lambda: {} bits, bound {:.4}",
            proto.message_bits(),
            proto.soundness_error()
        ));
    }
    t
}

/// E-3.1 — Theorem 3.1: κ deterministic bits become O(log κ) randomized
/// bits across every concrete scheme in the repository.
#[must_use]
pub fn e31_compiler_gap() -> Table {
    let mut t = Table::new(
        "E-3.1  compiler (Theorem 3.1): kappa -> O(log kappa) certificates",
        &[
            "scheme",
            "n",
            "kappa (det bits)",
            "certificate bits",
            "predicted 2*ceil(log2 p)",
            "compression",
            "accepts legal",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0x31);
    // (name, configuration, kappa, certificate bits, accepted)
    let mut measure =
        |name: &str, config: &Configuration, det_bits: usize, scheme_bits: (usize, bool)| {
            let (cert_bits, accepted) = scheme_bits;
            let predicted = CompiledRpls::<SpanningTreePls>::certificate_bits_for_kappa(det_bits);
            t.push_row(vec![
                name.to_owned(),
                config.node_count().to_string(),
                det_bits.to_string(),
                cert_bits.to_string(),
                predicted.to_string(),
                fmt_f(det_bits as f64 / cert_bits.max(1) as f64),
                fmt_b(accepted),
            ]);
        };

    for n in [16usize, 64, 256] {
        let base = Configuration::plain(generators::gnp_connected(n, 0.1, &mut rng));
        let config = spanning_tree_config(&base, NodeId::new(0));
        let det = SpanningTreePls.label(&config).max_bits();
        let scheme = CompiledRpls::new(SpanningTreePls);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 1);
        measure(
            "spanning-tree",
            &config,
            det,
            (rec.max_certificate_bits(), rec.outcome.accepted()),
        );
    }
    for n in [16usize, 64, 256] {
        let config = Configuration::plain(generators::random_tree(n, &mut rng));
        let det = AcyclicityPls.label(&config).max_bits();
        let scheme = CompiledRpls::new(AcyclicityPls);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 2);
        measure(
            "acyclicity",
            &config,
            det,
            (rec.max_certificate_bits(), rec.outcome.accepted()),
        );
    }
    for n in [16usize, 48] {
        let g = generators::gnp_connected(n, 0.25, &mut rng);
        let w = generators::distinct_weights(&g, &mut rng);
        let config = mst_config(&Configuration::plain(g.with_weights(&w)));
        let det = MstPls.label(&config).max_bits();
        let scheme = CompiledRpls::new(MstPls);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 3);
        measure(
            "mst",
            &config,
            det,
            (rec.max_certificate_bits(), rec.outcome.accepted()),
        );
    }
    for n in [16usize, 64, 256] {
        let config = Configuration::plain(generators::wheel(n));
        let det = BiconnectivityPls.label(&config).max_bits();
        let scheme = CompiledRpls::new(BiconnectivityPls);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 4);
        measure(
            "v2con",
            &config,
            det,
            (rec.max_certificate_bits(), rec.outcome.accepted()),
        );
    }
    for k in [64usize, 1024, 16384] {
        let base = Configuration::plain(generators::cycle(8));
        let config = uniform_config(&base, &random_bits(k, &mut rng));
        let det = UniformityPls.label(&config).max_bits();
        let scheme = CompiledRpls::new(UniformityPls);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 5);
        measure(
            &format!("unif (k={k})"),
            &config,
            det,
            (rec.max_certificate_bits(), rec.outcome.accepted()),
        );
    }
    t.push_note("compression = kappa / certificate-bits; grows with kappa as the theorem predicts");
    t
}

fn connected_predicate() -> FnPredicate<impl Fn(&Configuration) -> bool> {
    FnPredicate::new("connected", |c: &Configuration| {
        connectivity::is_connected(c.graph())
    })
}

/// E-3.3 — Lemma 3.3: universal PLS label bits track
/// `min(n², m log n) + nk`.
#[must_use]
pub fn e33_universal_pls() -> Table {
    let mut t = Table::new(
        "E-3.3  universal PLS (Lemma 3.3): labels ~ min(n^2, m log n) + nk",
        &[
            "family",
            "n",
            "m",
            "k (state bits)",
            "label bits",
            "min(n^2, m log n) + nk",
            "ratio",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0x33);
    let mut row = |family: &str, config: &Configuration| {
        let n = config.node_count();
        let m = config.graph().edge_count();
        let k = config.state_bits();
        let scheme = UniversalPls::new(connected_predicate());
        let bits = scheme.label(config).max_bits();
        let logn = (n as f64).log2().ceil() as usize;
        let bound = (n * n).min(m * logn) + n * k;
        t.push_row(vec![
            family.to_owned(),
            n.to_string(),
            m.to_string(),
            k.to_string(),
            bits.to_string(),
            bound.to_string(),
            fmt_f(bits as f64 / bound as f64),
        ]);
    };
    for n in [16usize, 64, 128] {
        row("path (sparse)", &Configuration::plain(generators::path(n)));
    }
    for n in [16usize, 48, 96] {
        row(
            "complete (dense)",
            &Configuration::plain(generators::complete(n)),
        );
    }
    for k in [0usize, 256, 2048] {
        let base = Configuration::plain(generators::cycle(32));
        let config = uniform_config(&base, &random_bits(k, &mut rng));
        row(&format!("cycle + {k}-bit states"), &config);
    }
    t.push_note("dense graphs switch to the n^2 adjacency-matrix encoding; the ratio stays O(1)");
    t
}

/// E-3.4 — Corollary 3.4: the universal RPLS certificate is
/// O(log n + log k) regardless of the predicate.
#[must_use]
pub fn e34_universal_rpls() -> Table {
    let mut t = Table::new(
        "E-3.4  universal RPLS (Corollary 3.4): certificates O(log n + log k)",
        &[
            "n",
            "k",
            "label bits",
            "certificate bits",
            "log2(n) + log2(k+2)",
            "accepts legal",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0x34);
    let mut row = |n: usize, k: usize| {
        let base = Configuration::plain(generators::cycle(n));
        let config = uniform_config(&base, &random_bits(k, &mut rng));
        let scheme = universal_rpls(connected_predicate());
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 7);
        let reference = (n as f64).log2() + ((k + 2) as f64).log2();
        t.push_row(vec![
            n.to_string(),
            k.to_string(),
            labeling.max_bits().to_string(),
            rec.max_certificate_bits().to_string(),
            fmt_f(reference),
            fmt_b(rec.outcome.accepted()),
        ]);
    };
    for n in [8usize, 32, 128] {
        row(n, 8);
    }
    for k in [64usize, 1024, 8192] {
        row(16, k);
    }
    t.push_note("labels hold the whole configuration; only the fingerprints travel");
    t
}

/// E-3.5 — Theorem 3.5: the Ω(log n + log k) tightness, probed on the
/// paper's own families. For `Unif` (Lemma C.3) the certificate carries a
/// fingerprint whose field must beat the k-bit payloads: shrinking the
/// field (the only way to shrink the certificate) lets unequal payloads
/// slip through at the predicted rate. For `Sym` (Lemma C.1) the
/// `G(z, z')` gadgets tie detection to 2-party equality on λ bits.
#[must_use]
pub fn e35_lower_bound() -> Table {
    let mut t = Table::new(
        "E-3.5  tightness (Theorem 3.5): shrinking certificates below log k / log n fails",
        &[
            "family",
            "certificate bits",
            "false-accept rate",
            "fools 1/3?",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0x35);
    // Unif on a two-node graph with k-bit payloads: the fingerprint with a
    // forced-small prime models any scheme exchanging that few bits
    // (Lemma 3.2 makes this tight). The adversary picks the *worst-case*
    // payload pair for the field: when p ≤ k it flips bits 1 and p, making
    // the difference polynomial x^p − x ≡ 0 on all of GF(p) (Fermat), so
    // every evaluation point collides.
    let k = 4096usize;
    let trials = 3000;
    for target_bits in [8u32, 12, 16, 20, 26, 30] {
        let p = next_prime((1u64 << (target_bits / 2)) + 1);
        let proto = EqProtocol::with_modulus(k, p);
        let (a, b) = if (p as usize) < k {
            // a has bit 1 set; b clears it and sets bit p instead.
            let a = BitString::from_bools((0..k).map(|i| i == 1));
            let b = BitString::from_bools((0..k).map(|i| i == p as usize));
            (a, b)
        } else {
            // No vanishing difference exists: any pair has ≤ (k−1)/p
            // collisions; use a single flip.
            let a = random_bits(k, &mut rng);
            let mut flipped: Vec<bool> = a.iter().collect();
            flipped[7] = !flipped[7];
            (a.clone(), BitString::from_bools(flipped))
        };
        let accepts = (0..trials)
            .filter(|_| {
                let msg = proto.alice_message(&a, &mut rng);
                proto.bob_accepts(&b, &msg)
            })
            .count();
        let rate = accepts as f64 / trials as f64;
        t.push_row(vec![
            format!("unif k={k}"),
            proto.message_bits().to_string(),
            fmt_f(rate),
            fmt_b(rate > 1.0 / 3.0),
        ]);
    }
    // Sym: the universal RPLS on G(z, z) — certificate bits grow with
    // log n = log(4 lambda + 6); detection of z != z' is perfect for the
    // honest scheme (shown as rate on the *illegal* sibling).
    for lambda in [3usize, 6, 9] {
        let z = (0..lambda).map(|i| i % 2 == 0).collect::<Vec<_>>();
        let mut z2 = z.clone();
        z2[0] = !z2[0];
        let legal = Configuration::plain(generators::symmetry_pair(&z, &z));
        let illegal = Configuration::plain(generators::symmetry_pair(&z, &z2));
        let scheme = universal_rpls(rpls_schemes::symmetry::SymmetryPredicate::new());
        let labeling = scheme.label(&legal);
        let rec = engine::run_randomized(&scheme, &legal, &labeling, 11);
        assert!(rec.outcome.accepted());
        // Replay the legal labels on the illegal instance.
        let fooled = rpls_core::stats::acceptance_probability(
            &scheme,
            &illegal,
            &labeling,
            60,
            mix_seed(0x35, lambda as u64, 0),
        );
        t.push_row(vec![
            format!("sym lambda={lambda} (n={})", legal.node_count()),
            rec.max_certificate_bits().to_string(),
            fmt_f(fooled),
            fmt_b(fooled > 1.0 / 3.0),
        ]);
    }
    t.push_note("unif rows: the worst-case pair collides everywhere while p <= k, i.e. until the certificate clears ~2 log2 k bits");
    t.push_note("sym rows: the honest O(log n)-bit scheme never gets fooled");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ea1_rows_and_shape() {
        let t = ea1_eq_protocol();
        assert!(t.row_count() >= 6);
        // Message bits grow by O(1) per 4x lambda: last minus first small.
        let first: usize = t.rows()[0][2].parse().unwrap();
        let last: usize = t.rows()[t.row_count() - 1][2].parse().unwrap();
        assert!(last - first <= 2 * 10);
        // All measured error rates below 1/3.
        for row in t.rows() {
            let rate: f64 = row[5].parse().unwrap();
            assert!(rate < 1.0 / 3.0, "rate {rate}");
            assert_eq!(row[6], "yes");
        }
    }

    #[test]
    fn e31_all_schemes_accept_and_compress() {
        let t = e31_compiler_gap();
        for row in t.rows() {
            assert_eq!(row[6], "yes", "{row:?}");
            let kappa: usize = row[2].parse().unwrap();
            let cert: usize = row[3].parse().unwrap();
            assert!(cert <= kappa || kappa <= 24, "{row:?}");
        }
    }

    #[test]
    fn e34_certificates_logarithmic() {
        let t = e34_universal_rpls();
        for row in t.rows() {
            assert_eq!(row[5], "yes");
            let label: usize = row[2].parse().unwrap();
            let cert: usize = row[3].parse().unwrap();
            assert!(cert < label, "{row:?}");
        }
    }

    #[test]
    fn e35_small_budgets_get_fooled_and_large_do_not() {
        let t = e35_lower_bound();
        let unif_rows: Vec<_> = t
            .rows()
            .iter()
            .filter(|r| r[0].starts_with("unif"))
            .collect();
        assert_eq!(unif_rows.first().map(|r| r[3].as_str()), Some("yes"));
        assert_eq!(unif_rows.last().map(|r| r[3].as_str()), Some("no"));
        for row in t.rows().iter().filter(|r| r[0].starts_with("sym")) {
            assert_eq!(row[3], "no");
        }
    }
}
