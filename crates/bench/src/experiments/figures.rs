//! The paper's figures regenerated as explicit edge lists.

use crate::table::{fmt_b, Table};
use rpls_core::Configuration;
use rpls_crossing::families;
use rpls_graph::crossing::cross_copies;
use rpls_graph::{connectivity, cycles, generators, isomorphism, Graph};

fn edge_list_string(g: &Graph) -> String {
    g.sorted_edge_list()
        .iter()
        .map(|(u, v)| format!("{{{u},{v}}}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// F-1 — Figure 1: crossing two edges under σ, shown on a 12-node path
/// with `H₁ = {u3, u4}`, `H₂ = {u6, u7}`.
#[must_use]
pub fn f1_crossing_figure() -> Table {
    let mut t = Table::new(
        "F-1  crossing two edges under sigma (Figure 1)",
        &["configuration", "edges"],
    );
    let f = families::acyclicity_path(12);
    t.push_row(vec!["G (path)".into(), edge_list_string(f.config.graph())]);
    let crossed = cross_copies(f.config.graph(), &f.copies, 0, 1).expect("crossable");
    t.push_row(vec!["sigma><(G)".into(), edge_list_string(&crossed)]);
    t.push_note("{3,4} and {6,7} became {3,7} and {4,6}: degrees and ports unchanged");
    t
}

/// F-2 — Figure 2: the wheel (a) and its crossed version (b) where `v0`
/// becomes an articulation point.
#[must_use]
pub fn f2_wheel_figure() -> Table {
    let mut t = Table::new(
        "F-2  the wheel and its crossing (Figure 2)",
        &["configuration", "biconnected", "edges"],
    );
    let f = families::wheel(13);
    t.push_row(vec![
        "G (cycle + chords from v0)".into(),
        fmt_b(connectivity::is_biconnected(f.config.graph())),
        edge_list_string(f.config.graph()),
    ]);
    let crossed = cross_copies(f.config.graph(), &f.copies, 0, 2).expect("crossable");
    t.push_row(vec![
        "sigma_ij><(G)".into(),
        fmt_b(connectivity::is_biconnected(&crossed)),
        edge_list_string(&crossed),
    ]);
    t.push_note("after the crossing, v0 is an articulation point (Figure 2(b))");
    t
}

/// F-3/F-4 — Figures 3 and 4: the gadgets `G(z)` and `G(z, z')`, plus the
/// exhaustive Claim C.2 check for small λ.
#[must_use]
pub fn f34_gadget_figure() -> Table {
    let mut t = Table::new(
        "F-3/F-4  symmetry gadgets G(z) and G(z, z') (Figures 3-4)",
        &["graph", "nodes", "symmetric", "edges"],
    );
    let z = [true, false, false, true, true]; // "10011" as in Figure 3
    let g = generators::symmetry_gadget(&z);
    t.push_row(vec![
        "G(10011)".into(),
        g.node_count().to_string(),
        "-".into(),
        edge_list_string(&g),
    ]);
    let same = generators::symmetry_pair(&z, &z);
    t.push_row(vec![
        "G(10011, 10011)".into(),
        same.node_count().to_string(),
        fmt_b(isomorphism::is_symmetric(&same)),
        edge_list_string(&same),
    ]);
    let mut z2 = z;
    z2[0] = false;
    let diff = generators::symmetry_pair(&z, &z2);
    t.push_row(vec![
        "G(10011, 00011)".into(),
        diff.node_count().to_string(),
        fmt_b(isomorphism::is_symmetric(&diff)),
        edge_list_string(&diff),
    ]);
    // Claim C.2, exhaustively for lambda = 3.
    let mut claim_holds = true;
    for a in 0u8..8 {
        for b in 0u8..8 {
            let za: Vec<bool> = (0..3).map(|i| a >> i & 1 == 1).collect();
            let zb: Vec<bool> = (0..3).map(|i| b >> i & 1 == 1).collect();
            let sym = isomorphism::is_symmetric(&generators::symmetry_pair(&za, &zb));
            if sym != (a == b) {
                claim_holds = false;
            }
        }
    }
    t.push_note(format!(
        "Claim C.2 checked exhaustively for lambda=3: {}",
        if claim_holds { "holds" } else { "VIOLATED" }
    ));
    t
}

/// F-5 — Figure 5: the chain of cycles and its crossed version with the
/// merged long cycle.
#[must_use]
pub fn f5_chain_figure() -> Table {
    let mut t = Table::new(
        "F-5  chain of cycles and its crossing (Figure 5)",
        &["configuration", "longest cycle", "edges"],
    );
    let f = families::chain_of_cycles(3, 8);
    let _ = Configuration::plain(generators::chain_of_cycles(3, 8));
    t.push_row(vec![
        "G (3 cycles of 8)".into(),
        cycles::longest_cycle(f.config.graph()).map_or("-".into(), |l| l.to_string()),
        edge_list_string(f.config.graph()),
    ]);
    let crossed = cross_copies(f.config.graph(), &f.copies, 0, 1).expect("crossable");
    t.push_row(vec![
        "sigma><(G)".into(),
        cycles::longest_cycle(&crossed).map_or("-".into(), |l| l.to_string()),
        edge_list_string(&crossed),
    ]);
    t.push_note("two 8-cycles merged into one 16-cycle (Figure 5(b))");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_shows_both_graphs() {
        let t = f1_crossing_figure();
        assert_eq!(t.row_count(), 2);
        assert!(t.rows()[1][1].contains("{3,7}"));
        assert!(t.rows()[1][1].contains("{4,6}"));
    }

    #[test]
    fn f2_biconnectivity_flips() {
        let t = f2_wheel_figure();
        assert_eq!(t.rows()[0][1], "yes");
        assert_eq!(t.rows()[1][1], "no");
    }

    #[test]
    fn f34_symmetry_matches_string_equality() {
        let t = f34_gadget_figure();
        assert_eq!(t.rows()[1][2], "yes");
        assert_eq!(t.rows()[2][2], "no");
    }

    #[test]
    fn f5_cycle_doubles() {
        let t = f5_chain_figure();
        assert_eq!(t.rows()[0][1], "8");
        assert_eq!(t.rows()[1][1], "16");
    }
}
