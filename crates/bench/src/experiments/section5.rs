//! Experiments for §5: the concrete predicates, plus boosting and k-flow.

use crate::table::{fmt_b, fmt_f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls_bits::BitString;
use rpls_core::{engine, stats, CompiledRpls, Configuration, Labeling, Pls, Rpls};
use rpls_crossing::det_attack::det_crossing_attack;
use rpls_crossing::families;
use rpls_crossing::iterated::iterated_crossing;
use rpls_graph::{connectivity, cycles, generators, NodeId};
use rpls_schemes::biconnectivity::BiconnectivityPls;
use rpls_schemes::cycle_at_least::CycleAtLeastPls;
use rpls_schemes::flow::{FlowPls, FlowPredicate};
use rpls_schemes::mst::{mst_config, MstPls};

/// E-5.1 — Theorem 5.1: MST labels grow like log²n; compiled certificates
/// like log log n.
#[must_use]
pub fn e51_mst() -> Table {
    let mut t = Table::new(
        "E-5.1  MST (Theorem 5.1): Theta(log^2 n) labels -> Theta(log log n) certificates",
        &[
            "n",
            "label bits",
            "label/log2(n)^2",
            "certificate bits",
            "cert/log2(log2 n)",
            "accepts legal",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0x51);
    for n in [16usize, 32, 64, 128, 256] {
        let g = generators::gnp_connected(n, (4.0 / n as f64).min(0.9), &mut rng);
        let w = generators::random_weights(&g, (n * n) as u64, &mut rng);
        let config = mst_config(&Configuration::plain(g.with_weights(&w)));
        let det_bits = MstPls.label(&config).max_bits();
        let scheme = CompiledRpls::new(MstPls);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0x51);
        let log_n = (n as f64).log2();
        t.push_row(vec![
            n.to_string(),
            det_bits.to_string(),
            fmt_f(det_bits as f64 / (log_n * log_n)),
            rec.max_certificate_bits().to_string(),
            fmt_f(rec.max_certificate_bits() as f64 / log_n.log2()),
            fmt_b(rec.outcome.accepted()),
        ]);
    }
    t.push_note("weights are poly(n), so log W ~ 2 log n and labels are ~log^2 n");
    t.push_note("the Omega(log log n) side is the acyclicity crossing of E-4.3/E-4.8");
    t
}

/// E-5.2 — Theorem 5.2: biconnectivity at Θ(log n) / Θ(log log n), with
/// the wheel crossing flipping the predicate invisibly.
#[must_use]
pub fn e52_biconnectivity() -> Table {
    let mut t = Table::new(
        "E-5.2  vertex biconnectivity (Theorem 5.2)",
        &[
            "n",
            "det bits",
            "det/log2 n",
            "cert bits",
            "accepts legal",
            "wheel attack (B=1): fooled & flipped",
        ],
    );
    for n in [16usize, 64, 256] {
        let config = Configuration::plain(generators::wheel(n));
        let det_bits = BiconnectivityPls.label(&config).max_bits();
        let scheme = CompiledRpls::new(BiconnectivityPls);
        let labeling = scheme.label(&config);
        let rec = engine::run_randomized(&scheme, &config, &labeling, 0x52);

        // The Figure 2 attack under a 1-bit budget.
        let f = families::wheel(n);
        let cheap = Labeling::new(vec![BitString::zeros(1); n]);
        let report = det_crossing_attack(&f, &cheap);
        let flipped = report
            .crossed
            .as_ref()
            .is_some_and(|c| !connectivity::is_biconnected(c.graph()));
        t.push_row(vec![
            n.to_string(),
            det_bits.to_string(),
            fmt_f(det_bits as f64 / (n as f64).log2()),
            rec.max_certificate_bits().to_string(),
            fmt_b(rec.outcome.accepted()),
            fmt_b(report.succeeded() && flipped),
        ]);
    }
    t
}

/// E-5.3 — Theorem 5.3: cycle-at-least-c upper bounds and behaviour on the
/// wheel-with-tail workloads.
#[must_use]
pub fn e53_cycle_at_least() -> Table {
    let mut t = Table::new(
        "E-5.3  cycle-at-least-c upper bounds (Theorem 5.3)",
        &[
            "graph",
            "c",
            "det bits",
            "cert bits",
            "accepts legal",
            "rejects c+1 claim",
        ],
    );
    for (name, g, c) in [
        ("cycle(12)", generators::cycle(12), 12usize),
        ("wheel(13)", generators::wheel(13), 13),
        (
            "wheel_with_tail(20, 12)",
            generators::wheel_with_tail(20, 12),
            12,
        ),
    ] {
        let config = Configuration::plain(g);
        let scheme = CycleAtLeastPls::new(c);
        let det_bits = scheme.label(&config).max_bits();
        let compiled = CompiledRpls::new(scheme);
        let labeling = compiled.label(&config);
        let rec = engine::run_randomized(&compiled, &config, &labeling, 0x53);
        // An over-claiming scheme must reject the honest labels.
        let over = CycleAtLeastPls::new(c + 1);
        let over_labels = CycleAtLeastPls::new(c).label(&config);
        let rejected = !engine::run_deterministic(&over, &config, &over_labels).accepted();
        t.push_row(vec![
            name.to_owned(),
            c.to_string(),
            det_bits.to_string(),
            rec.max_certificate_bits().to_string(),
            fmt_b(rec.outcome.accepted()),
            fmt_b(rejected),
        ]);
    }
    t
}

/// E-5.4 — Theorem 5.4: the restricted-wheel crossing splits the long
/// cycle; thresholds scale with `c`, not `n`.
#[must_use]
pub fn e54_cycle_lower() -> Table {
    let mut t = Table::new(
        "E-5.4  cycle-at-least-c lower bound (Theorem 5.4)",
        &[
            "n",
            "c",
            "r copies",
            "det threshold (bits)",
            "rand threshold (bits)",
            "B=1 attack fooled",
            "longest cycle after",
        ],
    );
    for (n, c) in [(16usize, 12usize), (24, 18), (40, 30)] {
        let f = families::wheel_cycle(n, c);
        let cheap = Labeling::new(vec![BitString::zeros(1); n]);
        let report = det_crossing_attack(&f, &cheap);
        let after = report
            .crossed
            .as_ref()
            .and_then(|cc| cycles::longest_cycle(cc.graph()))
            .unwrap_or(0);
        t.push_row(vec![
            n.to_string(),
            c.to_string(),
            f.copy_count().to_string(),
            fmt_f(f.det_threshold_bits()),
            fmt_f(f.rand_threshold_bits()),
            fmt_b(report.succeeded()),
            after.to_string(),
        ]);
    }
    t.push_note("after the crossing every simple cycle is strictly shorter than c");
    t
}

/// E-5.5 — Theorem 5.5: iterated crossing on the wheel until every cycle
/// is short, invisibly.
#[must_use]
pub fn e55_iterated() -> Table {
    let mut t = Table::new(
        "E-5.5  iterated crossing (Theorem 5.5)",
        &[
            "n",
            "stop below",
            "crossings",
            "final longest cycle",
            "views preserved",
        ],
    );
    for n in [24usize, 36, 48] {
        let config = Configuration::plain(generators::wheel(n));
        let labeling = Labeling::new(vec![BitString::zeros(1); n]);
        let edges: Vec<(NodeId, NodeId)> = (1..=(n / 3 - 1))
            .map(|i| (NodeId::new(3 * i), NodeId::new(3 * i + 1)))
            .collect();
        let stop = n / 3;
        let report = iterated_crossing(&config, &labeling, &edges, stop);
        t.push_row(vec![
            n.to_string(),
            stop.to_string(),
            report.crossings.to_string(),
            report
                .final_longest_cycle
                .map_or("-".into(), |l| l.to_string()),
            fmt_b(report.views_preserved),
        ]);
    }
    t
}

/// E-5.6 — Theorem 5.6: the chain-of-cycles crossing merges two short
/// cycles into a long one; thresholds scale with `n/c`.
#[must_use]
pub fn e56_chain() -> Table {
    let mut t = Table::new(
        "E-5.6  cycle-at-most-c lower bound (Theorem 5.6)",
        &[
            "cycles r = n/c",
            "c",
            "n",
            "det threshold (bits)",
            "rand threshold (bits)",
            "B=1 attack fooled",
            "longest cycle after",
        ],
    );
    for (count, len) in [(4usize, 6usize), (8, 6), (16, 6), (8, 10)] {
        let f = families::chain_of_cycles(count, len);
        let n = f.config.node_count();
        let cheap = Labeling::new(vec![BitString::zeros(1); n]);
        let report = det_crossing_attack(&f, &cheap);
        let after = report
            .crossed
            .as_ref()
            .and_then(|cc| cycles::longest_cycle(cc.graph()))
            .unwrap_or(0);
        t.push_row(vec![
            count.to_string(),
            len.to_string(),
            n.to_string(),
            fmt_f(f.det_threshold_bits()),
            fmt_f(f.rand_threshold_bits()),
            fmt_b(report.succeeded()),
            after.to_string(),
        ]);
    }
    t.push_note("the merged cycle has ~2c nodes, violating cycle-at-most-c");
    t
}

/// E-B — footnote 1: majority boosting drives the error down
/// exponentially in the number of repetitions.
///
/// The bad proof under test is a compiled label whose replica of a
/// neighbor's inner label has one flipped bit: a single round accepts it
/// with the fingerprint collision probability `(λ−1)/p ≈ 0.32 < 1/2`, the
/// regime majority voting amplifies.
#[must_use]
pub fn eb_boosting() -> Table {
    use rpls_bits::{BitReader, BitWriter};
    use rpls_core::{DetView, Pls as PlsTrait};

    /// Inner scheme: label is the node's id in 64 bits padded to 512;
    /// neighbors only need to parse (so a corrupted replica is caught
    /// *only* by the fingerprint check, giving a clean per-round
    /// probability). κ = 512 puts the protocol prime at p = 1637, and
    /// p − 1 = 4·409 admits the two-flip corruption below with 410
    /// collision points — per-round acceptance ≈ 410/1637 ≈ 0.25.
    struct IdOnly;
    impl PlsTrait for IdOnly {
        fn name(&self) -> String {
            "id-only".into()
        }
        fn label(&self, config: &Configuration) -> Labeling {
            config
                .states()
                .iter()
                .map(|s| {
                    let mut w = BitWriter::new();
                    w.write_u64(s.id(), 64);
                    w.write_bits(&BitString::zeros(448));
                    w.finish()
                })
                .collect()
        }
        fn verify(&self, view: &DetView<'_>) -> bool {
            let mut r = BitReader::new(view.label);
            r.read_u64(64).is_ok_and(|id| id == view.local.state.id())
                && view
                    .neighbor_labels
                    .iter()
                    .all(|l| BitReader::new(l).read_u64(64).is_ok())
        }
    }

    let mut t = Table::new(
        "E-B  majority boosting (footnote 1)",
        &[
            "repetitions t",
            "accept bad proof (boosted)",
            "Chernoff bound exp(-2t(1/2-p)^2)",
        ],
    );
    let config = Configuration::plain(generators::cycle(6));
    let scheme = CompiledRpls::new(IdOnly);
    let mut labeling = scheme.label(&config);
    // Corrupt two bits of node 3's replica of its port-0 neighbor, at
    // distance 409 apart: layout [κ:32][len:32][ℓ0:512][len:32][ℓ1:512]…
    // puts ℓ1 at offset 608; the difference polynomial ±x^a ± x^(a+409)
    // has gcd(409, p−1) + 1 = 410 roots in GF(1637), so one fingerprint
    // check passes with probability ≈ 0.25 — the `p < 1/2` regime the
    // footnote's majority vote suppresses.
    let corrupted: BitString = labeling
        .get(NodeId::new(3))
        .iter()
        .enumerate()
        .map(|(i, b)| if i == 618 || i == 618 + 409 { !b } else { b })
        .collect();
    labeling.set(NodeId::new(3), corrupted);

    let single = stats::acceptance_probability(&scheme, &config, &labeling, 3000, 0xB1);
    t.push_note(format!(
        "single-round acceptance of the corrupted proof: {single:.3} (fingerprint collision rate)"
    ));
    for reps in [1usize, 3, 7, 15, 31] {
        let boosted =
            stats::boosted_acceptance_probability(&scheme, &config, &labeling, reps, 800, 0xB2);
        let bound = (-2.0 * reps as f64 * (0.5 - single).powi(2)).exp();
        t.push_row(vec![
            reps.to_string(),
            fmt_f(boosted),
            format!("{bound:.5}"),
        ]);
    }
    t.push_note("legal proofs are still always accepted (one-sided), so boosting is free");
    t
}

/// E-F — the §5.2 remark: k-flow at O(k log n) deterministic,
/// O(log k + log log n) randomized.
#[must_use]
pub fn ef_flow() -> Table {
    let mut t = Table::new(
        "E-F  k-flow (Section 5.2 remark): O(k log n) -> O(log k + log log n)",
        &["graph", "k", "det bits", "cert bits", "accepts legal"],
    );
    for k in [2usize, 4, 8, 16] {
        let g = generators::complete(k + 1);
        let config = Configuration::plain(g);
        let scheme = FlowPls::new(FlowPredicate::new(0, k as u64, k));
        let det_bits = scheme.label(&config).max_bits();
        let compiled = CompiledRpls::new(scheme);
        let labeling = compiled.label(&config);
        let rec = engine::run_randomized(&compiled, &config, &labeling, 0xF0);
        t.push_row(vec![
            format!("K{}", k + 1),
            k.to_string(),
            det_bits.to_string(),
            rec.max_certificate_bits().to_string(),
            fmt_b(rec.outcome.accepted()),
        ]);
    }
    t.push_note("det bits grow linearly in k; certificate bits only logarithmically");
    t
}

/// E-V — §5.2: s–t k-vertex-connectivity at O(k log n) deterministic /
/// O(log k + log log n) randomized, via disjoint paths plus a vertex cut.
#[must_use]
pub fn ev_vertex_connectivity() -> Table {
    use rpls_schemes::vertex_connectivity::{StConnectivityPls, StConnectivityPredicate};
    let mut t = Table::new(
        "E-V  s-t k-vertex-connectivity (Section 5.2)",
        &["graph", "k", "det bits", "cert bits", "accepts legal"],
    );
    for (name, g, s, t_id, k) in [
        ("grid(3,3)", generators::grid(3, 3), 0u64, 8u64, 2usize),
        ("grid(4,4)", generators::grid(4, 4), 0, 15, 2),
        ("cycle(10)", generators::cycle(10), 0, 5, 2),
        ("grid(3,6)", generators::grid(3, 6), 0, 17, 2),
    ] {
        let config = Configuration::plain(g);
        let predicate = StConnectivityPredicate::new(s, t_id, k);
        let scheme = StConnectivityPls::new(predicate);
        let det_bits = scheme.label(&config).max_bits();
        let compiled = CompiledRpls::new(StConnectivityPls::new(predicate));
        let labels = compiled.label(&config);
        let rec = engine::run_randomized(&compiled, &config, &labels, 0xE5);
        t.push_row(vec![
            name.to_owned(),
            k.to_string(),
            det_bits.to_string(),
            rec.max_certificate_bits().to_string(),
            fmt_b(rec.outcome.accepted()),
        ]);
    }
    t.push_note("certificate: k node-disjoint paths (Menger >= k) plus a k-node cut (<= k)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev_rows_accept() {
        let t = ev_vertex_connectivity();
        for row in t.rows() {
            assert_eq!(row[4], "yes", "{row:?}");
        }
    }

    #[test]
    fn e51_certificates_tiny_and_accepted() {
        let t = e51_mst();
        for row in t.rows() {
            assert_eq!(row[5], "yes", "{row:?}");
            let det: usize = row[1].parse().unwrap();
            let cert: usize = row[3].parse().unwrap();
            assert!(cert * 2 < det, "{row:?}");
        }
    }

    #[test]
    fn e52_attacks_succeed() {
        let t = e52_biconnectivity();
        for row in t.rows() {
            assert_eq!(row[4], "yes");
            assert_eq!(row[5], "yes");
        }
    }

    #[test]
    fn e54_crossed_cycles_are_short() {
        let t = e54_cycle_lower();
        for row in t.rows() {
            assert_eq!(row[5], "yes", "{row:?}");
            let c: usize = row[1].parse().unwrap();
            let after: usize = row[6].parse().unwrap();
            assert!(after < c, "{row:?}");
        }
    }

    #[test]
    fn e56_merged_cycles_are_long() {
        let t = e56_chain();
        for row in t.rows() {
            assert_eq!(row[5], "yes", "{row:?}");
            let c: usize = row[1].parse().unwrap();
            let after: usize = row[6].parse().unwrap();
            assert!(after > c, "{row:?}");
        }
    }

    #[test]
    fn eb_boosting_decays() {
        let t = eb_boosting();
        let first: f64 = t.rows()[0][1].parse().unwrap();
        let last: f64 = t.rows()[t.row_count() - 1][1].parse().unwrap();
        assert!(last <= first);
        assert!(last < 0.05, "31 repetitions should crush the error: {last}");
    }

    #[test]
    fn ef_flow_certificates_sublinear_in_k() {
        let t = ef_flow();
        let det_k2: usize = t.rows()[0][2].parse().unwrap();
        let det_k16: usize = t.rows()[3][2].parse().unwrap();
        assert!(det_k16 > 4 * det_k2, "deterministic bits grow ~linearly");
        let cert_k2: usize = t.rows()[0][3].parse().unwrap();
        let cert_k16: usize = t.rows()[3][3].parse().unwrap();
        assert!(cert_k16 < 2 * cert_k2 + 8, "certificates stay logarithmic");
    }
}
