//! The experiment implementations, grouped by paper section.

mod figures;
mod section3;
mod section4;
mod section5;

pub use figures::{f1_crossing_figure, f2_wheel_figure, f34_gadget_figure, f5_chain_figure};
pub use section3::{
    e31_compiler_gap, e33_universal_pls, e34_universal_rpls, e35_lower_bound, ea1_eq_protocol,
};
pub use section4::{e43_det_crossing, e46_rounded_crossing, e48_onesided_crossing};
pub use section5::{
    e51_mst, e52_biconnectivity, e53_cycle_at_least, e54_cycle_lower, e55_iterated, e56_chain,
    eb_boosting, ef_flow, ev_vertex_connectivity,
};
