//! The CI perf-regression gate over `BENCH_engine.json`.
//!
//! PR 1 bought ≈7× Monte-Carlo throughput and PR 2 another ≈21× on the
//! compiled path; this module is how CI keeps them. The PR-time
//! `bench-smoke` job runs `bench_engine` in smoke mode (reduced trial
//! counts) and hands the emitted JSON plus the committed reference to
//! [`check`], which fails the build when a tracked ratio regresses more
//! than the allowed factor.
//!
//! Only **relative** metrics are compared — round throughput divided by
//! the same run's allocation-per-trial baseline throughput, and the
//! prepared/batched speedup ratios — never absolute seconds or absolute
//! rounds/second. The smoke run uses smaller trial counts than the
//! committed full run (so absolute seconds differ by construction) and CI
//! runners are not the machine the reference was committed from (so
//! absolute throughput differs by hardware); within-run ratios cancel
//! both, while a genuine engine regression still collapses them. Rows are
//! matched by `(family, n)` (round matrix) and by scheme name (acceptance
//! table); rows present in only one file are skipped, so adding a
//! workload never breaks the gate, and metrics missing from an older
//! reference are simply not checked. Correctness bits
//! (`estimates_identical`, `t1_identical`, `soundness_preserved`,
//! `per_port_identical`, the service table's `verdicts_identical`,
//! nonzero `cache_hit_rate`, the chaos row's `replay_identical` and
//! `shed_accounting_ok`, and the scale table's `par_identical` and
//! `dense_within_2x`) are enforced on the current run alone — they
//! are deterministic at any machine speed, so no reference is consulted.
//! The scale table's `thread_scaling` and `dense_vs_sparse_per_port`
//! ratios are compared relatively like every other timing metric.
//!
//! The parser is deliberately minimal: it reads exactly the flat
//! object-per-row schema `bench_engine` emits (no nested objects inside
//! rows, no escaped quotes), because the workspace builds offline and a
//! vendored full JSON parser would be all cost and no coverage.

use std::collections::BTreeMap;

/// One parsed benchmark row: its identity fields plus every numeric or
/// boolean field, keyed by name.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// String-valued fields (`family`, `scheme`, …).
    pub tags: BTreeMap<String, String>,
    /// Numeric fields (`n`, `rand_rounds_per_sec`, `prepared_speedup`, …);
    /// booleans parse as 1.0 / 0.0.
    pub nums: BTreeMap<String, f64>,
}

impl Row {
    /// The row's identity within `section`: `family/n` for the round
    /// matrix, the scheme name for the acceptance table, `scheme/t` for
    /// the per-round-count trade-off rows, `kind/rate` for the
    /// fault-tolerance sweep, `graph/pattern` for the message-pattern
    /// sweep, the workload name for the service table.
    #[must_use]
    pub fn key(&self) -> String {
        if let Some(w) = self.tags.get("workload") {
            return w.clone();
        }
        if let (Some(g), Some(p)) = (self.tags.get("graph"), self.tags.get("pattern")) {
            return format!("{g}/{p}");
        }
        match (
            self.tags.get("family"),
            self.tags.get("scheme"),
            self.tags.get("kind"),
        ) {
            (Some(f), _, _) => format!("{f}/n={}", self.nums.get("n").copied().unwrap_or(0.0)),
            (None, Some(s), _) => match self.nums.get("t") {
                Some(t) => format!("{s}/t={t}"),
                None => s.clone(),
            },
            (None, None, Some(k)) => {
                format!("{k}/rate={}", self.nums.get("rate").copied().unwrap_or(0.0))
            }
            (None, None, None) => String::from("?"),
        }
    }
}

/// Extracts the bracketed array that follows `"name":` in `json`, or an
/// empty slice when the section is absent.
fn section<'a>(json: &'a str, name: &str) -> &'a str {
    let Some(at) = json.find(&format!("\"{name}\"")) else {
        return "";
    };
    let rest = &json[at..];
    let Some(open) = rest.find('[') else {
        return "";
    };
    let Some(close) = rest[open..].find(']') else {
        return "";
    };
    &rest[open + 1..open + close]
}

/// Parses every flat `{…}` object inside `array` into a [`Row`].
fn rows(array: &str) -> Vec<Row> {
    let mut out = Vec::new();
    let mut rest = array;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let body = &rest[open + 1..open + close];
        let mut row = Row {
            tags: BTreeMap::new(),
            nums: BTreeMap::new(),
        };
        // Fields are `"key": value` separated by commas; values contain no
        // commas, braces, or escaped quotes in this schema.
        for field in body.split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            if let Some(stripped) = value.strip_prefix('"') {
                row.tags
                    .insert(key, stripped.trim_end_matches('"').to_string());
            } else if value == "true" || value == "false" {
                row.nums.insert(key, f64::from(u8::from(value == "true")));
            } else if let Ok(v) = value.parse::<f64>() {
                row.nums.insert(key, v);
            }
        }
        out.push(row);
        rest = &rest[open + close + 1..];
    }
    out
}

/// The seven row tables of one bench JSON, in emission order: round
/// matrix, acceptance table, trade-off sweep, fault sweep, pattern sweep,
/// service table, scale table.
pub type Sections = (
    Vec<Row>,
    Vec<Row>,
    Vec<Row>,
    Vec<Row>,
    Vec<Row>,
    Vec<Row>,
    Vec<Row>,
);

/// Parses one bench JSON into its row tables: the round matrix, the
/// acceptance table, the t-round trade-off sweep, the fault-tolerance
/// sweep, the message-pattern sweep, the service workload, and the
/// large-graph scale workload (the latter five empty for JSONs predating
/// their sections).
#[must_use]
pub fn parse(json: &str) -> Sections {
    (
        rows(section(json, "round_matrix")),
        rows(section(json, "acceptance_probability_cycle256")),
        rows(section(json, "tradeoff")),
        rows(section(json, "faults")),
        rows(section(json, "patterns")),
        rows(section(json, "service")),
        rows(section(json, "scale")),
    )
}

/// Round-matrix comparisons, as `(name, numerator, denominator)` derived
/// ratios: engine throughput is divided by the same run's
/// allocation-per-trial baseline throughput, so the machine's absolute
/// speed cancels — a slower CI runner slows both sides equally, while a
/// real engine regression collapses the ratio. Higher is better.
const MATRIX_RATIOS: &[(&str, &str, &str)] = &[
    (
        "det_vs_baseline",
        "det_rounds_per_sec",
        "baseline_rounds_per_sec",
    ),
    (
        "rand_vs_baseline",
        "rand_rounds_per_sec",
        "baseline_rounds_per_sec",
    ),
];
/// Scale-free metrics compared per acceptance row (already within-run
/// ratios): higher is better. `prep_amortized_speedup` is the
/// adversary-sweep row's shared-`PrepCache` vs per-labeling-prepare ratio;
/// losing cross-labeling preparation sharing collapses it.
const ACCEPTANCE_METRICS: &[&str] = &[
    "prepared_speedup",
    "batched_speedup",
    "prep_amortized_speedup",
];
/// Scale-free metrics compared per trade-off row: `bits_shrink` is the
/// workload's t = 1 per-round bits divided by this row's — the κ/t
/// communication shrink of the t-round schedule. It is a deterministic
/// function of the protocol (no timing), so a regression means the
/// schedule itself changed, not the machine.
const TRADEOFF_METRICS: &[&str] = &["bits_shrink"];
/// Scale-free metrics compared per scale row: `thread_scaling` is the
/// serial-over-parallel time ratio of the same run (losing it means the
/// sharded runner stopped scaling, wherever it runs — a one-core runner's
/// reference is ~1 and stays comparable), and `dense_vs_sparse_per_port`
/// is the sketched clique's per-port throughput over the sparse family's
/// (losing it means the dense cliff is back).
const SCALE_METRICS: &[&str] = &["thread_scaling", "dense_vs_sparse_per_port"];

/// The outcome of one gate run.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metrics compared (present in both files).
    pub checks: usize,
    /// Human-readable failures; empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether the build should pass.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` (the smoke run) against `reference` (the committed
/// trajectory): every shared scale-free metric must satisfy
/// `current >= reference / max_regress`, and the current run's estimates
/// must be path-identical. Returns the report; the `bench_gate` binary
/// turns a non-empty failure list into a non-zero exit.
///
/// # Panics
///
/// Panics if `max_regress` is not a positive finite number.
#[must_use]
pub fn check(current: &str, reference: &str, max_regress: f64) -> GateReport {
    assert!(
        max_regress.is_finite() && max_regress > 0.0,
        "max_regress must be positive"
    );
    let (cur_matrix, cur_acc, cur_tradeoff, cur_faults, cur_patterns, cur_service, cur_scale) =
        parse(current);
    let (ref_matrix, ref_acc, ref_tradeoff, _, _, _, ref_scale) = parse(reference);
    let mut report = GateReport::default();

    // One comparison: the named value must not sit more than `max_regress`
    // below the reference value.
    let mut compare_one = |key: &str, metric: &str, c: f64, r: f64| {
        report.checks += 1;
        if c < r / max_regress {
            report.failures.push(format!(
                "{key} {metric}: {c:.2} is more than {max_regress}x below reference {r:.2}"
            ));
        }
    };

    // The derived within-run ratio of two row fields, when both are
    // present and the denominator is positive.
    let ratio = |row: &Row, num: &str, den: &str| -> Option<f64> {
        match (row.nums.get(num), row.nums.get(den)) {
            (Some(&n), Some(&d)) if d > 0.0 => Some(n / d),
            _ => None,
        }
    };

    let matrix_pairs: Vec<(&Row, &Row)> = cur_matrix
        .iter()
        .filter_map(|c| {
            ref_matrix
                .iter()
                .find(|r| r.key() == c.key())
                .map(|r| (c, r))
        })
        .collect();
    for (cur, reference) in &matrix_pairs {
        for &(name, num, den) in MATRIX_RATIOS {
            let (Some(c), Some(r)) = (ratio(cur, num, den), ratio(reference, num, den)) else {
                continue;
            };
            compare_one(&cur.key(), name, c, r);
        }
    }
    let acc_pairs: Vec<(&Row, &Row)> = cur_acc
        .iter()
        .filter_map(|c| ref_acc.iter().find(|r| r.key() == c.key()).map(|r| (c, r)))
        .collect();
    for (cur, reference) in &acc_pairs {
        for &metric in ACCEPTANCE_METRICS {
            let (Some(&c), Some(&r)) = (cur.nums.get(metric), reference.nums.get(metric)) else {
                continue;
            };
            compare_one(&cur.key(), metric, c, r);
        }
    }
    let tradeoff_pairs: Vec<(&Row, &Row)> = cur_tradeoff
        .iter()
        .filter_map(|c| {
            ref_tradeoff
                .iter()
                .find(|r| r.key() == c.key())
                .map(|r| (c, r))
        })
        .collect();
    for (cur, reference) in &tradeoff_pairs {
        for &metric in TRADEOFF_METRICS {
            let (Some(&c), Some(&r)) = (cur.nums.get(metric), reference.nums.get(metric)) else {
                continue;
            };
            compare_one(&cur.key(), metric, c, r);
        }
    }

    let scale_pairs: Vec<(&Row, &Row)> = cur_scale
        .iter()
        .filter_map(|c| {
            ref_scale
                .iter()
                .find(|r| r.key() == c.key())
                .map(|r| (c, r))
        })
        .collect();
    for (cur, reference) in &scale_pairs {
        for &metric in SCALE_METRICS {
            let (Some(&c), Some(&r)) = (cur.nums.get(metric), reference.nums.get(metric)) else {
                continue;
            };
            compare_one(&cur.key(), metric, c, r);
        }
    }

    if report.checks == 0 {
        report
            .failures
            .push("no comparable metrics found — wrong file, or schema drift".into());
    }
    // Path-identity is a correctness bit, not a perf ratio: a current run
    // whose serial and parallel estimates diverged must never pass.
    for row in &cur_acc {
        if row.nums.get("estimates_identical") == Some(&0.0) {
            report
                .failures
                .push(format!("{}: estimates_identical is false", row.key()));
        }
    }
    // Likewise the trade-off sweep's t = 1 rows: the multi-round schedule
    // diverging from the batched one-round path is a correctness bug at
    // any speed.
    for row in &cur_tradeoff {
        if row.nums.get("t1_identical") == Some(&0.0) {
            report
                .failures
                .push(format!("{}: t1_identical is false", row.key()));
        }
    }
    // The fault sweep is gated purely on its correctness bits (its
    // acceptance values are deterministic in the seeds, not timing): a
    // transparent plan diverging from the fault-free engine, or a faulted
    // run accepting a labeling its clean twin rejects, fails at any speed.
    for row in &cur_faults {
        if row.nums.get("zero_fault_identical") == Some(&0.0) {
            report
                .failures
                .push(format!("{}: zero_fault_identical is false", row.key()));
        }
        if row.nums.get("soundness_preserved") == Some(&0.0) {
            report
                .failures
                .push(format!("{}: soundness_preserved is false", row.key()));
        }
    }
    // The message-pattern sweep is gated on correctness bits and on its
    // deterministic bit accounting, never on timing. `per_port_identical`
    // says the per-port pattern reproduced the legacy engine's estimate
    // and bit totals exactly — transcript identity at any speed. And on
    // each graph unicast must not account more total bits than per-port:
    // the half-width message (sender ships only the evaluation, the point
    // is shared) is the entire content of that pattern.
    for row in &cur_patterns {
        if row.nums.get("per_port_identical") == Some(&0.0) {
            report
                .failures
                .push(format!("{}: per_port_identical is false", row.key()));
        }
    }
    for row in &cur_patterns {
        if row.tags.get("pattern").map(String::as_str) != Some("unicast") {
            continue;
        }
        let per_port_bits = row.tags.get("graph").and_then(|graph| {
            cur_patterns
                .iter()
                .find(|r| {
                    r.tags.get("graph") == Some(graph)
                        && r.tags.get("pattern").map(String::as_str) == Some("per_port")
                })
                .and_then(|r| r.nums.get("total_bits").copied())
        });
        let (Some(&unicast_bits), Some(per_port_bits)) =
            (row.nums.get("total_bits"), per_port_bits)
        else {
            continue;
        };
        if unicast_bits > per_port_bits {
            report.failures.push(format!(
                "{}: unicast total_bits {unicast_bits} exceeds per_port {per_port_bits}",
                row.key()
            ));
        }
    }
    // The service workload is gated purely on its correctness bits, never
    // on jobs/s (absolute throughput is machine-bound): a service reply
    // diverging from the direct engine estimate, or a mixed batch whose
    // shared cache stopped hitting, fails at any speed. Both are
    // deterministic functions of the batch, not of timing. The chaos row
    // adds two more such bits: `replay_identical` (the same chaos seed
    // must reproduce outcomes, retries, and the shed/fault ledger
    // exactly — losing it means the harness or the service went
    // nondeterministic) and `shed_accounting_ok` (every worker panic cost
    // exactly one restart and the completion ledger balances).
    for row in &cur_service {
        if row.nums.get("verdicts_identical") == Some(&0.0) {
            report
                .failures
                .push(format!("{}: verdicts_identical is false", row.key()));
        }
        if row.nums.get("cache_hit_rate") == Some(&0.0) {
            report.failures.push(format!(
                "{}: cache_hit_rate is zero — the shared cache stopped sharing",
                row.key()
            ));
        }
        if row.nums.get("replay_identical") == Some(&0.0) {
            report.failures.push(format!(
                "{}: replay_identical is false — the chaos run is not seed-deterministic",
                row.key()
            ));
        }
        if row.nums.get("shed_accounting_ok") == Some(&0.0) {
            report.failures.push(format!(
                "{}: shed_accounting_ok is false — the shed/fault ledger does not balance",
                row.key()
            ));
        }
    }
    // The scale workload's two correctness bits are enforced on the
    // current run alone: `par_identical` (the thread-sharded estimator
    // reproduced the serial estimate bit for bit — transcript identity at
    // any speed and any worker count) and `dense_within_2x` (the sketched
    // dense family stays within 2× of the sparse family's per-port
    // throughput — the cliff criterion is a within-run ratio, so it holds
    // or fails identically on any machine).
    for row in &cur_scale {
        if row.nums.get("par_identical") == Some(&0.0) {
            report.failures.push(format!(
                "{}: par_identical is false — the parallel estimate diverged from serial",
                row.key()
            ));
        }
        if row.nums.get("dense_within_2x") == Some(&0.0) {
            report.failures.push(format!(
                "{}: dense_within_2x is false — the dense family regressed more than 2x \
                 vs sparse per-port throughput",
                row.key()
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rand_rps: f64, prepared: f64, batched: Option<f64>, identical: bool) -> String {
        let batched_field =
            batched.map_or(String::new(), |b| format!("\"batched_speedup\": {b}, "));
        format!(
            "{{\n  \"bench\": \"engine\",\n  \"round_matrix\": [\n    {{\"family\": \"cycle\", \
             \"n\": 64, \"det_rounds_per_sec\": 1000000, \"rand_rounds_per_sec\": {rand_rps}, \
             \"baseline_rounds_per_sec\": 48000}}\n  \
             ],\n  \"acceptance_probability_cycle256\": [\n    {{\"scheme\": \"compiled\", \
             \"trials\": 1000, \"prepared_speedup\": {prepared}, {batched_field}\
             \"estimates_identical\": {identical}}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn identical_files_pass() {
        let j = sample(300000.0, 20.0, Some(50.0), true);
        let report = check(&j, &j, 2.0);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.checks, 4);
    }

    #[test]
    fn small_regressions_within_tolerance_pass() {
        let cur = sample(160000.0, 11.0, Some(26.0), true);
        let reference = sample(300000.0, 20.0, Some(50.0), true);
        assert!(check(&cur, &reference, 2.0).failures.is_empty());
    }

    #[test]
    fn throughput_collapse_fails() {
        let cur = sample(100000.0, 20.0, Some(50.0), true);
        let reference = sample(300000.0, 20.0, Some(50.0), true);
        let report = check(&cur, &reference, 2.0);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("rand_vs_baseline"));
    }

    #[test]
    fn uniformly_slower_machine_passes() {
        // A runner 3x slower on every metric (engine and baseline alike)
        // must not trip the gate: the within-run ratios are unchanged.
        let reference = sample(300000.0, 20.0, Some(50.0), true);
        let cur = reference
            .replace("1000000", "333333")
            .replace("300000", "100000")
            .replace("48000", "16000");
        let report = check(&cur, &reference, 2.0);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }

    #[test]
    fn speedup_collapse_fails() {
        let cur = sample(300000.0, 5.0, Some(10.0), true);
        let reference = sample(300000.0, 20.0, Some(50.0), true);
        let report = check(&cur, &reference, 2.0);
        assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
    }

    #[test]
    fn metric_missing_from_reference_is_skipped() {
        // An older committed reference without batched_speedup must not
        // fail a newer smoke run, and vice versa.
        let cur = sample(300000.0, 20.0, Some(50.0), true);
        let reference = sample(300000.0, 20.0, None, true);
        let report = check(&cur, &reference, 2.0);
        assert!(report.failures.is_empty());
        assert_eq!(report.checks, 3);
    }

    /// A second acceptance-array row shaped like the adversary-sweep
    /// workload (its scale-free metric is `prep_amortized_speedup`).
    fn with_sweep(base: &str, amortized: f64, identical: bool) -> String {
        let sweep = format!(
            "    {{\"scheme\": \"adversary_sweep64\", \"trials\": 256, \"labelings\": 64, \
             \"sweep_secs\": 0.05, \"per_prepare_secs\": 0.50, \
             \"prep_amortized_speedup\": {amortized}, \"estimates_identical\": {identical}}}\n  ]"
        );
        let at = base.rfind("  ]").expect("acceptance array close");
        let mut out = String::from(&base[..at]);
        // The previous row needs a separating comma.
        let brace = out.rfind('}').expect("previous row");
        out.insert(brace + 1, ',');
        out.push_str(&sweep);
        out.push_str(&base[at + 3..]);
        out
    }

    #[test]
    fn sweep_amortization_collapse_fails() {
        let base = sample(300000.0, 20.0, Some(50.0), true);
        let reference = with_sweep(&base, 8.0, true);
        // Within tolerance: 8.0 → 4.5 is less than 2x down.
        let ok = with_sweep(&base, 4.5, true);
        assert!(check(&ok, &reference, 2.0).failures.is_empty());
        // Collapse: the cache stopped sharing, the ratio fell to ~1.
        let collapsed = with_sweep(&base, 1.1, true);
        let report = check(&collapsed, &reference, 2.0);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("prep_amortized_speedup"));
        assert!(report.failures[0].contains("adversary_sweep64"));
    }

    #[test]
    fn sweep_row_missing_from_reference_is_skipped() {
        // Gating a new smoke run against a pre-sweep reference must not
        // fail: rows present in only one file are skipped.
        let reference = sample(300000.0, 20.0, Some(50.0), true);
        let cur = with_sweep(&reference, 9.0, true);
        let report = check(&cur, &reference, 2.0);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.checks, 4);
    }

    #[test]
    fn sweep_estimate_divergence_fails_regardless_of_speed() {
        let base = sample(300000.0, 20.0, Some(50.0), true);
        let cur = with_sweep(&base, 50.0, false);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("adversary_sweep64") && f.contains("estimates_identical")));
    }

    #[test]
    fn diverged_estimates_fail_regardless_of_speed() {
        let cur = sample(300000.0, 20.0, Some(50.0), false);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("estimates_identical")));
    }

    #[test]
    fn empty_current_file_fails_loudly() {
        let reference = sample(300000.0, 20.0, Some(50.0), true);
        let report = check("{}", &reference, 2.0);
        assert!(!report.failures.is_empty());
    }

    /// A bench JSON with a `tradeoff` section: two rows of one workload
    /// (t = 1 and t = 16) with the given shrink and t = 1 identity bit.
    fn with_tradeoff(base: &str, shrink_t16: f64, t1_identical: bool) -> String {
        let tradeoff = format!(
            ",\n  \"tradeoff\": [\n    {{\"scheme\": \"exchange_spanning_tree\", \"t\": 1, \
             \"trials\": 1000, \"max_bits_per_round\": 96, \"total_bits\": 49152, \
             \"bits_shrink\": 1.00, \"secs\": 0.1, \"honest_estimate\": 1, \
             \"tampered_estimate\": 0.0, \"mean_reject_round\": 1.0, \
             \"t1_identical\": {t1_identical}}},\n    {{\"scheme\": \
             \"exchange_spanning_tree\", \"t\": 16, \"trials\": 1000, \
             \"max_bits_per_round\": 6, \"total_bits\": 49152, \"bits_shrink\": {shrink_t16}, \
             \"secs\": 0.1, \"honest_estimate\": 1, \"tampered_estimate\": 0.0, \
             \"mean_reject_round\": 16.0}}\n  ]"
        );
        let at = base.rfind("\n}").expect("object close");
        let mut out = String::from(&base[..at]);
        out.push_str(&tradeoff);
        out.push_str(&base[at..]);
        out
    }

    #[test]
    fn tradeoff_rows_are_keyed_by_scheme_and_t() {
        let json = with_tradeoff(&sample(300000.0, 20.0, Some(50.0), true), 16.0, true);
        let (_, _, tradeoff, _, _, _, _) = parse(&json);
        assert_eq!(tradeoff.len(), 2);
        assert_eq!(tradeoff[0].key(), "exchange_spanning_tree/t=1");
        assert_eq!(tradeoff[1].key(), "exchange_spanning_tree/t=16");
    }

    #[test]
    fn tradeoff_bits_shrink_collapse_fails() {
        let base = sample(300000.0, 20.0, Some(50.0), true);
        let reference = with_tradeoff(&base, 16.0, true);
        // Within tolerance passes…
        let ok = with_tradeoff(&base, 9.0, true);
        assert!(check(&ok, &reference, 2.0).failures.is_empty());
        // …losing the per-round shrink (schedule fell back to one round)
        // fails.
        let collapsed = with_tradeoff(&base, 1.0, true);
        let report = check(&collapsed, &reference, 2.0);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("bits_shrink"));
        assert!(report.failures[0].contains("t=16"));
    }

    #[test]
    fn tradeoff_t1_divergence_fails_regardless_of_speed() {
        let cur = with_tradeoff(&sample(300000.0, 20.0, Some(50.0), true), 16.0, false);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("t=1") && f.contains("t1_identical")));
    }

    #[test]
    fn tradeoff_missing_from_reference_is_skipped() {
        let reference = sample(300000.0, 20.0, Some(50.0), true);
        let cur = with_tradeoff(&reference, 16.0, true);
        let report = check(&cur, &reference, 2.0);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.checks, 4);
    }

    #[test]
    fn real_schema_round_trips() {
        // The committed reference itself must parse: guard against the
        // emitter and the parser drifting apart.
        let json = include_str!("../../../BENCH_engine.json");
        let (matrix, acc, tradeoff, faults, patterns, service, scale) = parse(json);
        assert!(matrix.len() >= 9);
        assert!(acc.len() >= 2);
        assert!(matrix[0].nums.contains_key("rand_rounds_per_sec"));
        assert!(acc[0].nums.contains_key("prepared_speedup"));
        assert!(
            acc.iter()
                .any(|r| r.nums.contains_key("prep_amortized_speedup")),
            "committed reference must include the adversary-sweep row"
        );
        assert!(
            tradeoff.len() >= 10,
            "committed reference must include the t-round trade-off sweep"
        );
        assert!(
            tradeoff
                .iter()
                .any(|r| r.nums.get("t1_identical") == Some(&1.0)),
            "the t = 1 rows must carry their identity bit"
        );
        assert!(
            faults.len() >= 6,
            "committed reference must include the fault-tolerance sweep"
        );
        assert!(
            faults
                .iter()
                .all(|r| r.nums.get("soundness_preserved") == Some(&1.0)),
            "every committed fault row must have preserved soundness"
        );
        assert!(
            faults
                .iter()
                .any(|r| r.nums.get("zero_fault_identical") == Some(&1.0)),
            "the transparent row must carry its identity bit"
        );
        assert!(
            patterns.len() >= 10,
            "committed reference must include the message-pattern sweep"
        );
        assert!(
            patterns.iter().all(
                |r| r.tags.get("pattern").map(String::as_str) != Some("per_port")
                    || r.nums.get("per_port_identical") == Some(&1.0)
            ),
            "every committed per_port row must carry its identity bit"
        );
        assert!(
            patterns.iter().all(
                |r| r.tags.get("pattern").map(String::as_str) != Some("broadcast")
                    || r.nums.get("messages") == Some(&1.0)
            ),
            "every committed broadcast row must emit one message per node"
        );
        assert!(
            service.len() >= 2,
            "committed reference must include the service and chaos workloads"
        );
        assert!(
            service
                .iter()
                .all(|r| r.nums.get("verdicts_identical") == Some(&1.0)),
            "every committed service row must match the direct engine"
        );
        assert!(
            service.iter().any(|r| r.key() == "mixed_tenants")
                && service
                    .iter()
                    .filter_map(|r| r.nums.get("cache_hit_rate"))
                    .all(|&rate| rate > 0.0),
            "the committed mixed-tenant row must report a nonzero hit rate"
        );
        let chaos = service
            .iter()
            .find(|r| r.key() == "service_chaos")
            .expect("committed reference must include the chaos row");
        assert_eq!(
            chaos.nums.get("replay_identical"),
            Some(&1.0),
            "the committed chaos row must be seed-deterministic"
        );
        assert_eq!(
            chaos.nums.get("shed_accounting_ok"),
            Some(&1.0),
            "the committed chaos row's shed/fault ledger must balance"
        );
        assert!(
            scale.len() >= 6,
            "committed reference must include the scale workload"
        );
        assert!(
            scale
                .iter()
                .filter(|r| r.key().starts_with("thread_scaling"))
                .all(|r| r.nums.get("par_identical") == Some(&1.0)),
            "every committed thread-scaling row must carry its identity bit"
        );
        let dense = scale
            .iter()
            .find(|r| r.key() == "clique_sketched")
            .expect("committed reference must include the sketched clique row");
        assert_eq!(
            dense.nums.get("dense_within_2x"),
            Some(&1.0),
            "the committed dense row must sit within 2x of sparse per-port throughput"
        );
        let report = check(json, json, 2.0);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }

    /// A bench JSON with a `faults` section: the transparent row (carrying
    /// `zero_fault_identical`) and one lossy row.
    fn with_faults(base: &str, zero_identical: bool, sound: bool) -> String {
        let faults = format!(
            ",\n  \"faults\": [\n    {{\"kind\": \"none\", \"rate\": 0, \"trials\": 2000, \
             \"honest_acceptance\": 1.0000, \"tampered_acceptance\": 0.4500, \
             \"honest_degraded\": 0.0000, \"secs\": 0.01, \"soundness_preserved\": true, \
             \"zero_fault_identical\": {zero_identical}}},\n    {{\"kind\": \"drop\", \
             \"rate\": 0.005, \"trials\": 2000, \"honest_acceptance\": 0.0771, \
             \"tampered_acceptance\": 0.0300, \"honest_degraded\": 0.9200, \"secs\": 0.01, \
             \"soundness_preserved\": {sound}}}\n  ]"
        );
        let at = base.rfind("\n}").expect("object close");
        let mut out = String::from(&base[..at]);
        out.push_str(&faults);
        out.push_str(&base[at..]);
        out
    }

    #[test]
    fn fault_rows_are_keyed_by_kind_and_rate() {
        let json = with_faults(&sample(300000.0, 20.0, Some(50.0), true), true, true);
        let (_, _, _, faults, _, _, _) = parse(&json);
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].key(), "none/rate=0");
        assert_eq!(faults[1].key(), "drop/rate=0.005");
        // A healthy file passes against itself and against a pre-faults
        // reference (new sections never break the gate).
        assert!(check(&json, &json, 2.0).failures.is_empty());
        let pre_faults = sample(300000.0, 20.0, Some(50.0), true);
        assert!(check(&json, &pre_faults, 2.0).failures.is_empty());
    }

    #[test]
    fn zero_fault_divergence_fails_regardless_of_speed() {
        let cur = with_faults(&sample(300000.0, 20.0, Some(50.0), true), false, true);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("none/rate=0") && f.contains("zero_fault_identical")));
    }

    #[test]
    fn soundness_break_fails_regardless_of_speed() {
        let cur = with_faults(&sample(300000.0, 20.0, Some(50.0), true), true, false);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("drop/rate=0.005") && f.contains("soundness_preserved")));
    }

    /// A bench JSON with a `patterns` section: one graph's per-port row
    /// (carrying `per_port_identical`), its unicast row with the given
    /// `total_bits`, and a broadcast row.
    fn with_patterns(base: &str, per_port_identical: bool, unicast_bits: u64) -> String {
        let patterns = format!(
            ",\n  \"patterns\": [\n    {{\"graph\": \"cycle256\", \"pattern\": \"per_port\", \
             \"trials\": 10000, \"messages\": 2, \"max_bits_per_round\": 14, \
             \"total_bits\": 7168, \"secs\": 0.01, \"honest_estimate\": 1, \
             \"per_port_identical\": {per_port_identical}}},\n    {{\"graph\": \"cycle256\", \
             \"pattern\": \"unicast\", \"trials\": 10000, \"messages\": 2, \
             \"max_bits_per_round\": 7, \"total_bits\": {unicast_bits}, \"secs\": 0.01, \
             \"honest_estimate\": 1}},\n    {{\"graph\": \"cycle256\", \"pattern\": \
             \"broadcast\", \"trials\": 10000, \"messages\": 1, \"max_bits_per_round\": 14, \
             \"total_bits\": 3584, \"secs\": 0.01, \"honest_estimate\": 1}}\n  ]"
        );
        let at = base.rfind("\n}").expect("object close");
        let mut out = String::from(&base[..at]);
        out.push_str(&patterns);
        out.push_str(&base[at..]);
        out
    }

    #[test]
    fn pattern_rows_are_keyed_by_graph_and_pattern() {
        let json = with_patterns(&sample(300000.0, 20.0, Some(50.0), true), true, 3584);
        let (_, _, _, _, patterns, _, _) = parse(&json);
        assert_eq!(patterns.len(), 3);
        assert_eq!(patterns[0].key(), "cycle256/per_port");
        assert_eq!(patterns[1].key(), "cycle256/unicast");
        assert_eq!(patterns[2].key(), "cycle256/broadcast");
        // A healthy file passes against itself and against a pre-patterns
        // reference (new sections never break the gate).
        assert!(check(&json, &json, 2.0).failures.is_empty());
        let pre_patterns = sample(300000.0, 20.0, Some(50.0), true);
        assert!(check(&json, &pre_patterns, 2.0).failures.is_empty());
    }

    #[test]
    fn per_port_divergence_fails_regardless_of_speed() {
        let cur = with_patterns(&sample(300000.0, 20.0, Some(50.0), true), false, 3584);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("cycle256/per_port") && f.contains("per_port_identical")));
    }

    #[test]
    fn unicast_bit_inflation_fails_regardless_of_speed() {
        // Unicast accounting more bits than per-port means the half-width
        // message was lost somewhere — fail at any speed.
        let cur = with_patterns(&sample(300000.0, 20.0, Some(50.0), true), true, 9000);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("cycle256/unicast") && f.contains("exceeds per_port")));
        // At or below the per-port total it passes.
        let ok = with_patterns(&sample(300000.0, 20.0, Some(50.0), true), true, 7168);
        assert!(check(&ok, &ok, 2.0).failures.is_empty());
    }

    /// A bench JSON with a `service` section: one mixed-tenant batch row
    /// with the given correctness bit and cache hit rate.
    fn with_service(base: &str, identical: bool, hit_rate: f64) -> String {
        let service = format!(
            ",\n  \"service\": [\n    {{\"workload\": \"mixed_tenants\", \"jobs\": 24, \
             \"trials\": 4000, \"jobs_per_sec\": 45.2, \"secs\": 0.53, \"sheds\": 0, \
             \"cache_hit_rate\": {hit_rate:.4}, \"verdicts_identical\": {identical}}}\n  ]"
        );
        let at = base.rfind("\n}").expect("object close");
        let mut out = String::from(&base[..at]);
        out.push_str(&service);
        out.push_str(&base[at..]);
        out
    }

    #[test]
    fn service_rows_are_keyed_by_workload() {
        let json = with_service(&sample(300000.0, 20.0, Some(50.0), true), true, 0.85);
        let (_, _, _, _, _, service, _) = parse(&json);
        assert_eq!(service.len(), 1);
        assert_eq!(service[0].key(), "mixed_tenants");
        // A healthy file passes against itself and against a pre-service
        // reference (new sections never break the gate).
        assert!(check(&json, &json, 2.0).failures.is_empty());
        let pre_service = sample(300000.0, 20.0, Some(50.0), true);
        assert!(check(&json, &pre_service, 2.0).failures.is_empty());
    }

    #[test]
    fn service_verdict_divergence_fails_regardless_of_speed() {
        let cur = with_service(&sample(300000.0, 20.0, Some(50.0), true), false, 0.85);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("mixed_tenants") && f.contains("verdicts_identical")));
    }

    /// A bench JSON with a `service` section holding both rows: the
    /// mixed-tenant batch and the chaos-harness row with the given replay
    /// and accounting bits.
    fn with_chaos(base: &str, replay: bool, accounting: bool) -> String {
        let service = format!(
            ",\n  \"service\": [\n    {{\"workload\": \"mixed_tenants\", \"jobs\": 24, \
             \"trials\": 4000, \"jobs_per_sec\": 45.2, \"secs\": 0.53, \"sheds\": 0, \
             \"cache_hit_rate\": 0.8500, \"verdicts_identical\": true}},\n    \
             {{\"workload\": \"service_chaos\", \"jobs\": 4, \"delivered\": 3, \
             \"attempts\": 9, \"transport_retries\": 1, \"shed_retries\": 3, \
             \"worker_faults\": 4, \"worker_restarts\": 4, \"secs\": 0.81, \
             \"verdicts_identical\": true, \"replay_identical\": {replay}, \
             \"shed_accounting_ok\": {accounting}}}\n  ]"
        );
        let at = base.rfind("\n}").expect("object close");
        let mut out = String::from(&base[..at]);
        out.push_str(&service);
        out.push_str(&base[at..]);
        out
    }

    #[test]
    fn chaos_row_is_keyed_by_workload_and_healthy_bits_pass() {
        let json = with_chaos(&sample(300000.0, 20.0, Some(50.0), true), true, true);
        let (_, _, _, _, _, service, _) = parse(&json);
        assert_eq!(service.len(), 2);
        assert_eq!(service[1].key(), "service_chaos");
        // Healthy bits pass against the file itself and against a
        // pre-chaos reference (new rows never break the gate); the chaos
        // row's absent cache_hit_rate is not treated as zero.
        assert!(check(&json, &json, 2.0).failures.is_empty());
        let pre_chaos = sample(300000.0, 20.0, Some(50.0), true);
        assert!(check(&json, &pre_chaos, 2.0).failures.is_empty());
    }

    #[test]
    fn chaos_replay_divergence_fails_regardless_of_speed() {
        let cur = with_chaos(&sample(300000.0, 20.0, Some(50.0), true), false, true);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("service_chaos") && f.contains("replay_identical")));
    }

    #[test]
    fn chaos_accounting_break_fails_regardless_of_speed() {
        let cur = with_chaos(&sample(300000.0, 20.0, Some(50.0), true), true, false);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("service_chaos") && f.contains("shed_accounting_ok")));
    }

    #[test]
    fn service_zero_hit_rate_fails_regardless_of_speed() {
        // The mixed batch resubmits tenants: a zero hit rate means the
        // shared cache stopped sharing — fail at any speed.
        let cur = with_service(&sample(300000.0, 20.0, Some(50.0), true), true, 0.0);
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("mixed_tenants") && f.contains("cache_hit_rate")));
    }

    /// A bench JSON with a `scale` section: the sparse row, the sketched
    /// clique row (carrying the dense ratio and its 2x bit), and one
    /// thread-scaling row with the given scaling ratio and identity bit.
    fn with_scale(
        base: &str,
        dense_ratio: f64,
        dense_ok: bool,
        scaling: f64,
        par_identical: bool,
    ) -> String {
        let scale = format!(
            ",\n  \"scale\": [\n    {{\"workload\": \"sparse_random\", \"n\": 16384, \
             \"ports\": 40958, \"trials\": 32, \"secs\": 0.2000, \
             \"ports_per_sec\": 6553280}},\n    {{\"workload\": \"clique_sketched\", \
             \"n\": 512, \"ports\": 261632, \"trials\": 4, \"secs\": 0.0500, \
             \"ports_per_sec\": 20930560, \"dense_vs_sparse_per_port\": {dense_ratio:.4}, \
             \"dense_within_2x\": {dense_ok}}},\n    {{\"workload\": \"thread_scaling_4\", \
             \"n\": 16384, \"ports\": 40958, \"trials\": 32, \"secs\": 0.0600, \
             \"ports_per_sec\": 21844266, \"thread_scaling\": {scaling:.4}, \
             \"par_identical\": {par_identical}}}\n  ]"
        );
        let at = base.rfind("\n}").expect("object close");
        let mut out = String::from(&base[..at]);
        out.push_str(&scale);
        out.push_str(&base[at..]);
        out
    }

    #[test]
    fn scale_rows_are_keyed_by_workload() {
        let json = with_scale(
            &sample(300000.0, 20.0, Some(50.0), true),
            3.2,
            true,
            3.1,
            true,
        );
        let (_, _, _, _, _, _, scale) = parse(&json);
        assert_eq!(scale.len(), 3);
        assert_eq!(scale[0].key(), "sparse_random");
        assert_eq!(scale[1].key(), "clique_sketched");
        assert_eq!(scale[2].key(), "thread_scaling_4");
        // A healthy file passes against itself and against a pre-scale
        // reference (new sections never break the gate).
        assert!(check(&json, &json, 2.0).failures.is_empty());
        let pre_scale = sample(300000.0, 20.0, Some(50.0), true);
        assert!(check(&json, &pre_scale, 2.0).failures.is_empty());
    }

    #[test]
    fn thread_scaling_collapse_fails() {
        let base = sample(300000.0, 20.0, Some(50.0), true);
        let reference = with_scale(&base, 3.2, true, 3.1, true);
        // Within tolerance: 3.1 → 1.8 is less than 2x down.
        let ok = with_scale(&base, 3.2, true, 1.8, true);
        assert!(check(&ok, &reference, 2.0).failures.is_empty());
        // Collapse: the sharded runner serialised, the ratio fell to ~1.
        let collapsed = with_scale(&base, 3.2, true, 1.0, true);
        let report = check(&collapsed, &reference, 2.0);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("thread_scaling"));
    }

    #[test]
    fn dense_ratio_collapse_fails() {
        let base = sample(300000.0, 20.0, Some(50.0), true);
        let reference = with_scale(&base, 3.2, true, 3.1, true);
        // The dense cliff is back: the within-run ratio collapsed (the 2x
        // bit is still true only because the emitter would have flipped
        // it; here we keep it true to isolate the ratio comparison).
        let collapsed = with_scale(&base, 0.9, true, 3.1, true);
        let report = check(&collapsed, &reference, 2.0);
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("dense_vs_sparse_per_port"));
    }

    #[test]
    fn par_divergence_fails_regardless_of_speed() {
        let cur = with_scale(
            &sample(300000.0, 20.0, Some(50.0), true),
            3.2,
            true,
            3.1,
            false,
        );
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("thread_scaling_4") && f.contains("par_identical")));
    }

    #[test]
    fn dense_cliff_bit_fails_regardless_of_speed() {
        let cur = with_scale(
            &sample(300000.0, 20.0, Some(50.0), true),
            0.3,
            false,
            3.1,
            true,
        );
        let report = check(&cur, &cur, 2.0);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("clique_sketched") && f.contains("dense_within_2x")));
    }
}
