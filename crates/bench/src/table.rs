//! Plain-text result tables for the experiment harness.

use std::fmt;

/// A titled table of measurement rows, printable as aligned text or
/// markdown.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header count.
    ///
    /// # Panics
    ///
    /// Panics on a cell-count mismatch.
    pub fn push_row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-text note rendered under the table.
    pub fn push_note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Access to the raw rows (used by tests asserting on shapes).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as a GitHub-flavoured markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (w, cell) in widths.iter().zip(cells) {
                parts.push(format!("{cell:w$}"));
            }
            writeln!(f, "  {}", parts.join("  "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with three significant decimals for table cells.
#[must_use]
pub fn fmt_f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a boolean as yes/no.
#[must_use]
pub fn fmt_b(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_markdown() {
        let mut t = Table::new("demo", &["n", "bits"]);
        t.push_row(vec!["8".into(), "12".into()]);
        t.push_note("a note");
        let text = t.to_string();
        assert!(text.contains("demo") && text.contains("12") && text.contains("a note"));
        let md = t.to_markdown();
        assert!(md.contains("| n | bits |") && md.contains("| 8 | 12 |"));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.33333), "0.333");
        assert_eq!(fmt_b(true), "yes");
        assert_eq!(fmt_b(false), "no");
    }
}
