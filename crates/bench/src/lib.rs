//! The experiment harness: one function per theorem/figure of the paper.
//!
//! The paper's evaluation is its theorem set (it is a theory paper — there
//! are no testbed tables), so "reproducing every table and figure" means
//! regenerating, for each theorem, the quantitative behaviour it asserts:
//! certificate sizes and their growth rates, acceptance/rejection
//! probabilities, and the success of the crossing attacks below the proven
//! thresholds. Each experiment returns a [`Table`] that the `experiments`
//! binary prints; EXPERIMENTS.md records paper-vs-measured for each.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p rpls-bench --release --bin experiments
//! ```
//!
//! or a single experiment by id (e.g. `e31`, `e48`, `f1`):
//!
//! ```text
//! cargo run -p rpls-bench --release --bin experiments -- e31
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod gate;
pub mod table;

pub use table::Table;

/// One registered experiment: `(id, description, generator)`.
pub type Experiment = (&'static str, &'static str, fn() -> Table);

/// Returns every experiment in presentation order.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "ea1",
            "Lemma A.1 / Lemma 3.2 — the randomized equality protocol",
            experiments::ea1_eq_protocol,
        ),
        (
            "e31",
            "Theorem 3.1 — compiling deterministic schemes to O(log kappa) bits",
            experiments::e31_compiler_gap,
        ),
        (
            "e33",
            "Lemma 3.3 — universal PLS label sizes",
            experiments::e33_universal_pls,
        ),
        (
            "e34",
            "Corollary 3.4 — universal RPLS certificates O(log n + log k)",
            experiments::e34_universal_rpls,
        ),
        (
            "e35",
            "Theorem 3.5 — Omega(log n + log k): Sym and Unif families",
            experiments::e35_lower_bound,
        ),
        (
            "e43",
            "Prop 4.3 / Thm 4.4 — deterministic crossing attack",
            experiments::e43_det_crossing,
        ),
        (
            "e46",
            "Prop 4.6 — two-sided rounded-distribution crossing",
            experiments::e46_rounded_crossing,
        ),
        (
            "e48",
            "Prop 4.8 — one-sided support crossing",
            experiments::e48_onesided_crossing,
        ),
        (
            "e51",
            "Theorem 5.1 — MST: Theta(log^2 n) labels, Theta(log log n) certificates",
            experiments::e51_mst,
        ),
        (
            "e52",
            "Theorem 5.2 — vertex biconnectivity",
            experiments::e52_biconnectivity,
        ),
        (
            "e53",
            "Theorem 5.3 — cycle-at-least-c upper bounds",
            experiments::e53_cycle_at_least,
        ),
        (
            "e54",
            "Theorem 5.4 — cycle-at-least-c lower bound (crossing the wheel)",
            experiments::e54_cycle_lower,
        ),
        (
            "e55",
            "Theorem 5.5 — iterated crossing",
            experiments::e55_iterated,
        ),
        (
            "e56",
            "Theorem 5.6 — cycle-at-most-c lower bound (chain of cycles)",
            experiments::e56_chain,
        ),
        (
            "eb",
            "Footnote 1 — majority boosting",
            experiments::eb_boosting,
        ),
        ("ef", "Section 5.2 remark — k-flow", experiments::ef_flow),
        (
            "ev",
            "Section 5.2 — s-t k-vertex-connectivity",
            experiments::ev_vertex_connectivity,
        ),
        (
            "f1",
            "Figure 1 — crossing two edges under sigma",
            experiments::f1_crossing_figure,
        ),
        (
            "f2",
            "Figure 2 — the wheel and its crossed version",
            experiments::f2_wheel_figure,
        ),
        (
            "f34",
            "Figures 3-4 — the symmetry gadgets G(z) and G(z, z')",
            experiments::f34_gadget_figure,
        ),
        (
            "f5",
            "Figure 5 — the chain of cycles",
            experiments::f5_chain_figure,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique() {
        let mut ids: Vec<&str> = all_experiments().iter().map(|(id, _, _)| *id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 20, "every theorem and figure gets an experiment");
    }
}
