//! The experiment runner: regenerates every theorem/figure table.
//!
//! ```text
//! cargo run -p rpls-bench --release --bin experiments            # all
//! cargo run -p rpls-bench --release --bin experiments -- e31 f2  # a subset
//! cargo run -p rpls-bench --release --bin experiments -- --markdown
//! ```

use rpls_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let experiments = all_experiments();
    if wanted.iter().any(|w| w.as_str() == "list") {
        for (id, desc, _) in &experiments {
            println!("{id:6} {desc}");
        }
        return;
    }
    let mut ran = 0usize;
    for (id, desc, gen) in &experiments {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == *id) {
            continue;
        }
        eprintln!("[{id}] {desc} ...");
        let table = gen();
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; use `experiments list` to see ids");
        std::process::exit(2);
    }
}
