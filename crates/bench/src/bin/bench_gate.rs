//! The perf-regression gate CLI: compares a fresh `bench_engine` JSON
//! against the committed reference and exits non-zero on regression.
//!
//! ```text
//! cargo run -p rpls-bench --release --bin bench_gate -- \
//!     BENCH_engine_smoke.json BENCH_engine.json [--max-regress 2.0]
//! ```
//!
//! Only scale-free metrics (rounds/second, prepared/batched speedups) are
//! compared, so a reduced-trial smoke run gates against the full-run
//! reference; see `rpls_bench::gate` for the exact contract.

use rpls_bench::gate;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut max_regress = 2.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-regress" {
            let Some(v) = it
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v > 0.0)
            else {
                eprintln!("bench_gate: --max-regress needs a positive number");
                return ExitCode::FAILURE;
            };
            max_regress = v;
        } else {
            files.push(arg.clone());
        }
    }
    let [current_path, reference_path] = files.as_slice() else {
        eprintln!("usage: bench_gate <current.json> <reference.json> [--max-regress FACTOR]");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(current), Some(reference)) = (read(current_path), read(reference_path)) else {
        return ExitCode::FAILURE;
    };

    let report = gate::check(&current, &reference, max_regress);
    println!(
        "bench_gate: {} metric(s) compared against {reference_path} (tolerance {max_regress}x)",
        report.checks
    );
    if report.passed() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for failure in &report.failures {
            eprintln!("bench_gate: FAIL {failure}");
        }
        ExitCode::FAILURE
    }
}
