//! E-5.2 timing: the Appendix E biconnectivity scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpls_core::{engine, CompiledRpls, Configuration, Pls, Rpls};
use rpls_graph::generators;
use rpls_schemes::biconnectivity::BiconnectivityPls;
use std::hint::black_box;

fn bench_biconnectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("biconnectivity");
    group.sample_size(20);
    for n in [32usize, 128, 512] {
        let config = Configuration::plain(generators::wheel(n));
        group.bench_with_input(BenchmarkId::new("prover", n), &n, |b, _| {
            b.iter(|| black_box(BiconnectivityPls.label(black_box(&config))));
        });
        let labeling = BiconnectivityPls.label(&config);
        group.bench_with_input(BenchmarkId::new("det_round", n), &n, |b, _| {
            b.iter(|| {
                black_box(engine::run_deterministic(
                    &BiconnectivityPls,
                    &config,
                    &labeling,
                ))
            });
        });
        let compiled = CompiledRpls::new(BiconnectivityPls);
        let clabels = compiled.label(&config);
        group.bench_with_input(BenchmarkId::new("compiled_round", n), &n, |b, _| {
            b.iter(|| black_box(engine::run_randomized(&compiled, &config, &clabels, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_biconnectivity);
criterion_main!(benches);
