//! E-A1 timing: the equality protocol at growing input lengths.
//!
//! The paper's claim is about *bits*, not time, but the time profile shows
//! the practical cost of fingerprinting: Horner evaluation is linear in λ
//! while the message stays logarithmic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rpls_bits::BitString;
use rpls_fingerprint::EqProtocol;
use std::hint::black_box;

fn bench_eq(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq_protocol");
    group.sample_size(20);
    for lambda in [64usize, 1024, 16384] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BitString::from_bools((0..lambda).map(|_| rng.random_bool(0.5)));
        let proto = EqProtocol::for_length(lambda);
        group.bench_with_input(
            BenchmarkId::new("alice_and_bob", lambda),
            &lambda,
            |b, _| {
                b.iter(|| {
                    let msg = proto.alice_message(black_box(&a), &mut rng);
                    black_box(proto.bob_accepts(&a, &msg))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eq);
criterion_main!(benches);
