//! E-3.1 timing: one full verification round, deterministic label exchange
//! vs the compiled randomized scheme.
//!
//! The compiled scheme trades label-size communication for fingerprint
//! computation; this bench quantifies that trade per round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpls_core::scheme::ExchangeLabels;
use rpls_core::{engine, CompiledRpls, Configuration, Rpls};
use rpls_graph::{generators, NodeId};
use rpls_schemes::spanning_tree::{spanning_tree_config, SpanningTreePls};
use std::hint::black_box;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler_gap");
    group.sample_size(20);
    for n in [32usize, 128, 512] {
        let mut rng = StdRng::seed_from_u64(7);
        let base = Configuration::plain(generators::gnp_connected(n, 0.05, &mut rng));
        let config = spanning_tree_config(&base, NodeId::new(0));

        let exchange = ExchangeLabels::new(SpanningTreePls);
        let labeling = exchange.label(&config);
        group.bench_with_input(BenchmarkId::new("exchange_labels_round", n), &n, |b, _| {
            b.iter(|| {
                black_box(engine::run_randomized(
                    &exchange,
                    black_box(&config),
                    &labeling,
                    3,
                ))
            });
        });

        let compiled = CompiledRpls::new(SpanningTreePls);
        let labeling = compiled.label(&config);
        group.bench_with_input(BenchmarkId::new("compiled_round", n), &n, |b, _| {
            b.iter(|| {
                black_box(engine::run_randomized(
                    &compiled,
                    black_box(&config),
                    &labeling,
                    3,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
