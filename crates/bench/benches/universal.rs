//! E-3.3 / E-3.4 timing: the universal scheme — configuration encoding,
//! prover labeling and one randomized round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpls_core::scheme::FnPredicate;
use rpls_core::universal::{encode_configuration, universal_rpls};
use rpls_core::{engine, Configuration, Rpls};
use rpls_graph::{connectivity, generators};
use std::hint::black_box;

fn connected() -> FnPredicate<impl Fn(&Configuration) -> bool> {
    FnPredicate::new("connected", |c: &Configuration| {
        connectivity::is_connected(c.graph())
    })
}

fn bench_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal");
    group.sample_size(10);
    for n in [16usize, 64, 128] {
        let config = Configuration::plain(generators::cycle(n));
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| black_box(encode_configuration(black_box(&config))));
        });
        let scheme = universal_rpls(connected());
        let labeling = scheme.label(&config);
        group.bench_with_input(BenchmarkId::new("round", n), &n, |b, _| {
            b.iter(|| {
                black_box(engine::run_randomized(
                    &scheme,
                    black_box(&config),
                    &labeling,
                    1,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_universal);
criterion_main!(benches);
